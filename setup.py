"""Thin shim so `python setup.py develop` works in offline environments
without the `wheel` package (all metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
