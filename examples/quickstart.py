#!/usr/bin/env python3
"""Quickstart: sort on the (simulated) GPU and mine a stream.

Walks through the library's three layers in five minutes:

1. sort an array through the full rasterization pipeline and inspect the
   exact operation counts plus the modelled GeForce-6800 timing;
2. estimate quantiles over a stream with the GPU co-processor engine;
3. find the frequent items of a skewed stream.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GpuSorter, StreamMiner, uniform_stream, zipf_stream


def sorting_demo() -> None:
    print("=" * 64)
    print("1. GPU sorting (the paper's Section 4)")
    print("=" * 64)
    data = uniform_stream(100_000, seed=1)
    sorter = GpuSorter()  # periodic balanced sorting network, RGBA-packed
    result = sorter.sort(data)
    assert np.array_equal(result, np.sort(data))

    counters = sorter.last_counters
    breakdown = sorter.modelled_time()
    print(f"sorted {data.size:,} float32 values")
    print(f"  rendering passes : {counters.passes:,}")
    print(f"  blend operations : {counters.blend_ops:,}")
    print(f"  bytes over bus   : {counters.bytes_uploaded + counters.bytes_readback:,}")
    print(f"  modelled GeForce-6800 time : {breakdown.total * 1e3:.1f} ms "
          f"(sort {breakdown.sort * 1e3:.1f} + transfer "
          f"{breakdown.transfer * 1e3:.1f})")
    print()


def quantile_demo() -> None:
    print("=" * 64)
    print("2. Streaming quantiles (Sections 5.2)")
    print("=" * 64)
    n = 200_000
    stream = uniform_stream(n, low=0, high=1000, seed=2)
    miner = StreamMiner("quantile", eps=0.01, backend="gpu",
                        window_size=4096, stream_length_hint=n)
    miner.process(stream)
    print(f"processed {n:,} elements in {miner.report.windows} windows")
    for phi in (0.01, 0.25, 0.50, 0.75, 0.99):
        print(f"  phi={phi:4.2f}  ->  {miner.quantile(phi):8.2f}  "
              f"(exact would be ~{phi * 1000:.0f})")
    shares = miner.report.modelled_shares()
    print(f"  modelled time shares: sort {shares['sort']:.0%}, "
          f"transfer {shares['transfer']:.0%}, merge {shares['merge']:.0%}")
    print()


def frequency_demo() -> None:
    print("=" * 64)
    print("3. Frequent items (Section 5.1)")
    print("=" * 64)
    stream = zipf_stream(100_000, alpha=1.4, universe=10_000, seed=3)
    miner = StreamMiner("frequency", eps=0.001, backend="gpu")
    miner.process(stream)
    print(f"heavy hitters above 2% support "
          f"(guaranteed complete, undercount <= 0.1%):")
    for value, count in miner.frequent_items(0.02)[:8]:
        print(f"  value {value:6.0f}  count >= {count:,}")
    print()


if __name__ == "__main__":
    sorting_demo()
    quantile_demo()
    frequency_demo()
    print("done.")
