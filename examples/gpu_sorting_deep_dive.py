#!/usr/bin/env python3
"""Deep dive into the GPU sorting algorithm (the paper's Section 4).

Lifts the hood on the rasterization pipeline: shows the texture layout,
walks one SortStep's quads, prints the pass breakdown by routine, and
compares the modelled time of every sorter the paper benchmarks
(Figure 3's curves, in table form).

Run:  python examples/gpu_sorting_deep_dive.py
"""

import numpy as np

from repro import GpuSorter
from repro.bench import figure3_series, predict_pbsn_counters
from repro.gpu import GpuDevice
from repro.sorting import pbsn_step, sort_step


def one_sort_step_by_hand() -> None:
    print("=" * 64)
    print("One PBSN SortStep, by hand (16 values, block size 16)")
    print("=" * 64)
    rng = np.random.default_rng(3)
    values = rng.integers(0, 100, 16).astype(np.float32)
    print(f"input : {values.astype(int).tolist()}")
    print(f"pairs : {pbsn_step(16, 16)}  (mirror comparisons)")

    device = GpuDevice()
    data = np.zeros((16, 4), dtype=np.float32)
    data[:, 0] = values
    tex = device.upload_texture(data.reshape(4, 4, 4))  # 4x4 texture
    device.bind_framebuffer(4, 4)
    device.copy_texture_to_framebuffer(tex)
    sort_step(device, tex, 4, 4, 16)
    device.copy_framebuffer_to_texture(tex)
    out = device.readback_texture(tex)[..., 0].ravel()
    print(f"output: {out.astype(int).tolist()}")
    print(f"(minima moved to the first half, maxima mirrored to the second)")
    print()


def pass_breakdown() -> None:
    print("=" * 64)
    print("Where the rendering passes go (n = 65,536)")
    print("=" * 64)
    sorter = GpuSorter()
    rng = np.random.default_rng(4)
    sorter.sort(rng.random(65_536).astype(np.float32))
    counters = sorter.last_counters
    print(f"total passes {counters.passes:,}, "
          f"fragments {counters.fragments:,}, "
          f"blend ops {counters.blend_ops:,}")
    for label, count in sorted(counters.pass_breakdown.items()):
        print(f"  {label:>8} : {count:6,} passes")
    print("row_min/row_max handle blocks inside one texture row;")
    print("min/max handle blocks spanning rows (Routine 4.4's two cases).")
    print()

    predicted = predict_pbsn_counters(65_536)
    assert predicted.passes == counters.passes
    print("(the analytic model predicts these counters exactly — "
          "that is what lets the benchmarks extrapolate to 100M)")
    print()


def figure3_table() -> None:
    print("=" * 64)
    print("Figure 3 in table form (modelled paper-hardware seconds)")
    print("=" * 64)
    table = figure3_series(sizes=[1 << k for k in range(12, 24, 2)],
                           wall_limit=1 << 14)
    print(table.render())
    print()


if __name__ == "__main__":
    one_sort_step_by_hand()
    pass_breakdown()
    figure3_table()
    print("done.")
