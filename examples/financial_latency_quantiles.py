#!/usr/bin/env python3
"""Quantile tracking over financial tick data (the paper's "finance
logs" use case).

A trading venue streams trade prices; risk systems continuously ask for
the median and tail quantiles of the *recent* market — a sliding-window
query — and for value-at-threshold style correlated aggregates ("how
much volume traded below the 10th percentile price?").

Run:  python examples/financial_latency_quantiles.py
"""

import numpy as np

from repro import CorrelatedSum, StreamMiner, financial_tick_stream


def sliding_price_quantiles(prices: np.ndarray) -> None:
    print("=" * 64)
    print("Sliding-window price quantiles (last 20,000 ticks)")
    print("=" * 64)
    miner = StreamMiner("quantile", eps=0.01, backend="gpu",
                        mode="sliding", sliding_window=20_000,
                        variable=True)
    miner.process(prices)
    window = prices[-20_000:]
    for phi in (0.05, 0.5, 0.95):
        est = miner.quantile(phi)
        exact = float(np.quantile(window, phi))
        print(f"  P{int(phi * 100):02d}: estimate {est:9.4f}   "
              f"exact {exact:9.4f}   (|diff| {abs(est - exact):.4f})")

    print("\nvariable-width: the same miner answers narrower suffixes")
    for width in (2_000, 10_000):
        est = miner.quantile(0.5, width=width)
        exact = float(np.median(prices[-width:]))
        print(f"  median of last {width:6,} ticks: estimate {est:9.4f}  "
              f"exact {exact:9.4f}")
    print()


def entire_history_quantiles(prices: np.ndarray) -> None:
    print("=" * 64)
    print("Entire-history quantiles (exponential histogram of summaries)")
    print("=" * 64)
    miner = StreamMiner("quantile", eps=0.005, backend="gpu",
                        window_size=8192, stream_length_hint=prices.size)
    miner.process(prices)
    estimator = miner.estimator
    print(f"{prices.size:,} ticks in {estimator.num_buckets} buckets, "
          f"{estimator.space():,} summary entries total")
    for phi in (0.01, 0.5, 0.99):
        print(f"  P{int(phi * 100):02d} over full history: "
              f"{miner.quantile(phi):9.4f}")
    print()


def volume_below_price(prices: np.ndarray, rng: np.random.Generator) -> None:
    print("=" * 64)
    print("Correlated sum: volume traded below a price quantile")
    print("=" * 64)
    volumes = rng.lognormal(4.0, 1.0, prices.size).astype(np.float32)
    cs = CorrelatedSum(eps=0.01, window_size=5_000)
    cs.update(prices, volumes)
    total = float(volumes.sum())
    for phi in (0.1, 0.5, 0.9):
        est = cs.query(phi)
        threshold = float(np.quantile(prices, phi))
        exact = float(volumes[prices <= threshold].sum())
        print(f"  volume below P{int(phi * 100):02d} "
              f"(price <= {threshold:8.4f}): estimate {est:14,.0f}  "
              f"exact {exact:14,.0f}  ({abs(est - exact) / total:6.2%} "
              f"of total volume)")
    print()


if __name__ == "__main__":
    rng = np.random.default_rng(11)
    prices = financial_tick_stream(150_000, start_price=100.0, seed=11)
    sliding_price_quantiles(prices)
    entire_history_quantiles(prices)
    volume_below_price(prices, rng)
    print("done.")
