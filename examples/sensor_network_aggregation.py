#!/usr/bin/env python3
"""Sensor-network quantile aggregation (Greenwald-Khanna 2004, the model
the paper's Section 5.2 streaming algorithm is built on).

A field of sensors reports temperature readings up a routing tree; each
node forwards only a pruned epsilon-approximate summary instead of raw
readings, and the base station answers quantile queries over *all*
readings within the error budget — the communication-vs-accuracy
trade-off that motivated GK04.

Run:  python examples/sensor_network_aggregation.py
"""

import numpy as np

from repro import SensorNode, aggregate


def build_field(rng: np.random.Generator, fanout: int = 4,
                depth: int = 3, readings: int = 500) -> SensorNode:
    """A complete tree of sensors; deeper nodes sit in hotter terrain."""

    def build(level: int, bias: float) -> SensorNode:
        data = rng.normal(20.0 + bias, 3.0, readings)
        if level == 0:
            return SensorNode(data)
        children = [build(level - 1, bias + rng.normal(0, 2.0))
                    for _ in range(fanout)]
        return SensorNode(data, children)

    return build(depth, 0.0)


def raw_readings(node: SensorNode) -> np.ndarray:
    parts = [node.observations]
    for child in node.children:
        parts.append(raw_readings(child))
    return np.concatenate(parts)


def main() -> None:
    rng = np.random.default_rng(23)
    root = build_field(rng)
    total = root.total_observations
    print(f"sensor field: {total:,} readings across a depth-"
          f"{root.height} tree")

    for eps in (0.05, 0.01):
        summary = aggregate(root, eps=eps)
        reference = np.sort(raw_readings(root))
        print(f"\neps = {eps}: root summary holds {len(summary)} entries "
              f"(vs {total:,} raw readings, "
              f"{len(summary) / total:.2%} of the data moved)")
        worst = 0
        for phi in (0.1, 0.5, 0.9):
            est = summary.quantile(phi)
            target = max(1, int(np.ceil(phi * total)))
            lo = int(np.searchsorted(reference, est, "left")) + 1
            hi = int(np.searchsorted(reference, est, "right"))
            err = max(lo - target, target - hi, 0)
            worst = max(worst, err)
            print(f"  P{int(phi * 100):02d}: {est:7.3f} degC  "
                  f"(rank error {err}, bound {eps * total:.0f})")
        assert worst <= eps * total


if __name__ == "__main__":
    main()
    print("\ndone.")
