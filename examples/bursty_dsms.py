#!/usr/bin/env python3
"""A bursty DSMS front-end: shed, spill, or buy a faster sorter.

Section 1 of the paper: when arrival bursts exceed the processor, a
data-stream management system must shed load or spill to disk — "Ideally,
we would like to develop new hardware-accelerated solutions that can
offer improved processing power".  This example quantifies that
trade-off: the same bursty stream is fed through admission control at a
'CPU-rate' capacity and at a 'GPU-rate' capacity (derived from the two
backends' modelled sort throughput at this window size), and we compare
how much data each configuration keeps and how the heavy-hitter results
degrade under shedding.

Run:  python examples/bursty_dsms.py
"""

from collections import Counter

import numpy as np

from repro import LossyCounting
from repro.bench.models import predicted_gpu_sort_time
from repro.gpu.timing import CPU_MODEL_INTEL
from repro.streams import LoadShedder, bursty_arrivals, zipf_stream

WINDOW = 1_000_000
TICK_SECONDS = 1e-3  # one arrival interval


def capacity_from_sort_rate(seconds_per_window: float) -> int:
    """Elements absorbable per tick given the sort cost per window."""
    rate = WINDOW / seconds_per_window  # elements per second
    return max(1, int(rate * TICK_SECONDS))


def run(label: str, capacity: int, data: np.ndarray,
        arrivals: list[int]) -> None:
    shedder = LoadShedder(capacity_per_tick=capacity, policy="shed", seed=1)
    miner = LossyCounting(eps=0.001)
    pos = 0
    for size in arrivals:
        miner.update(shedder.offer(data[pos:pos + size]))
        pos += size
    shedder.check_conservation()

    true = Counter(data.tolist())
    heavy = {v for v, c in true.items() if c >= 0.02 * data.size}
    support = max(0.002, 0.02 * shedder.stats.keep_rate * 0.5)
    reported = {v for v, _ in miner.frequent_items(support)}
    missed = heavy - reported
    print(f"{label}:")
    print(f"  capacity        : {capacity:,} elements/tick")
    print(f"  kept            : {shedder.stats.keep_rate:7.2%} "
          f"({shedder.stats.shed:,} shed)")
    print(f"  heavy hitters   : {len(heavy - missed)}/{len(heavy)} found "
          f"at adjusted support")
    print()


def main() -> None:
    n = 400_000
    data = zipf_stream(n, alpha=1.3, universe=2_000, seed=41)
    arrivals = list(bursty_arrivals(n, mean_rate=5_000, burst_rate=30_000,
                                    burst_fraction=0.2, seed=42))
    print(f"stream: {n:,} elements, bursts of 30k elements/tick "
          f"on a 5k baseline\n")

    # Sorting dominates the pipeline, so the sustainable ingest rate is
    # set by each backend's modelled sort time per window.
    cpu_seconds = CPU_MODEL_INTEL.time(WINDOW)
    gpu_breakdown = predicted_gpu_sort_time(4 * WINDOW)
    gpu_seconds = (gpu_breakdown.total - gpu_breakdown.setup) / 4

    run("CPU-rate admission (Intel quicksort)",
        capacity_from_sort_rate(cpu_seconds), data, arrivals)
    run("GPU-rate admission (PBSN co-processor)",
        capacity_from_sort_rate(gpu_seconds), data, arrivals)

    print("At this (large) window size the GPU's modelled sort rate "
          "exceeds the CPU's,\nso the GPU-rate admission keeps more of "
          "every burst — the paper's argument for\nthe co-processor, in "
          "DSMS terms.  (At small windows the CPU wins; see Figure 7.)")


if __name__ == "__main__":
    main()
