#!/usr/bin/env python3
"""Query selectivity estimation with streaming equi-depth histograms.

The database use case behind the paper's Section 1 remark that quantile
algorithms are "used as subroutines ... related to histogram
maintenance": a query optimiser needs up-to-date histograms over columns
that are ingested continuously.  This example maintains an equi-depth
histogram from the stream, estimates range-predicate selectivities, and
compares against exact answers and a distinct-count sketch for the
equality-predicate case.

Run:  python examples/selectivity_estimation.py
"""

import numpy as np

from repro import EquiDepthHistogram, WindowedDistinctCounter
from repro.streams import normal_stream, zipf_stream


def range_selectivity() -> None:
    print("=" * 64)
    print("Range predicates on a streaming numeric column")
    print("=" * 64)
    column = normal_stream(300_000, mean=1000, std=200, seed=31)
    histogram = EquiDepthHistogram(buckets=32, eps=0.005,
                                   window_size=8192,
                                   stream_length_hint=column.size)
    histogram.update(column)

    predicates = [(800, 1200), (0, 900), (1390, 1410), (1500, 4000)]
    print(f"{'predicate':>22} {'estimated':>10} {'exact':>10} {'abs err':>8}")
    for low, high in predicates:
        est = histogram.selectivity(low, high)
        true = float(np.mean((column >= low) & (column <= high)))
        print(f"  value in [{low:5}, {high:5}] {est:10.4f} {true:10.4f} "
              f"{abs(est - true):8.4f}")
    print(f"\nhistogram buckets: {len(histogram.histogram())}, "
          f"summarising {histogram.count:,} rows")
    print()


def skewed_column() -> None:
    print("=" * 64)
    print("Skewed column: heavy values get their own buckets")
    print("=" * 64)
    column = zipf_stream(200_000, alpha=1.5, universe=1000, seed=32)
    histogram = EquiDepthHistogram(buckets=16, eps=0.005,
                                   window_size=8192,
                                   stream_length_hint=column.size)
    histogram.update(column)
    buckets = histogram.histogram()
    print(f"{len(buckets)} buckets (merged from 16 where quantiles "
          f"coincide on heavy values):")
    for bucket in buckets[:6]:
        print(f"  [{bucket.low:7.1f}, {bucket.high:7.1f}] "
              f"depth ~{bucket.depth:9,.0f}")
    print()


def cardinality_for_equality_predicates() -> None:
    print("=" * 64)
    print("Distinct counting for equality-predicate selectivity")
    print("=" * 64)
    rng = np.random.default_rng(33)
    column = rng.integers(0, 40_000, 500_000).astype(np.float32)
    counter = WindowedDistinctCounter(k=1024, window_size=8192)
    counter.update(column)
    estimate = counter.estimate()
    exact = len(np.unique(column))
    print(f"rows           : {column.size:,}")
    print(f"distinct (KMV) : {estimate:,.0f}  "
          f"(exact {exact:,}, error "
          f"{abs(estimate - exact) / exact:.2%}, "
          f"2-sigma bound {counter.error_bound():.2%})")
    print(f"=> uniform equality selectivity estimate: "
          f"1/{estimate:,.0f} = {1 / estimate:.2e}")
    print()


if __name__ == "__main__":
    range_selectivity()
    skewed_column()
    cardinality_for_equality_predicates()
    print("done.")
