#!/usr/bin/env python3
"""Sharded streaming service: async ingestion, merged-shard queries.

The batch engine (`StreamMiner`) answers queries after one pipeline has
seen the whole stream.  This demo runs the production-shaped layer on
top: N independent miner shards behind bounded asyncio queues, fed by
concurrent producers, answering quantile / heavy-hitter / distinct
queries *mid-stream* by merging the shards' epsilon-summaries — the
mergeability of GK-04 summaries (paper Section 5.2) is exactly what
makes the distribution step free of additional error.

Three scenarios:

1. quantiles over uniform data, queried mid-stream and at the end;
2. heavy hitters over a zipf stream (hash partitioning: a value's whole
   count lives on one shard, so the union query keeps the MM02 bounds);
3. a bursty producer against a capacity-limited service, showing the
   load-shedding hook and the backpressure metrics.

Run:  python examples/sharded_service.py
"""

import asyncio

from repro.query import build_service
from repro.service import format_result, run_service_demo
from repro.streams import bursty_arrivals, zipf_stream


def banner(title: str) -> None:
    print("=" * 64)
    print(title)
    print("=" * 64)


def quantile_demo() -> None:
    banner("1. sharded quantiles (round-robin, merge-on-query)")
    result = run_service_demo(statistic="quantile", n=200_000, eps=0.02,
                              num_shards=4, producers=3, window_size=2048,
                              workload="uniform")
    print(format_result(result))
    print()


def heavy_hitter_demo() -> None:
    banner("2. sharded heavy hitters (hash partitioning)")
    result = run_service_demo(statistic="frequency", n=200_000, eps=0.002,
                              num_shards=4, producers=3, workload="zipf",
                              support=0.02)
    print(format_result(result))
    print()


async def shedding_demo() -> None:
    banner("3. bursty arrivals against a capacity-limited service")
    # Each shard absorbs 1500 elements per arrival tick; bursts beyond
    # that are dropped by the shedders instead of growing the queues.
    # Built through the query-layer factory — the same seam the serve
    # runner, the CLI, and the standing-query front-end construct with.
    service = build_service(
        "async",
        dict(statistic="quantile", eps=0.05, num_shards=2,
             backend="cpu", window_size=1024),
        dict(queue_chunks=4, shed_capacity=1500))
    data = zipf_stream(150_000, seed=7)
    consumed = 0
    async with service:
        for size in bursty_arrivals(data.size, mean_rate=2000,
                                    burst_rate=20_000, seed=7):
            await service.ingest(data[consumed:consumed + size])
            consumed += size
        await service.drain()
        median = await service.quantile(0.5)
        metrics = service.metrics
    kept = metrics.ingested / consumed
    print(f"offered {consumed:,} elements, accepted {metrics.ingested:,} "
          f"({kept:.0%}), shed {metrics.shed:,}")
    print(f"median over the surviving sample: {median:g} "
          f"(uniform shedding keeps quantiles usable)")
    for shard in metrics.shards:
        print(f"  shard {shard.shard_id}: {shard.elements:,} elements, "
              f"queue high-water {shard.queue_high_water}, "
              f"shed {shard.shed:,}")
    print()


def main() -> None:
    quantile_demo()
    heavy_hitter_demo()
    asyncio.run(shedding_demo())


if __name__ == "__main__":
    main()
