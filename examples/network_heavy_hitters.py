#!/usr/bin/env python3
"""Per-tenant standing queries on a high-speed network stream (the
paper's motivating use case: "high-speed networking ... generate
massive volumes of data").

Simulates a router monitoring packet sizes with three tenants watching
the same stream through the continuous-query front-end:

* ``noc``      — dominant packet classes plus the p99 size, and a
                 sliding-window watch that catches traffic shifts;
* ``billing``  — the top-5 packet classes and the distinct-size count;
* ``capacity`` — the median size and the coarse heavy hitters.

Seven standing queries, one ingest pass: the front-end plans each spec
onto the cheapest capable estimator and shares sketches across tenants
whenever one sketch's eps grade dominates another's demand — the whole
point of the query layer.  A final section shows hierarchical heavy
hitters (which size *bands* carry the traffic), which answers a
question the flat sketches cannot.

Run:  python examples/network_heavy_hitters.py
"""

import asyncio

import numpy as np

from repro import HierarchicalHeavyHitters, network_trace_stream
from repro.query import QueryFrontEnd, QuerySpec

STREAM = "router0"
CHUNK = 8_192

#: What each tenant watches.  Several specs deliberately overlap in
#: sketch demand (e.g. billing's top-5 needs the same frequency grade
#: as noc's heavy hitters) so the sharing is visible in the report.
TENANT_QUERIES = {
    "noc": [
        QuerySpec("heavy_hitters", key=STREAM, eps=0.002, support=0.01,
                  tenant="noc"),
        QuerySpec("quantile", key=STREAM, eps=0.01, phi=0.99,
                  tenant="noc"),
        QuerySpec("heavy_hitters", key=STREAM, eps=0.002, support=0.05,
                  window=50_000, tenant="noc"),
    ],
    "billing": [
        QuerySpec("top_k", key=STREAM, eps=0.002, k=5, tenant="billing"),
        QuerySpec("distinct", key=STREAM, eps=0.02, tenant="billing"),
    ],
    "capacity": [
        QuerySpec("quantile", key=STREAM, eps=0.05, phi=0.5,
                  tenant="capacity"),
        QuerySpec("heavy_hitters", key=STREAM, eps=0.01, support=0.05,
                  tenant="capacity"),
    ],
}


def banner(title: str) -> None:
    print("=" * 64)
    print(title)
    print("=" * 64)


def describe(value, metric: str) -> str:
    if metric in ("heavy_hitters", "top_k"):
        pairs = ", ".join(f"{size:.0f}B: ~{count:,}"
                          for size, count in value[:5])
        return pairs or "(none above threshold)"
    if metric == "distinct":
        return f"~{value:,.0f} distinct sizes"
    return f"{value:,.1f} bytes"


async def standing_queries(trace: np.ndarray) -> None:
    banner("Per-tenant standing queries over one router stream")
    async with QueryFrontEnd(num_shards=4) as frontend:
        handles = {tenant: [await frontend.register(spec) for spec in specs]
                   for tenant, specs in TENANT_QUERIES.items()}

        # One ingest pass; the front-end fans each chunk out once per
        # physical sketch, never once per query.
        for lo in range(0, trace.size, CHUNK):
            await frontend.ingest(trace[lo:lo + CHUNK], STREAM)
        # A traffic shift: a burst of 1200-byte packets.  Only the
        # sliding-window watch should react; history sketches barely
        # move.
        burst = np.full(20_000, 1200.0, dtype=np.float32)
        await frontend.ingest(burst, STREAM)

        metrics = frontend.metrics
        print(f"{trace.size + burst.size:,} packets; "
              f"{metrics.registered} standing queries riding "
              f"{metrics.physical_sketches} physical sketches "
              f"(shared ratio {metrics.shared_ratio:.0%})")

        answers = await frontend.answer_all(fresh=True)
        for tenant, ids in handles.items():
            print(f"\n[{tenant}]")
            for query_id in ids:
                spec = frontend.get(query_id).spec
                answer = answers[query_id]
                scope = (f"last {spec.window:,}" if spec.window
                         else "history")
                label = spec.metric + (f"(phi={spec.phi})"
                                       if spec.metric == "quantile" else "")
                shared = "  [shared sketch]" if answer.shared else ""
                print(f"  {label:<22} {scope:<12} eps<="
                      f"{answer.error_bound:g}{shared}")
                print(f"    -> {describe(answer.value, spec.metric)}")
    print()


def hierarchical_bands(trace: np.ndarray) -> None:
    banner("Hierarchical heavy hitters: which size bands dominate")
    hhh = HierarchicalHeavyHitters(eps=0.002, levels=12)
    hhh.update(trace)
    print("bands (level L groups 2^L consecutive sizes):")
    for level, prefix, count in hhh.query(0.05):
        low = prefix << level
        high = ((prefix + 1) << level) - 1
        label = f"{low}" if level == 0 else f"{low}-{high}"
        print(f"  level {level:2d}  sizes {label:>11} bytes : "
              f">= {count:8,} packets")
    print()


if __name__ == "__main__":
    trace = network_trace_stream(200_000, seed=7)
    asyncio.run(standing_queries(trace))
    hierarchical_bands(trace)
    print("done.")
