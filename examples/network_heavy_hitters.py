#!/usr/bin/env python3
"""Heavy hitters on a high-speed network stream (the paper's motivating
use case: "high-speed networking ... generate massive volumes of data").

Simulates a router monitoring packet sizes, finds the dominant packet
classes over the entire history AND over a sliding window of the most
recent traffic, and demonstrates hierarchical heavy hitters — which size
*bands* carry the traffic, not just which exact sizes.

Run:  python examples/network_heavy_hitters.py
"""

import numpy as np

from repro import (HierarchicalHeavyHitters, StreamMiner,
                   network_trace_stream)


def history_heavy_hitters(trace: np.ndarray) -> None:
    print("=" * 64)
    print("Entire-history heavy hitters (Manku-Motwani on the GPU engine)")
    print("=" * 64)
    miner = StreamMiner("frequency", eps=0.0005, backend="gpu")
    miner.process(trace)
    print(f"{trace.size:,} packets processed; summary holds "
          f"{len(miner.estimator):,} entries "
          f"(bound: {miner.estimator.space_bound():,})")
    print("packet sizes above 1% of all traffic:")
    for size, count in miner.frequent_items(0.01)[:10]:
        share = count / trace.size
        print(f"  {size:6.0f} bytes : {count:8,} packets  ({share:5.1%})")
    print()


def sliding_heavy_hitters(trace: np.ndarray) -> None:
    print("=" * 64)
    print("Sliding-window heavy hitters (last 50,000 packets)")
    print("=" * 64)
    miner = StreamMiner("frequency", eps=0.002, backend="gpu",
                        mode="sliding", sliding_window=50_000)
    # a traffic shift: inject a burst of 1200-byte packets at the end
    burst = np.full(20_000, 1200.0, dtype=np.float32)
    miner.process(np.concatenate([trace, burst]))
    print("recent heavy hitters (the burst should appear):")
    for size, count in miner.frequent_items(0.05)[:6]:
        print(f"  {size:6.0f} bytes : ~{count:,} of the last 50k packets")
    print()


def hierarchical_bands(trace: np.ndarray) -> None:
    print("=" * 64)
    print("Hierarchical heavy hitters: which size bands dominate")
    print("=" * 64)
    hhh = HierarchicalHeavyHitters(eps=0.002, levels=12)
    hhh.update(trace)
    print("bands (level L groups 2^L consecutive sizes):")
    for level, prefix, count in hhh.query(0.05):
        low = prefix << level
        high = ((prefix + 1) << level) - 1
        label = f"{low}" if level == 0 else f"{low}-{high}"
        print(f"  level {level:2d}  sizes {label:>11} bytes : "
              f">= {count:8,} packets")
    print()


if __name__ == "__main__":
    trace = network_trace_stream(200_000, seed=7)
    history_heavy_hitters(trace)
    sliding_heavy_hitters(trace)
    hierarchical_bands(trace)
    print("done.")
