"""A stdlib HTTP endpoint for ``/metrics`` and ``/healthz``.

``repro serve --metrics-port`` starts one of these next to the asyncio
service: a daemon-threaded :class:`http.server.ThreadingHTTPServer`
that renders the shared :class:`~repro.obs.metrics.MetricsRegistry` in
the Prometheus text format on every scrape.  There is deliberately no
framework and no dependency — the whole point of the pull model is that
serving metrics is just "snapshot, render, write".
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import to_json, to_prometheus
from .metrics import MetricsRegistry

__all__ = ["MetricsServer"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serves a registry over HTTP from a background daemon thread.

    Parameters
    ----------
    registry:
        The registry to snapshot on every ``/metrics`` request.
    port:
        TCP port to bind; ``0`` (the default) picks a free one — read
        :attr:`port` after :meth:`start` for the bound value.
    host:
        Bind address; loopback by default (a reverse proxy or the
        operator's scrape config decides what is public).
    healthy:
        Optional zero-argument callable; ``/healthz`` returns 200 while
        it is truthy and 503 once it is not (e.g. a shard failed
        permanently).  ``None`` means always healthy.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1", healthy=None):
        self.registry = registry
        self.requested_port = int(port)
        self.host = host
        self.healthy = healthy
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Bind the socket and start serving from a daemon thread."""
        if self._server is not None:
            return self
        server = ThreadingHTTPServer((self.host, self.requested_port),
                                     _handler_for(self))
        server.daemon_threads = True
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever,
                                        name="metrics-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _handler_for(owner: MetricsServer):
    """Build a request-handler class bound to one :class:`MetricsServer`."""

    class Handler(BaseHTTPRequestHandler):
        def _send(self, status: int, content_type: str,
                  body: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                self._send(200, PROMETHEUS_CONTENT_TYPE,
                           to_prometheus(owner.registry.snapshot()))
            elif path == "/metrics.json":
                self._send(200, "application/json",
                           to_json(owner.registry.snapshot()))
            elif path == "/healthz":
                ok = owner.healthy is None or bool(owner.healthy())
                self._send(200 if ok else 503, "application/json",
                           '{"status": "ok"}\n' if ok
                           else '{"status": "unhealthy"}\n')
            else:
                self._send(404, "text/plain; charset=utf-8",
                           "not found; try /metrics or /healthz\n")

        def log_message(self, *args) -> None:
            """Silence per-request stderr logging (scrapes are periodic)."""

    return Handler
