"""Observability: spans, metrics, exporters, and the HTTP endpoint.

A zero-dependency leaf layer (it imports nothing from the rest of the
package — enforced by ``tools/check_layers.py``) that every other layer
emits into:

* :mod:`repro.obs.spans` — the tracing side: a thread-safe
  :class:`SpanCollector` (no-op by default) that the pipeline stages,
  the simulated GPU, and the service workers record into; ``repro
  trace`` renders the tree as a live Figure 4.
* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  :class:`MetricsRegistry` that also absorbs the pre-existing counter
  modules through pull-model sources (:mod:`repro.obs.sources`).
* :mod:`repro.obs.export` — Prometheus text format + JSON renderers
  and the parser the round-trip tests use.
* :mod:`repro.obs.http` — ``/metrics`` + ``/healthz`` on a stdlib
  daemon-thread HTTP server (``repro serve --metrics-port``).

See DESIGN.md §11 for the span taxonomy and the overhead budget.
"""

from .export import parse_prometheus, to_json, to_prometheus
from .http import MetricsServer
from .metrics import (Counter, Gauge, Histogram, HistogramValue,
                      MetricsRegistry, Sample)
from .sources import (compiled_state_samples, engine_report_samples,
                      perf_counter_samples, query_metrics_samples,
                      register_compiled_state, register_engine_reports,
                      register_perf_counters, register_query_metrics,
                      register_service_metrics, service_metrics_samples)
from .spans import (NullCollector, Span, SpanCollector, aggregate,
                    collecting, collector, render_tree, set_collector,
                    stage_shares)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricsRegistry",
    "MetricsServer",
    "NullCollector",
    "Sample",
    "Span",
    "SpanCollector",
    "aggregate",
    "collecting",
    "collector",
    "compiled_state_samples",
    "engine_report_samples",
    "parse_prometheus",
    "perf_counter_samples",
    "query_metrics_samples",
    "register_compiled_state",
    "register_engine_reports",
    "register_query_metrics",
    "register_perf_counters",
    "register_service_metrics",
    "render_tree",
    "service_metrics_samples",
    "set_collector",
    "stage_shares",
    "to_json",
    "to_prometheus",
]
