"""Counters, gauges, histograms, and the registry that unifies them.

The package grew three disconnected counter modules — the GPU's
:class:`~repro.gpu.counters.PerfCounters`, the pipeline's
:class:`~repro.core.pipeline.timing.EngineReport`, and the service's
:class:`~repro.service.metrics.ServiceMetrics`.  Each keeps its public
API (they are cheap, purpose-built, and heavily asserted against), and
this registry absorbs them by *pulling*: a registered source callable is
invoked at snapshot time and contributes :class:`Sample` rows next to
the registry's own instruments.  The hot paths therefore pay nothing for
unification — translation happens only when somebody scrapes.

Consistency: every instrument created by a registry shares that
registry's lock, ``snapshot()`` reads all of them under it, and
:meth:`MetricsRegistry.atomically` lets writers apply *paired* updates
(e.g. ``elements`` + ``batches``) that no snapshot can observe half-way
— the no-tearing claim the torn-snapshot test hammers.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricsRegistry",
    "Sample",
]

#: Default histogram bucket upper bounds (seconds-flavoured, like
#: Prometheus' own defaults for latency histograms).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


@dataclass(frozen=True)
class HistogramValue:
    """An immutable histogram reading: cumulative buckets + sum + count."""

    bounds: tuple[float, ...]
    #: cumulative counts per bound, plus the +Inf bucket last.
    counts: tuple[int, ...]
    sum: float
    count: int


@dataclass(frozen=True)
class Sample:
    """One exported metric reading (the unit every exporter consumes)."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    value: float | HistogramValue
    labels: tuple[tuple[str, str], ...] = ()
    help: str = ""


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((labels or {}).items()))


class Counter:
    """Monotonically increasing value; create via ``registry.counter``."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels, lock):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc({amount}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _sample(self) -> Sample:
        return Sample(self.name, self.kind, self._value, self.labels,
                      self.help)


class Gauge(Counter):
    """A value that can go both ways; create via ``registry.gauge``."""

    kind = "gauge"

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Cumulative-bucket histogram; create via ``registry.histogram``."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labels, lock,
                 buckets=DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = lock
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._counts = [0] * (len(self.bounds) + 1)  # +Inf last
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1
            self._sum += value
            self._count += 1

    @property
    def value(self) -> HistogramValue:
        with self._lock:
            return self._read()

    def _read(self) -> HistogramValue:
        cumulative: list[int] = []
        running = 0
        for count in self._counts:
            running += count
            cumulative.append(running)
        return HistogramValue(self.bounds, tuple(cumulative), self._sum,
                              self._count)

    def _sample(self) -> Sample:
        return Sample(self.name, self.kind, self._read(), self.labels,
                      self.help)


class MetricsRegistry:
    """Get-or-create instrument store + pull-model sources + snapshot.

    >>> from repro.obs import MetricsRegistry
    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_demo_total", "demo").inc(3)
    >>> [s.value for s in registry.snapshot()]
    [3.0]
    """

    def __init__(self):
        # One reentrant lock for the whole registry: instruments share
        # it, so a snapshot is a single consistent cut and atomically()
        # can nest instrument updates without deadlocking.
        self._lock = threading.RLock()
        self._instruments: dict = {}
        self._sources: list = []

    # -- instrument construction (get-or-create) -----------------------
    def _get(self, cls, name: str, help: str, labels, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            instrument = cls(name, help, _label_key(labels), self._lock,
                             **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: dict[str, str] | None = None) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: dict[str, str] | None = None) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: dict[str, str] | None = None,
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        """Get or create a histogram."""
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- pull-model unification ----------------------------------------
    def register_source(self, source) -> None:
        """Add a callable returning an iterable of :class:`Sample`.

        Sources are how the existing counter modules join the registry
        without changing their APIs: a source closure reads the live
        object (``PerfCounters``, ``EngineReport``, ``ServiceMetrics``,
        ...) and translates it to samples *at scrape time*.
        """
        with self._lock:
            self._sources.append(source)

    # -- consistency ---------------------------------------------------
    @contextmanager
    def atomically(self):
        """Apply several instrument updates as one indivisible step.

        Holding the registry lock across the block means no concurrent
        ``snapshot()`` can observe the first update without the second —
        use it for invariants like "elements only grows with batches".
        """
        with self._lock:
            yield

    def snapshot(self) -> list[Sample]:
        """One consistent reading of every instrument and source."""
        with self._lock:
            samples = [instrument._sample()
                       for instrument in self._instruments.values()]
            for source in self._sources:
                samples.extend(source())
        return samples
