"""Sample extractors for the package's existing counter objects.

This is the absorption layer: the GPU's ``PerfCounters``, the engine's
``EngineReport`` and the service's ``ServiceMetrics`` keep their public
APIs untouched, and these functions translate a *live* instance into
:class:`~repro.obs.metrics.Sample` rows whenever the registry snapshots.
Everything is duck-typed attribute access — ``obs`` stays a leaf layer
with no imports from the rest of the package, and any object with the
same attributes (a test double, a ``delta()`` result) exports the same
way.

Use the ``register_*`` helpers to wire a live object into a registry::

    registry = MetricsRegistry()
    register_service_metrics(registry, lambda: service.metrics)
"""

from __future__ import annotations

from .metrics import MetricsRegistry, Sample

__all__ = [
    "compiled_state_samples",
    "engine_report_samples",
    "perf_counter_samples",
    "query_metrics_samples",
    "register_compiled_state",
    "register_engine_reports",
    "register_perf_counters",
    "register_query_metrics",
    "register_service_metrics",
    "service_metrics_samples",
]

_LABELS = tuple[tuple[str, str], ...]


def perf_counter_samples(counters,
                         labels: dict[str, str] | None = None
                         ) -> list[Sample]:
    """Translate a :class:`~repro.gpu.counters.PerfCounters` instance."""
    base: _LABELS = tuple(sorted((labels or {}).items()))
    fields = (
        ("passes", "rendering passes issued"),
        ("fragments", "fragments generated"),
        ("blend_ops", "blend operations executed"),
        ("texels_fetched", "texels fetched by the texture units"),
        ("bytes_written", "bytes written to the frame buffer"),
        ("bytes_read", "bytes read by the fragment pipeline"),
        ("bytes_uploaded", "bytes uploaded CPU to GPU"),
        ("bytes_readback", "bytes read back GPU to CPU"),
        ("uploads", "CPU to GPU transfers"),
        ("readbacks", "GPU to CPU transfers"),
    )
    samples = [
        Sample(f"repro_gpu_{name}_total", "counter",
               float(getattr(counters, name)), base, help)
        for name, help in fields
    ]
    for label, count in sorted(getattr(counters,
                                       "pass_breakdown", {}).items()):
        samples.append(Sample(
            "repro_gpu_pass_breakdown_total", "counter", float(count),
            base + (("pass", str(label)),),
            "rendering passes by pass label"))
    return samples


def engine_report_samples(report,
                          labels: dict[str, str] | None = None
                          ) -> list[Sample]:
    """Translate an :class:`~repro.core.pipeline.timing.EngineReport`."""
    base: _LABELS = tuple(sorted({
        "backend": str(getattr(report, "backend", "")),
        "statistic": str(getattr(report, "statistic", "")),
        **(labels or {}),
    }.items()))
    samples = [
        Sample("repro_pipeline_elements_total", "counter",
               float(report.elements), base, "elements through the pipeline"),
        Sample("repro_pipeline_windows_total", "counter",
               float(report.windows), base, "windows through the pipeline"),
    ]
    for op, seconds in report.wall.items():
        samples.append(Sample(
            "repro_pipeline_wall_seconds_total", "counter", float(seconds),
            base + (("op", op),), "measured wall seconds per operation"))
    for op, seconds in report.modelled.items():
        samples.append(Sample(
            "repro_pipeline_modelled_seconds_total", "counter",
            float(seconds), base + (("op", op),),
            "modelled paper-hardware seconds per operation"))
    return samples


def service_metrics_samples(metrics) -> list[Sample]:
    """Translate a :class:`~repro.service.metrics.ServiceMetrics`."""
    samples = [
        Sample("repro_service_ingested_total", "counter",
               float(metrics.ingested), (),
               "elements accepted by ingest"),
        Sample("repro_service_queries_total", "counter",
               float(metrics.queries), (), "queries answered"),
        Sample("repro_service_checkpoints_total", "counter",
               float(metrics.checkpoints), (), "checkpoints written"),
        Sample("repro_service_ingest_rate", "gauge",
               float(metrics.ingest_rate), (),
               "accepted elements per wall second"),
        Sample("repro_service_failed_shards", "gauge",
               float(len(metrics.failed_shards)), (),
               "permanently failed shards"),
        Sample("repro_service_taken_over_shards", "gauge",
               float(len(metrics.taken_over_shards)), (),
               "shards whose keyspace moved to survivors"),
    ]
    shard_fields = (
        ("elements", "counter", "elements dispatched into the shard"),
        ("batches", "counter", "coalesced batches dispatched"),
        ("update_seconds", "counter", "wall seconds inside miner.update"),
        ("shed", "counter", "elements dropped by the load shedder"),
        ("faults", "counter", "transient GPU faults observed"),
        ("retries", "counter", "backoff retries performed"),
        ("degraded_batches", "counter", "batches on the CPU fallback"),
        ("shm_batches", "counter", "batches via the shared-memory ring"),
        ("pickle_batches", "counter", "batches via the pipe fallback"),
        ("replayed_batches", "counter",
         "batches re-sent to restarted workers"),
        ("transport_seconds", "counter",
         "parent-side batch transport seconds"),
        ("net_batches", "counter", "batches via a TCP channel"),
        ("reconnects", "counter", "worker reconnections absorbed"),
        ("deadline_timeouts", "counter",
         "connection deadline/liveness expiries"),
        ("failures", "counter", "worker crashes"),
        ("restarts", "counter", "supervised worker restarts"),
        ("lost_elements", "counter", "elements lost to failed shards"),
        ("queue_depth", "gauge", "chunks waiting in the ingest queue"),
        ("queue_high_water", "gauge", "deepest the queue has been"),
        ("max_batch_seconds", "gauge", "slowest single batch dispatch"),
    )
    for shard in metrics.shards:
        labels: _LABELS = (("shard", str(shard.shard_id)),)
        for name, kind, help in shard_fields:
            suffix = "_total" if kind == "counter" else ""
            samples.append(Sample(
                f"repro_shard_{name}{suffix}", kind,
                float(getattr(shard, name)), labels, help))
        samples.append(Sample(
            "repro_shard_healthy", "gauge", float(bool(shard.healthy)),
            labels, "1 while the shard is healthy"))
        samples.append(Sample(
            "repro_shard_taken_over", "gauge",
            float(bool(getattr(shard, "taken_over", False))),
            labels, "1 once the shard's keyspace moved to survivors"))
    return samples


def query_metrics_samples(metrics) -> list[Sample]:
    """Translate a :class:`~repro.query.frontend.QueryMetrics`.

    The headline gauge is ``repro_query_shared_ratio`` — the fraction
    of registered standing queries served by a sketch they share with
    at least one other query (1 - sketches/queries).
    """
    gauges = (
        ("registered", "live registered standing queries"),
        ("physical_sketches", "live physical sketches backing them"),
        ("shared_ratio", "fraction of queries without a sketch of "
                         "their own"),
    )
    counters = (
        ("registrations", "standing-query registrations"),
        ("plans_built", "plans that built a fresh physical sketch"),
        ("plans_shared", "plans served by an existing sketch"),
        ("sketches_released", "sketches freed at refcount zero"),
        ("answers", "standing-query answers evaluated"),
        ("ingested_chunks", "chunks accepted by the front-end"),
        ("fanout_ingests", "chunk-to-sketch fan-out deliveries"),
    )
    samples = [
        Sample(f"repro_query_{name}", "gauge",
               float(getattr(metrics, name)), (), help)
        for name, help in gauges
    ]
    samples.extend(
        Sample(f"repro_query_{name}_total", "counter",
               float(getattr(metrics, name)), (), help)
        for name, help in counters
    )
    samples.append(Sample(
        "repro_query_plan_seconds_total", "counter",
        float(metrics.plan_seconds), (), "wall seconds spent planning"))
    return samples


def compiled_state_samples(state) -> list[Sample]:
    """Translate a compiled-tier state mapping.

    ``state`` is duck-typed :func:`repro.compiled.compiled_state`
    output: ``{"active": bool, "mode": "numba" | "numpy"}``.  The
    headline gauge is ``repro_compiled_active`` — whether new
    estimators run the compiled inner loops — with the JIT mode as a
    label so dashboards can tell a numba deployment from the
    pure-numpy fallback.
    """
    return [Sample(
        "repro_compiled_active", "gauge", float(bool(state["active"])),
        (("mode", str(state["mode"])),),
        "compiled estimator inner loops selected for new estimators")]


def _register(registry: MetricsRegistry, provider, translate,
              **kwargs) -> None:
    registry.register_source(lambda: translate(provider(), **kwargs))


def register_perf_counters(registry: MetricsRegistry, provider,
                           labels: dict[str, str] | None = None) -> None:
    """Pull GPU counters at scrape time; ``provider()`` returns them."""
    _register(registry, provider, perf_counter_samples, labels=labels)


def register_engine_reports(registry: MetricsRegistry, provider) -> None:
    """Pull engine reports at scrape time; ``provider()`` returns a list.

    Per-shard reports carry a ``shard`` label from their list position.
    """
    def source():
        samples: list[Sample] = []
        for index, report in enumerate(provider()):
            samples.extend(engine_report_samples(
                report, labels={"shard": str(index)}))
        return samples

    registry.register_source(source)


def register_service_metrics(registry: MetricsRegistry, provider) -> None:
    """Pull service metrics at scrape time; ``provider()`` returns them."""
    _register(registry, provider, service_metrics_samples)


def register_query_metrics(registry: MetricsRegistry, provider) -> None:
    """Pull front-end query metrics at scrape time."""
    _register(registry, provider, query_metrics_samples)


def register_compiled_state(registry: MetricsRegistry, provider) -> None:
    """Pull the compiled-tier knob at scrape time.

    ``provider()`` returns a ``compiled_state``-shaped mapping, so the
    gauge tracks env/CLI flips live without ``obs`` importing the
    :mod:`repro.compiled` layer.
    """
    _register(registry, provider, compiled_state_samples)
