"""Exporters: Prometheus text format 0.0.4 and JSON.

Both consume the :class:`~repro.obs.metrics.Sample` list a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` returns.  A minimal
:func:`parse_prometheus` is included so the test suite can round-trip
what ``/metrics`` serves — it understands exactly what
:func:`to_prometheus` emits (one metric per line, optional labels,
``# HELP``/``# TYPE`` comments), not the full exposition grammar.
"""

from __future__ import annotations

import json
import math

from .metrics import HistogramValue, Sample

__all__ = ["parse_prometheus", "to_json", "to_prometheus"]


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(str(value))}"'
                     for key, value in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def to_prometheus(samples: list[Sample]) -> str:
    """Render samples in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for sample in samples:
        if sample.name not in seen_headers:
            seen_headers.add(sample.name)
            if sample.help:
                lines.append(f"# HELP {sample.name} {sample.help}")
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if isinstance(sample.value, HistogramValue):
            value = sample.value
            for bound, count in zip((*value.bounds, math.inf),
                                    value.counts):
                bucket_labels = sample.labels + (
                    ("le", _format_value(bound)),)
                lines.append(f"{sample.name}_bucket"
                             f"{_labels_text(bucket_labels)} {count}")
            lines.append(f"{sample.name}_sum{_labels_text(sample.labels)} "
                         f"{_format_value(value.sum)}")
            lines.append(f"{sample.name}_count{_labels_text(sample.labels)} "
                         f"{value.count}")
        else:
            lines.append(f"{sample.name}{_labels_text(sample.labels)} "
                         f"{_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def to_json(samples: list[Sample]) -> str:
    """Render samples as a JSON document (stable key order)."""
    rows = []
    for sample in samples:
        row: dict = {
            "name": sample.name,
            "kind": sample.kind,
            "labels": dict(sample.labels),
        }
        if isinstance(sample.value, HistogramValue):
            row["value"] = {
                "bounds": list(sample.value.bounds),
                "counts": list(sample.value.counts),
                "sum": sample.value.sum,
                "count": sample.value.count,
            }
        else:
            row["value"] = sample.value
        if sample.help:
            row["help"] = sample.help
        rows.append(row)
    return json.dumps({"metrics": rows}, indent=2, sort_keys=True)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"unquoted label value near {text[eq:]!r}"
        j = eq + 2
        value: list[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                j += 1
                value.append({"n": "\n", '"': '"', "\\": "\\"}[text[j]])
            else:
                value.append(text[j])
            j += 1
        labels.append((key, "".join(value)))
        i = j + 1
    return tuple(sorted(labels))


def parse_prometheus(text: str) -> dict:
    """Parse :func:`to_prometheus` output back into readings.

    Returns ``{(name, labels): value}`` with labels as a sorted tuple of
    pairs — histogram series appear under their ``_bucket``/``_sum``/
    ``_count`` names.  Also validates the line grammar strictly enough
    that a malformed exposition fails the round-trip test.
    """
    readings: dict = {}
    types: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                assert parts[3] in ("counter", "gauge", "histogram"), \
                    f"unknown TYPE {parts[3]!r}"
                types[parts[2]] = parts[3]
            continue
        if "{" in line:
            name = line[:line.index("{")]
            rest = line[line.index("{") + 1:]
            labels_text, _, value_text = rest.rpartition("}")
            labels = _parse_labels(labels_text)
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
        key = (name, labels)
        assert key not in readings, f"duplicate series {key}"
        readings[key] = _parse_value(value_text.strip())
    return readings
