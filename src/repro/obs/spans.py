"""Zero-dependency tracing: spans, collectors, and the span tree.

The paper's whole evaluation is per-stage measurement — Figure 3's
transfer-vs-compute split and Figure 4's sort/histogram/merge/compress
breakdown.  This module makes that measurement a first-class runtime
artifact instead of something only the benchmark harness can see: every
layer of the pipeline emits :class:`Span` records into the installed
collector, and ``repro trace`` renders them as a live Figure 4.

Design rules (they are what keeps the overhead bound honest):

* the default collector is :class:`NullCollector` with ``enabled`` set
  to ``False`` — hot paths guard with ``if collector().enabled:`` so an
  uninstrumented run pays one attribute read per potential span;
* callers that already measured a duration (the pipeline stages time
  themselves for the :class:`~repro.core.pipeline.timing.EngineReport`)
  hand it over via :meth:`SpanCollector.record` instead of paying for a
  second ``perf_counter`` pair inside a context manager;
* parenting is a thread-local stack, so concurrently dispatching shards
  build separate, correctly-nested subtrees into one shared collector.

This module imports nothing from the rest of the package (enforced by
``tools/check_layers.py``): ``obs`` is a leaf every other layer may use.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "NullCollector",
    "Span",
    "SpanCollector",
    "aggregate",
    "collecting",
    "collector",
    "render_tree",
    "set_collector",
    "stage_shares",
]


@dataclass
class Span:
    """One timed, named interval with optional numeric/string attributes."""

    name: str
    span_id: int
    parent_id: int | None
    #: ``perf_counter`` seconds at start/end (same clock for all spans).
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def wall(self) -> float:
        """Measured duration in seconds."""
        return self.end - self.start


class NullCollector:
    """The default collector: collects nothing, costs (almost) nothing.

    ``enabled`` is ``False`` so instrumented hot paths can skip even the
    argument construction of a ``record`` call.  The methods still exist
    (and do nothing) so un-guarded call sites stay correct.
    """

    enabled = False

    def record(self, name: str, wall: float, **attrs) -> None:
        """Discard a pre-measured interval."""

    @contextmanager
    def span(self, name: str, **attrs):
        """No-op context manager (yields ``None``)."""
        yield None


class SpanCollector:
    """Accumulates spans from every layer, thread-safely.

    One collector instance is installed globally (see :func:`collecting`)
    and shared by the pipeline, the GPU device, and the service workers;
    each thread keeps its own parent stack so nesting stays correct
    under the service's ``asyncio.to_thread`` dispatches.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        #: finished context-manager spans (have ids; may be parents).
        self._closed: list[Span] = []
        #: per-thread leaf buffers of (name, parent, wall, end, attrs)
        #: tuples — recorded without ids or locks (see :meth:`record`).
        self._buffers: list[list] = []

    # -- parenting -----------------------------------------------------
    def _thread_state(self):
        local = self._local
        try:
            return local.stack, local.buffer
        except AttributeError:
            local.stack = []
            local.buffer = []
            with self._lock:
                self._buffers.append(local.buffer)
            return local.stack, local.buffer

    def current_parent(self) -> int | None:
        """The innermost open span id on this thread, if any."""
        stack, _ = self._thread_state()
        return stack[-1] if stack else None

    # -- emission ------------------------------------------------------
    def record(self, name: str, wall: float, **attrs) -> None:
        """Record an interval that the caller already measured.

        This is the hot path (the GPU emits one span per rendering
        pass), so it is a plain append to a thread-owned buffer: no
        lock, no id allocation, no object construction.  The interval
        is anchored so it *ends* now, which spares a second clock read;
        :meth:`snapshot` materialises the buffered tuples into
        :class:`Span` objects.  Recorded intervals are always leaves —
        only :meth:`span` blocks can parent other spans.
        """
        stack, buffer = self._thread_state()
        buffer.append((name, stack[-1] if stack else None, wall,
                       time.perf_counter(), attrs))

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span around a block; children nest under it."""
        span = Span(name, next(self._ids), self.current_parent(),
                    time.perf_counter(), 0.0, attrs)
        stack, _ = self._thread_state()
        stack.append(span.span_id)
        try:
            yield span
        finally:
            stack.pop()
            span.end = time.perf_counter()
            with self._lock:
                self._closed.append(span)

    # -- reading -------------------------------------------------------
    def snapshot(self) -> list[Span]:
        """Every span recorded so far, as materialised :class:`Span` s.

        Leaf tuples get ids here (fresh ones per call — only parent
        links matter for the tree).  Safe to call while other threads
        keep recording: buffers are append-only and read by index.
        """
        with self._lock:
            spans = list(self._closed)
            buffers = list(self._buffers)
        for buffer in buffers:
            for name, parent, wall, end, attrs in buffer[:len(buffer)]:
                spans.append(Span(name, next(self._ids), parent,
                                  end - wall, end, attrs))
        return spans


# ----------------------------------------------------------------------
# the installed collector
# ----------------------------------------------------------------------
_NULL = NullCollector()
_collector = _NULL


def collector():
    """The currently installed collector (the no-op one by default)."""
    return _collector


def set_collector(new) -> None:
    """Install ``new`` as the process-wide collector (``None`` resets)."""
    global _collector
    _collector = _NULL if new is None else new


@contextmanager
def collecting():
    """Install a fresh :class:`SpanCollector` for the duration of a block.

    >>> from repro.obs import collecting
    >>> with collecting() as spans:
    ...     pass  # run an instrumented workload
    >>> spans.snapshot()
    []
    """
    previous = _collector
    fresh = SpanCollector()
    set_collector(fresh)
    try:
        yield fresh
    finally:
        set_collector(previous)


# ----------------------------------------------------------------------
# span-tree aggregation and rendering
# ----------------------------------------------------------------------
@dataclass
class SpanGroup:
    """All spans that share one name-path from the root."""

    path: tuple[str, ...]
    count: int = 0
    wall: float = 0.0
    #: sums of every numeric attribute seen on the grouped spans.
    attr_totals: dict[str, float] = field(default_factory=dict)
    children: dict[str, "SpanGroup"] = field(default_factory=dict)


def aggregate(spans: list[Span]) -> SpanGroup:
    """Fold a span list into a tree of :class:`SpanGroup` nodes.

    Spans recur (one per window, per pass, per batch); grouping by the
    name-path keeps the render readable at any stream length while
    preserving totals exactly.
    """
    by_id = {span.span_id: span for span in spans}

    def path_of(span: Span) -> tuple[str, ...]:
        names: list[str] = []
        node: Span | None = span
        while node is not None:
            names.append(node.name)
            node = by_id.get(node.parent_id) if node.parent_id else None
        return tuple(reversed(names))

    root = SpanGroup(path=())
    for span in spans:
        node = root
        for name in path_of(span):
            node = node.children.setdefault(
                name, SpanGroup(path=node.path + (name,)))
        node.count += 1
        node.wall += span.wall
        for key, value in span.attrs.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                node.attr_totals[key] = node.attr_totals.get(key, 0.0) + value
    return root


def render_tree(spans: list[Span], total: float | None = None) -> str:
    """Human-readable indented tree of the aggregated spans."""
    root = aggregate(spans)
    if total is None:
        total = sum(g.wall for g in root.children.values()) or 1.0
    lines: list[str] = []

    def walk(group: SpanGroup, depth: int) -> None:
        for name in sorted(group.children,
                           key=lambda n: -group.children[n].wall):
            child = group.children[name]
            extras = "".join(
                f"  {k}={v:,.6g}" for k, v in sorted(
                    child.attr_totals.items()))
            lines.append(
                f"{'  ' * depth}{name:<{max(1, 24 - 2 * depth)}} "
                f"x{child.count:<6} {child.wall * 1e3:>9.3f} ms "
                f"{child.wall / total:>6.1%}{extras}")
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def stage_shares(spans: list[Span], attr: str = "modelled",
                 prefix: str = "pipeline.") -> dict[str, float]:
    """Per-stage fractions of a summed numeric span attribute.

    With the default arguments this recomputes Figure 4/6's operation
    shares *from the live spans*: the pipeline's spans carry the
    modelled paper-hardware seconds the
    :class:`~repro.core.pipeline.timing.TimingModel` billed, so the
    result matches ``EngineReport.modelled_shares()`` for the same run.
    """
    totals: dict[str, float] = {}
    for span in spans:
        if not span.name.startswith(prefix) or attr not in span.attrs:
            continue
        stage = span.name[len(prefix):]
        totals[stage] = totals.get(stage, 0.0) + float(span.attrs[attr])
    grand = sum(totals.values())
    if grand <= 0:
        return {stage: 0.0 for stage in totals}
    return {stage: value / grand for stage, value in totals.items()}
