"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class GpuError(ReproError):
    """Base class for failures inside the simulated GPU device."""


class TextureError(GpuError):
    """Invalid texture construction, access, or update."""


class VideoMemoryError(GpuError):
    """The simulated video memory budget would be exceeded."""


class BlendStateError(GpuError):
    """A rendering call was issued with an invalid blend configuration."""


class RasterizationError(GpuError):
    """A quad could not be rasterized (degenerate or out-of-bounds)."""


class BusError(GpuError):
    """A CPU <-> GPU transfer failed or was rejected."""


class SortError(ReproError):
    """A sorting routine was invoked on unsupported input."""


class SummaryError(ReproError):
    """An epsilon-approximate summary was misused."""


class BackendError(SummaryError):
    """A sorting backend could not be resolved or registered.

    Subclasses :class:`SummaryError` because backend selection has
    historically surfaced through the summary engines (``StreamMiner``
    raised ``SummaryError`` for unknown backends); existing handlers
    keep working.
    """


class InvariantViolation(SummaryError):
    """An internal invariant of a summary data structure was broken.

    This is raised by the (cheap, always-on) self-checks of the summary
    structures.  Seeing it means a bug in the library, never user error.
    """


class StreamError(ReproError):
    """A data-stream source or window configuration is invalid."""


class QueryError(ReproError):
    """An estimator was queried with out-of-range parameters."""


class ServiceError(ReproError):
    """The sharded streaming service was misconfigured or misused."""


class ShardFailedError(ServiceError):
    """A miner shard failed permanently and its answers are unavailable.

    Raised by the service's ingest and query paths once a shard's worker
    has exhausted its restart budget, instead of letting ``drain()`` or a
    query hang on a queue nobody is consuming.  ``shard_id`` names the
    dead shard; ``__cause__`` carries the original failure when known.
    """

    def __init__(self, shard_id: int, message: str | None = None):
        self.shard_id = int(shard_id)
        super().__init__(
            message if message is not None
            else f"shard {shard_id} failed permanently")


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or applied."""
