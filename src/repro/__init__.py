"""repro — GPU-accelerated approximate stream mining, reproduced.

A full reimplementation of Govindaraju, Raghuvanshi & Manocha,
*"Fast and Approximate Stream Mining of Quantiles and Frequencies Using
Graphics Processors"* (SIGMOD 2005): the rasterization-based PBSN
sorting algorithm, the epsilon-approximate quantile and frequency
summaries it accelerates, sliding-window variants, and — since this
library runs on commodity CPUs — a faithful software model of the
GeForce-6800-class GPU the paper used, with exact operation counters
and an analytic performance model.

Quick start::

    import numpy as np
    from repro import StreamMiner, uniform_stream

    miner = StreamMiner("quantile", eps=0.01, backend="gpu",
                        window_size=4096)
    miner.process(uniform_stream(100_000))
    print(miner.quantile(0.5))

See README.md for the architecture overview, DESIGN.md for the
paper-to-module map, and EXPERIMENTS.md for the figure reproductions.
"""

from .core import (CorrelatedSum, DgimCounter, DgimSum, EngineReport,
                   EquiDepthHistogram, FlajoletMartin, GKSummary,
                   HierarchicalHeavyHitters, KMinValues, LossyCounting,
                   MisraGries, QuantileSummary, SensorNode,
                   SlidingWindowFrequencies, SlidingWindowQuantiles,
                   SpaceSaving, StickySampling, StreamMiner,
                   StreamingQuantiles, VOptimalHistogram,
                   WindowHistogram, WindowedDistinctCounter, aggregate,
                   histogram_from_sorted)
from .errors import (BlendStateError, BusError, CheckpointError, GpuError,
                     InvariantViolation, QueryError, RasterizationError,
                     ReproError, ServiceError, ShardFailedError, SortError,
                     StreamError, SummaryError, TextureError,
                     VideoMemoryError)
from .gpu import FaultInjector, FaultPlan, GpuDevice
from .sorting import GpuSorter, InstrumentedCpuSorter, optimized_sort, quicksort
from .streams import (DataStream, financial_tick_stream,
                      network_trace_stream, normal_stream, uniform_stream,
                      zipf_stream)

__version__ = "1.0.0"

__all__ = [
    "BlendStateError",
    "BusError",
    "CheckpointError",
    "CorrelatedSum",
    "DataStream",
    "DgimCounter",
    "DgimSum",
    "EngineReport",
    "EquiDepthHistogram",
    "FaultInjector",
    "FaultPlan",
    "FlajoletMartin",
    "GKSummary",
    "GpuDevice",
    "GpuError",
    "GpuSorter",
    "HierarchicalHeavyHitters",
    "InstrumentedCpuSorter",
    "InvariantViolation",
    "KMinValues",
    "LossyCounting",
    "MisraGries",
    "QuantileSummary",
    "QueryError",
    "RasterizationError",
    "ReproError",
    "SensorNode",
    "ServiceError",
    "ShardFailedError",
    "SlidingWindowFrequencies",
    "SlidingWindowQuantiles",
    "SortError",
    "SpaceSaving",
    "StickySampling",
    "StreamError",
    "StreamMiner",
    "StreamingQuantiles",
    "SummaryError",
    "VOptimalHistogram",
    "TextureError",
    "VideoMemoryError",
    "WindowHistogram",
    "WindowedDistinctCounter",
    "aggregate",
    "financial_tick_stream",
    "histogram_from_sorted",
    "network_trace_stream",
    "normal_stream",
    "optimized_sort",
    "quicksort",
    "uniform_stream",
    "zipf_stream",
]
