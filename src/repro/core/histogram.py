"""Window histograms (Section 3.2, operation 1).

"For each window, the elements are ordered by sorting them and a
histogram is computed.  A histogram data structure holds each element
value in the window and its frequency."  Sorting is delegated to a
pluggable backend (the GPU sorter or a CPU baseline); the run-length
extraction on the already-sorted array is linear and stays on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SummaryError


@dataclass(frozen=True)
class WindowHistogram:
    """The (value, frequency) pairs of one window, in ascending value order."""

    values: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.counts.shape or self.values.ndim != 1:
            raise SummaryError(
                f"histogram arrays must be matching 1-D, got "
                f"{self.values.shape} / {self.counts.shape}")

    @property
    def total(self) -> int:
        """Number of stream elements the histogram covers."""
        return int(self.counts.sum())

    @property
    def distinct(self) -> int:
        """Number of distinct values."""
        return int(self.values.size)

    def __iter__(self):
        return zip(self.values.tolist(), self.counts.tolist())


def histogram_from_sorted(sorted_values: np.ndarray) -> WindowHistogram:
    """Run-length encode an ascending array into a histogram.

    Raises :class:`SummaryError` if the input is not ascending — the
    whole point of the paper's pipeline is that the expensive ordering
    step already happened (on the GPU).
    """
    arr = np.asarray(sorted_values).ravel()
    if arr.size == 0:
        return WindowHistogram(np.empty(0, dtype=arr.dtype),
                               np.empty(0, dtype=np.int64))
    if np.any(arr[1:] < arr[:-1]):
        raise SummaryError("histogram_from_sorted requires ascending input")
    boundaries = np.flatnonzero(arr[1:] != arr[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [arr.size]))
    return WindowHistogram(arr[starts].copy(), (ends - starts).astype(np.int64))
