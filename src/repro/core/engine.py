"""The stream-mining engine: the paper's GPU co-processor loop (Section 5).

:class:`StreamMiner` ties every substrate together the way the paper's
implementation does:

1. the stream is cut into windows (``ceil(1/eps)`` for frequencies, a
   configurable width for quantiles, the ``eps W / 2`` sub-window for
   sliding modes);
2. **four windows are buffered** and packed into the RGBA channels of one
   texture, then sorted in a single GPU pass (Section 4.1) — or sorted
   one by one by the CPU baseline;
3. each sorted window becomes a **histogram** (frequencies) or a sampled
   **summary** (quantiles);
4. the result is **merged** into the epsilon-approximate summary and the
   summary is **compressed**.

The engine measures the wall time of each operation on this machine and,
in parallel, derives *modelled* times on the paper's hardware (GeForce
6800 Ultra + AGP 8X for the GPU path, Pentium IV for the CPU path) from
exact operation counts.  Figures 5-7 are regenerated from the modelled
times; Figure 6's operation-share chart holds for both (the shares come
from the same counts).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import QueryError, SummaryError
from ..gpu.device import GpuDevice
from ..gpu.presets import PENTIUM_IV_3_4GHZ
from ..sorting.cpu import InstrumentedCpuSorter
from ..sorting.gpu_sorter import GpuSorter
from .distinct.kmv import KMinValues, hash_values
from .frequencies.lossy_counting import LossyCounting
from .histograms import histogram_from_sorted
from .sliding.exponential_histogram import StreamingQuantiles
from .sliding.window_query import (SlidingWindowFrequencies,
                                   SlidingWindowQuantiles)

#: Modelled Pentium-IV cycles per histogram entry for the summary merge
#: (hash probe + counter update).  Calibrated so the operation shares
#: match Figure 6's sort-dominated profile (Section 5.1: sorting is
#: 80-90% of the frequency pipeline).
MERGE_CYCLES_PER_ENTRY = 40.0

#: Modelled cycles per summary entry scanned by the compress operation.
COMPRESS_CYCLES_PER_ENTRY = 10.0

#: Modelled cycles per window element for the run-length histogram scan.
HISTOGRAM_CYCLES_PER_ELEMENT = 8.0

OPERATIONS = ("sort", "transfer", "histogram", "merge", "compress")


@dataclass
class EngineReport:
    """Per-operation accounting of one mining run."""

    backend: str
    statistic: str
    elements: int = 0
    windows: int = 0
    #: wall seconds measured on this machine, per operation.
    wall: dict[str, float] = field(
        default_factory=lambda: {op: 0.0 for op in OPERATIONS})
    #: modelled paper-hardware seconds, per operation.
    modelled: dict[str, float] = field(
        default_factory=lambda: {op: 0.0 for op in OPERATIONS})

    @property
    def wall_total(self) -> float:
        """Total measured seconds."""
        return sum(self.wall.values())

    @property
    def modelled_total(self) -> float:
        """Total modelled seconds on the paper's hardware."""
        return sum(self.modelled.values())

    def modelled_shares(self) -> dict[str, float]:
        """Fraction of modelled time per operation (Figure 6's quantity)."""
        total = self.modelled_total
        if total <= 0:
            return {op: 0.0 for op in OPERATIONS}
        return {op: t / total for op, t in self.modelled.items()}


class StreamMiner:
    """Epsilon-approximate quantile/frequency mining with a GPU co-processor.

    Parameters
    ----------
    statistic:
        ``"frequency"``, ``"quantile"`` or ``"distinct"``.
    eps:
        Approximation fraction.
    backend:
        ``"gpu"`` (PBSN on the simulated device), ``"cpu"`` (quicksort
        baseline), or any object with ``sort_batch``.
    mode:
        ``"history"`` (queries over the entire past) or ``"sliding"``.
    window_size:
        Window width for history-mode quantiles (frequencies always use
        ``ceil(1/eps)``); defaults to ``ceil(1/eps)``.
    sliding_window:
        Window width ``W`` for sliding mode.
    variable:
        Allow variable-width sliding queries.
    device:
        Optional shared :class:`GpuDevice` for the GPU backend.
    cpu_speedup:
        Constant factor applied to the modelled CPU sort times (1.0 =
        the MSVC baseline, 1.5 = the paper's Intel build).
    stream_length_hint:
        Expected total stream length (the paper's known-``N`` assumption),
        used by history-mode quantiles.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import StreamMiner
    >>> miner = StreamMiner("quantile", eps=0.05, backend="cpu",
    ...                     window_size=256)
    >>> miner.process(np.random.default_rng(0).random(4096))
    >>> 0.4 <= miner.quantile(0.5) <= 0.6
    True
    """

    def __init__(self, statistic: str = "frequency", eps: float = 1e-3,
                 backend: str = "gpu", mode: str = "history",
                 window_size: int | None = None,
                 sliding_window: int | None = None,
                 variable: bool = False,
                 device: GpuDevice | None = None,
                 cpu_speedup: float = 1.5,
                 stream_length_hint: int = 100_000_000):
        if statistic not in ("frequency", "quantile", "distinct"):
            raise SummaryError(f"unknown statistic {statistic!r}")
        if statistic == "distinct" and mode == "sliding":
            raise SummaryError("distinct counting supports history mode only")
        if mode not in ("history", "sliding"):
            raise SummaryError(f"unknown mode {mode!r}")
        self.statistic = statistic
        self.mode = mode
        self.eps = float(eps)
        self._cpu_spec = PENTIUM_IV_3_4GHZ
        self._cpu_speedup = float(cpu_speedup)
        self._stream_length_hint = int(stream_length_hint)

        if isinstance(backend, str):
            if backend == "gpu":
                self.sorter = GpuSorter(device)
            elif backend == "cpu":
                self.sorter = InstrumentedCpuSorter(speedup=cpu_speedup)
            else:
                raise SummaryError(f"unknown backend {backend!r}")
        else:
            self.sorter = backend
        self.backend = getattr(self.sorter, "name", "custom")

        if mode == "sliding":
            if sliding_window is None:
                raise SummaryError("sliding mode requires sliding_window")
            if statistic == "quantile":
                self.estimator = SlidingWindowQuantiles(
                    eps, sliding_window, variable=variable)
            else:
                self.estimator = SlidingWindowFrequencies(
                    eps, sliding_window, variable=variable)
            self.window_size = self.estimator.subwindow
        elif statistic == "frequency":
            self.estimator = LossyCounting(eps)
            self.window_size = self.estimator.window_size
        elif statistic == "distinct":
            # KMV sketch size from the target error: rel. std. error of
            # the estimator is ~1/sqrt(k-2).
            k = max(16, math.ceil(1.0 / (eps * eps)) + 2)
            self.estimator = KMinValues(k)
            self.window_size = (int(window_size) if window_size
                                else 4096)
        else:
            self.window_size = (int(window_size) if window_size
                                else max(1, math.ceil(1.0 / eps)))
            self.estimator = StreamingQuantiles(
                eps, self.window_size, stream_length_hint)

        self.report = EngineReport(self.backend, statistic)
        self._pending_windows: list[np.ndarray] = []
        self._buffer = np.empty(0, dtype=np.float32)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def update(self, chunk: np.ndarray | list[float]) -> None:
        """Feed stream elements; complete 4-window batches are processed."""
        self.buffer_chunk(chunk)
        self.pump()

    def buffer_chunk(self, chunk: np.ndarray | list[float]) -> None:
        """Cut a chunk into pending windows without processing anything.

        Pure CPU book-keeping that cannot fault: after this returns,
        every element of ``chunk`` is safely held in either a pending
        window or the tail buffer.  :meth:`pump` (which may fault on the
        GPU path) then moves complete batches through the pipeline — the
        split is what makes a dispatch retryable without data loss.
        """
        arr = np.asarray(chunk, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        if self.statistic == "distinct":
            # the pipeline sorts *hashes* for distinct counting; the k
            # smallest of each sorted window feed the KMV sketch.
            self.estimator.count += int(arr.size)
            arr = hash_values(arr, self.estimator.seed).astype(np.float32)
        data = (np.concatenate([self._buffer, arr])
                if self._buffer.size else arr)
        w = self.window_size
        full = (data.size // w) * w
        for start in range(0, full, w):
            self._pending_windows.append(data[start:start + w])
        self._buffer = data[full:].copy()

    def pump(self) -> None:
        """Process every complete 4-window texture batch now pending.

        Each batch is transactional: the (faultable) sort runs first and
        windows leave the pending list only after it succeeds, so an
        exception leaves the engine exactly as it was before the batch —
        calling :meth:`pump` again retries it.
        """
        while len(self._pending_windows) >= 4:
            self._flush_batch(4)

    def process(self, stream: np.ndarray | Iterable) -> None:
        """Consume an entire stream (array or iterable of chunks) and flush."""
        if isinstance(stream, np.ndarray):
            self.update(stream)
        else:
            for chunk in stream:
                self.update(chunk)
        self.flush()

    def flush(self) -> None:
        """Process buffered windows; in history mode also the partial tail."""
        if self._buffer.size and self.mode == "history":
            # Sliding estimators need exact sub-window sizes; history
            # estimators accept a short final window.
            self._pending_windows.append(self._buffer)
            self._buffer = np.empty(0, dtype=np.float32)
        while self._pending_windows:
            self._flush_batch(min(4, len(self._pending_windows)))

    # ------------------------------------------------------------------
    # the co-processor loop
    # ------------------------------------------------------------------
    def _flush_batch(self, batch_size: int) -> None:
        windows = self._pending_windows[:batch_size]
        clock = self._cpu_spec.clock_hz

        start = time.perf_counter()
        sorted_windows = self.sorter.sort_batch(windows)
        sort_wall = time.perf_counter() - start
        # The sort succeeded; only now do the windows leave the pending
        # list (transactionality — see pump()).  The remaining steps are
        # plain CPU summary updates with no injected-fault surface.
        del self._pending_windows[:batch_size]

        if isinstance(self.sorter, GpuSorter):
            breakdown = self.sorter.modelled_time()
            # Buffers are reused across batches in the streaming loop, so
            # the per-sort setup cost is charged only on the first batch.
            sort_time = breakdown.sort
            if self.report.windows:
                sort_time -= breakdown.setup
            self.report.modelled["sort"] += sort_time
            self.report.modelled["transfer"] += breakdown.transfer
            # Wall time on the simulator includes the (free-in-model)
            # transfers; attribute it all to sort.
            self.report.wall["sort"] += sort_wall
        else:
            self.report.wall["sort"] += sort_wall
            model = getattr(self.sorter, "cost_model", None)
            if model is not None:
                self.report.modelled["sort"] += sum(
                    model.time(len(w)) for w in windows)

        for window in sorted_windows:
            self._ingest_sorted(window, clock)

        self.report.windows += len(windows)
        self.report.elements += sum(int(len(w)) for w in windows)

    def _ingest_sorted(self, sorted_window: np.ndarray, clock: float) -> None:
        start = time.perf_counter()
        histogram = None
        if self.statistic == "frequency":
            histogram = histogram_from_sorted(sorted_window)
        self.report.wall["histogram"] += time.perf_counter() - start
        self.report.modelled["histogram"] += (
            sorted_window.size * HISTOGRAM_CYCLES_PER_ELEMENT / clock)

        start = time.perf_counter()
        if self.mode == "sliding":
            if self.statistic == "quantile":
                self.estimator.add_sorted_subwindow(sorted_window)
            else:
                self.estimator.add_histogram(histogram)
        elif self.statistic == "frequency":
            self.estimator.update_histogram(histogram)
        elif self.statistic == "distinct":
            self.estimator.update_sorted_hashes(
                sorted_window.astype(np.float64))
        else:
            self.estimator.add_sorted_window(sorted_window)
        self.report.wall["merge"] += time.perf_counter() - start

        merged_entries = (histogram.distinct if histogram is not None
                          else sorted_window.size)
        self.report.modelled["merge"] += (
            merged_entries * MERGE_CYCLES_PER_ENTRY / clock)
        # Compress scans the summary as it stood before deletions: the
        # surviving entries plus everything this window just merged in.
        scanned = self._summary_size() + merged_entries
        self.report.modelled["compress"] += (
            scanned * COMPRESS_CYCLES_PER_ENTRY / clock)

    def _summary_size(self) -> int:
        estimator = self.estimator
        if hasattr(estimator, "space"):
            return int(estimator.space())
        return len(estimator)

    # ------------------------------------------------------------------
    # queries (delegated to the live estimator)
    # ------------------------------------------------------------------
    def quantile(self, phi: float, width: int | None = None) -> float:
        """The phi-quantile (quantile statistic only)."""
        if self.statistic != "quantile":
            raise QueryError("this miner estimates frequencies")
        if self.mode == "sliding":
            return self.estimator.quantile(phi, width)
        return self.estimator.quantile(phi)

    def frequent_items(self, support: float,
                       width: int | None = None) -> list[tuple[float, int]]:
        """Heavy hitters above ``support`` (frequency statistic only)."""
        if self.statistic != "frequency":
            raise QueryError("this miner estimates quantiles")
        if self.mode == "sliding":
            return self.estimator.frequent_items(support, width)
        return self.estimator.frequent_items(support)

    def estimate(self, value: float) -> int:
        """Estimated frequency of one value (frequency statistic only)."""
        if self.statistic != "frequency":
            raise QueryError("this miner estimates quantiles")
        return self.estimator.estimate(value)

    def distinct(self) -> float:
        """Estimated distinct values seen (distinct statistic only)."""
        if self.statistic != "distinct":
            raise QueryError("this miner does not count distinct values")
        return self.estimator.estimate()

    # ------------------------------------------------------------------
    # mergeable-state accessors (the sharded service's query layer)
    # ------------------------------------------------------------------
    @property
    def buffered(self) -> int:
        """Elements accepted but not yet through the pipeline."""
        return int(self._buffer.size) + sum(
            int(w.size) for w in self._pending_windows)

    def quantile_summaries(self):
        """The mergeable per-bucket summaries (history-mode quantiles)."""
        if self.statistic != "quantile" or self.mode != "history":
            raise QueryError(
                "summaries are exposed by history-mode quantile miners only")
        return self.estimator.summaries()

    def frequency_items(self) -> list[tuple[float, int]]:
        """Every tracked (value, count) pair (frequency statistic only)."""
        if self.statistic != "frequency" or self.mode != "history":
            raise QueryError(
                "items are exposed by history-mode frequency miners only")
        return self.estimator.items()

    def distinct_sketch(self):
        """The mergeable KMV sketch (distinct statistic only)."""
        if self.statistic != "distinct":
            raise QueryError("this miner does not count distinct values")
        return self.estimator

    # ------------------------------------------------------------------
    # degradation (the service's circuit breaker swaps backends here)
    # ------------------------------------------------------------------
    def swap_sorter(self, sorter) -> None:
        """Replace the sorting backend in place.

        Sorting is a pure function of the window, so swapping the GPU
        sorter for the CPU baseline (or back) mid-stream changes *only*
        the cost model — the summaries, and therefore every answer, are
        identical.  The service's degradation path relies on this.
        """
        self.sorter = sorter
        self.backend = getattr(sorter, "name", "custom")

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Versioned JSON-serializable snapshot of the whole miner.

        Captures the estimator state *and* the engine's buffered state
        (tail buffer + pending windows), so a restored miner continues
        the stream from the exact element where the snapshot was taken.
        History mode only — sliding estimators hold order-sensitive
        state that is intentionally out of checkpoint scope.
        """
        if self.mode != "history":
            raise SummaryError("snapshot supports history mode only")
        return {
            "version": 1,
            "kind": "stream-miner",
            "statistic": self.statistic,
            "eps": self.eps,
            "window_size": int(self.window_size),
            "stream_length_hint": self._stream_length_hint,
            "cpu_speedup": self._cpu_speedup,
            "estimator": self.estimator.to_state(),
            "buffer": self._buffer.tolist(),
            "pending_windows": [w.tolist() for w in self._pending_windows],
            "report": {
                "elements": self.report.elements,
                "windows": self.report.windows,
                "wall": dict(self.report.wall),
                "modelled": dict(self.report.modelled),
            },
        }

    @classmethod
    def from_snapshot(cls, state: dict, backend: str = "cpu",
                      device: GpuDevice | None = None) -> "StreamMiner":
        """Rebuild a miner from :meth:`snapshot` output.

        ``backend``/``device`` choose the *new* sorting backend — sorter
        state is transient (textures live only within one sort), so the
        restored miner may run on different hardware than the one that
        wrote the checkpoint; answers are unaffected.
        """
        if state.get("kind") != "stream-miner" or state.get("version") != 1:
            raise SummaryError(
                f"not a v1 stream-miner state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        miner = cls(state["statistic"], eps=float(state["eps"]),
                    backend=backend, mode="history",
                    window_size=int(state["window_size"]),
                    device=device,
                    cpu_speedup=float(state["cpu_speedup"]),
                    stream_length_hint=int(state["stream_length_hint"]))
        estimator_state = state["estimator"]
        if state["statistic"] == "quantile":
            miner.estimator = StreamingQuantiles.from_state(estimator_state)
        elif state["statistic"] == "frequency":
            miner.estimator = LossyCounting.from_state(estimator_state)
        else:
            miner.estimator = KMinValues.from_state(estimator_state)
        miner._buffer = np.asarray(state["buffer"], dtype=np.float32)
        miner._pending_windows = [np.asarray(w, dtype=np.float32)
                                  for w in state["pending_windows"]]
        report = state.get("report", {})
        miner.report.elements = int(report.get("elements", 0))
        miner.report.windows = int(report.get("windows", 0))
        for op in OPERATIONS:
            miner.report.wall[op] = float(report.get("wall", {}).get(op, 0.0))
            miner.report.modelled[op] = float(
                report.get("modelled", {}).get(op, 0.0))
        return miner
