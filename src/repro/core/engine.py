"""The stream-mining engine: the paper's GPU co-processor loop (Section 5).

:class:`StreamMiner` is a thin composition of the staged pipeline in
:mod:`repro.core.pipeline`, wired the way the paper's implementation is:

1. a :class:`~repro.core.pipeline.Windower` cuts the stream into windows
   (``ceil(1/eps)`` for frequencies, a configurable width for quantiles,
   the ``eps W / 2`` sub-window for sliding modes);
2. a :class:`~repro.core.pipeline.SortStage` packs **four windows** into
   the RGBA channels of one texture and sorts them in a single GPU pass
   (Section 4.1) — or one by one on the CPU baseline; the backend comes
   from the :mod:`repro.backends` registry;
3. a :class:`~repro.core.pipeline.SummarizeStage` reduces each sorted
   window to a **histogram** (frequencies) or passes it through
   (quantiles, distinct);
4. a :class:`~repro.core.pipeline.MergeStage` **merges** the result into
   the epsilon-approximate estimator — any implementation of the uniform
   :class:`~repro.core.estimators.Estimator` protocol — and the summary
   is **compressed**.

All stages share one :class:`~repro.core.pipeline.TimingModel`, which
measures wall time on this machine and, in parallel, derives *modelled*
times on the paper's hardware (GeForce 6800 Ultra + AGP 8X for the GPU
path, Pentium IV for the CPU path) from exact operation counts.
Figures 5-7 are regenerated from the modelled times.
"""

from __future__ import annotations

import math
import time
from typing import Iterable

import numpy as np

from ..backends import resolve_sorter
from ..errors import QueryError, SummaryError
from ..obs import collector
from ..gpu.device import GpuDevice
from ..gpu.presets import PENTIUM_IV_3_4GHZ
from .distinct.kmv import KMinValues
from .estimators import (build_estimator, default_kind_for,
                         estimator_capabilities, estimator_from_state)
from .frequencies.lossy_counting import LossyCounting
from .pipeline import (COMPRESS_CYCLES_PER_ENTRY,  # noqa: F401 (re-export)
                       HISTOGRAM_CYCLES_PER_ELEMENT, MERGE_CYCLES_PER_ENTRY,
                       OPERATIONS, EngineReport, MergeStage, SortStage,
                       SummarizeStage, TimingModel, Windower)
from .sliding.exponential_histogram import StreamingQuantiles
from .sliding.window_query import (SlidingWindowFrequencies,
                                   SlidingWindowQuantiles)

__all__ = [
    "COMPRESS_CYCLES_PER_ENTRY",
    "EngineReport",
    "HISTOGRAM_CYCLES_PER_ELEMENT",
    "MERGE_CYCLES_PER_ENTRY",
    "OPERATIONS",
    "StreamMiner",
]


class StreamMiner:
    """Epsilon-approximate quantile/frequency mining with a GPU co-processor.

    Parameters
    ----------
    statistic:
        ``"frequency"``, ``"quantile"`` or ``"distinct"``.
    eps:
        Approximation fraction.
    backend:
        A name registered in :mod:`repro.backends` (``"gpu"``, ``"cpu"``,
        ``"gpu-bitonic"``, ...) or any object with ``sort_batch``.
    mode:
        ``"history"`` (queries over the entire past) or ``"sliding"``.
    window_size:
        Window width for history-mode quantiles (frequencies always use
        ``ceil(1/eps)``); defaults to ``ceil(1/eps)``.
    sliding_window:
        Window width ``W`` for sliding mode.
    variable:
        Allow variable-width sliding queries.
    device:
        Optional shared :class:`GpuDevice` for the GPU backend.
    cpu_speedup:
        Constant factor applied to the modelled CPU sort times (1.0 =
        the MSVC baseline, 1.5 = the paper's Intel build).
    stream_length_hint:
        Expected total stream length (the paper's known-``N`` assumption),
        used by history-mode quantiles.
    kind:
        Explicit estimator kind from the registry (``"ddsketch"``,
        ``"kll"``, ``"tdigest"``, ``"count-min"``, ...) instead of the
        statistic's default family.  History mode only; the kind's
        declared capability statistic must match ``statistic``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import StreamMiner
    >>> miner = StreamMiner("quantile", eps=0.05, backend="cpu",
    ...                     window_size=256)
    >>> miner.process(np.random.default_rng(0).random(4096))
    >>> 0.4 <= miner.quantile(0.5) <= 0.6
    True
    """

    def __init__(self, statistic: str = "frequency", eps: float = 1e-3,
                 backend: str = "gpu", mode: str = "history",
                 window_size: int | None = None,
                 sliding_window: int | None = None,
                 variable: bool = False,
                 device: GpuDevice | None = None,
                 cpu_speedup: float = 1.5,
                 stream_length_hint: int = 100_000_000,
                 kind: str | None = None):
        if statistic not in ("frequency", "quantile", "distinct"):
            raise SummaryError(f"unknown statistic {statistic!r}")
        if statistic == "distinct" and mode == "sliding":
            raise SummaryError("distinct counting supports history mode only")
        if mode not in ("history", "sliding"):
            raise SummaryError(f"unknown mode {mode!r}")
        if kind is not None:
            if mode == "sliding":
                raise SummaryError(
                    "explicit estimator kinds support history mode only")
            caps = estimator_capabilities(kind)
            if caps.statistic != statistic:
                raise SummaryError(
                    f"estimator kind {kind!r} serves statistic "
                    f"{caps.statistic!r}, not {statistic!r}")
            if kind == default_kind_for(statistic):
                kind = None    # the default family; snapshots stay lean
        self.kind = kind
        self.statistic = statistic
        self.mode = mode
        self.eps = float(eps)
        self._cpu_spec = PENTIUM_IV_3_4GHZ
        self._cpu_speedup = float(cpu_speedup)
        self._stream_length_hint = int(stream_length_hint)

        sorter = resolve_sorter(backend, device=device,
                                cpu_speedup=cpu_speedup)
        self.backend = getattr(sorter, "name", "custom")

        if mode == "sliding":
            if sliding_window is None:
                raise SummaryError("sliding mode requires sliding_window")
            if statistic == "quantile":
                estimator = SlidingWindowQuantiles(
                    eps, sliding_window, variable=variable)
            else:
                estimator = SlidingWindowFrequencies(
                    eps, sliding_window, variable=variable)
            self.window_size = estimator.subwindow
        elif kind is not None:
            # A non-default registry family; its builder interprets the
            # engine parameters for its own geometry.
            if statistic == "quantile":
                self.window_size = (int(window_size) if window_size
                                    else max(1, math.ceil(1.0 / eps)))
            estimator = build_estimator(
                kind, eps=eps, window_size=window_size,
                stream_length_hint=stream_length_hint)
            if statistic == "frequency":
                self.window_size = estimator.window_size
            elif statistic == "distinct":
                self.window_size = (int(window_size) if window_size
                                    else 4096)
        elif statistic == "frequency":
            estimator = LossyCounting(eps)
            self.window_size = estimator.window_size
        elif statistic == "distinct":
            # KMV sketch size from the target error: rel. std. error of
            # the estimator is ~1/sqrt(k-2).
            k = max(16, math.ceil(1.0 / (eps * eps)) + 2)
            estimator = KMinValues(k)
            self.window_size = (int(window_size) if window_size
                                else 4096)
        else:
            self.window_size = (int(window_size) if window_size
                                else max(1, math.ceil(1.0 / eps)))
            estimator = StreamingQuantiles(
                eps, self.window_size, stream_length_hint)

        self.report = EngineReport(self.backend, statistic)
        self._timing = TimingModel(self.report, self._cpu_spec)
        self._windower = Windower(self.window_size)
        self._sort = SortStage(sorter, self._timing)
        self._summarize = SummarizeStage(
            self._timing, build_histogram=(statistic == "frequency"))
        self._merge = MergeStage(estimator, self._timing)
        self._bind_estimator(estimator)

    def _bind_estimator(self, estimator) -> None:
        """Point every stage that holds the estimator at ``estimator``.

        The distinct pipeline sorts *hashes*: the sketch's
        ``prepare_chunk`` (hash + count) runs as the windower's prepare
        transform, so it must re-bind together with the estimator.
        """
        self.estimator = estimator
        self._merge.estimator = estimator
        if self.statistic == "distinct":
            self._windower.prepare = estimator.prepare_chunk

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def update(self, chunk: np.ndarray | list[float]) -> None:
        """Feed stream elements; complete 4-window batches are processed."""
        self.buffer_chunk(chunk)
        self.pump()

    def buffer_chunk(self, chunk: np.ndarray | list[float]) -> None:
        """Cut a chunk into pending windows without processing anything.

        Pure CPU book-keeping that cannot fault: after this returns,
        every element of ``chunk`` is safely held in either a pending
        window or the tail buffer.  :meth:`pump` (which may fault on the
        GPU path) then moves complete batches through the pipeline — the
        split is what makes a dispatch retryable without data loss.
        """
        self._windower.push(chunk)

    def pump(self) -> None:
        """Process every complete 4-window texture batch now pending.

        Each batch is transactional: the (faultable) sort runs first and
        windows leave the pending list only after it succeeds, so an
        exception leaves the engine exactly as it was before the batch —
        calling :meth:`pump` again retries it.
        """
        while self._windower.pending >= 4:
            self._flush_batch(4)

    def process(self, stream: np.ndarray | Iterable) -> None:
        """Consume an entire stream (array or iterable of chunks) and flush."""
        if isinstance(stream, np.ndarray):
            self.update(stream)
        else:
            for chunk in stream:
                self.update(chunk)
        self.flush()

    def flush(self) -> None:
        """Process buffered windows; in history mode also the partial tail."""
        if self.mode == "history":
            # Sliding estimators need exact sub-window sizes; history
            # estimators accept a short final window.
            self._windower.flush_tail()
        while self._windower.pending:
            self._flush_batch(min(4, self._windower.pending))

    # ------------------------------------------------------------------
    # the co-processor loop
    # ------------------------------------------------------------------
    def _flush_batch(self, batch_size: int) -> None:
        col = collector()
        if col.enabled:
            # The batch span parents the per-stage spans the TimingModel
            # emits, so `repro trace` nests sort/histogram/merge under it.
            with col.span("pipeline.batch", windows=batch_size,
                          backend=self.backend):
                self._run_batch(batch_size)
        else:
            self._run_batch(batch_size)

    def _run_batch(self, batch_size: int) -> None:
        windows = self._windower.peek(batch_size)
        sorted_windows = self._sort.run(windows)
        # The sort succeeded; only now do the windows leave the pending
        # list (transactionality — see pump()).  The remaining stages are
        # plain CPU summary updates with no injected-fault surface.
        self._windower.commit(batch_size)
        for window in sorted_windows:
            histogram = self._summarize.run(window)
            self._merge.run(window, histogram)
        self._timing.record_batch(windows)

    def _summary_size(self) -> int:
        return self._merge.summary_size()

    # ------------------------------------------------------------------
    # queries (delegated to the live estimator)
    # ------------------------------------------------------------------
    def _timed_query(self, name: str, compute, **attrs):
        """Run one query, recording a ``query.*`` span when collecting."""
        col = collector()
        if not col.enabled:
            return compute()
        began = time.perf_counter()
        result = compute()
        col.record(name, time.perf_counter() - began, **attrs)
        return result

    def quantile(self, phi: float, width: int | None = None) -> float:
        """The phi-quantile (quantile statistic only)."""
        if self.statistic != "quantile":
            raise QueryError("this miner estimates frequencies")
        if self.mode == "sliding":
            return self._timed_query(
                "query.quantile",
                lambda: self.estimator.quantile(phi, width), phi=phi)
        return self._timed_query(
            "query.quantile", lambda: self.estimator.quantile(phi), phi=phi)

    def frequent_items(self, support: float,
                       width: int | None = None) -> list[tuple[float, int]]:
        """Heavy hitters above ``support`` (frequency statistic only)."""
        if self.statistic != "frequency":
            raise QueryError("this miner estimates quantiles")
        if self.mode == "sliding":
            return self._timed_query(
                "query.frequent_items",
                lambda: self.estimator.frequent_items(support, width),
                support=support)
        return self._timed_query(
            "query.frequent_items",
            lambda: self.estimator.frequent_items(support), support=support)

    def estimate(self, value: float) -> int:
        """Estimated frequency of one value (frequency statistic only)."""
        if self.statistic != "frequency":
            raise QueryError("this miner estimates quantiles")
        return self._timed_query(
            "query.estimate", lambda: self.estimator.estimate(value))

    def distinct(self) -> float:
        """Estimated distinct values seen (distinct statistic only)."""
        if self.statistic != "distinct":
            raise QueryError("this miner does not count distinct values")
        return self._timed_query(
            "query.distinct", lambda: self.estimator.estimate())

    # ------------------------------------------------------------------
    # mergeable-state accessors (the sharded service's query layer)
    # ------------------------------------------------------------------
    @property
    def sorter(self):
        """The live sorting backend (owned by the sort stage)."""
        return self._sort.sorter

    @sorter.setter
    def sorter(self, value) -> None:
        self.swap_sorter(value)

    @property
    def buffered(self) -> int:
        """Elements accepted but not yet through the pipeline."""
        return self._windower.buffered

    def quantile_summaries(self):
        """The mergeable per-bucket summaries (history-mode quantiles)."""
        if self.statistic != "quantile" or self.mode != "history":
            raise QueryError(
                "summaries are exposed by history-mode quantile miners only")
        if not hasattr(self.estimator, "summaries"):
            raise QueryError(
                f"estimator kind {self.kind!r} holds no GK bucket "
                "summaries; merge the estimators directly via merge()")
        return self.estimator.summaries()

    def frequency_items(self) -> list[tuple[float, int]]:
        """Every tracked (value, count) pair (frequency statistic only)."""
        if self.statistic != "frequency" or self.mode != "history":
            raise QueryError(
                "items are exposed by history-mode frequency miners only")
        return self.estimator.items()

    def distinct_sketch(self):
        """The mergeable KMV sketch (distinct statistic only)."""
        if self.statistic != "distinct":
            raise QueryError("this miner does not count distinct values")
        return self.estimator

    # ------------------------------------------------------------------
    # degradation (the service's circuit breaker swaps backends here)
    # ------------------------------------------------------------------
    def swap_sorter(self, sorter) -> None:
        """Replace the sorting backend in place.

        Sorting is a pure function of the window, so swapping the GPU
        sorter for the CPU baseline (or back) mid-stream changes *only*
        the cost model — the summaries, and therefore every answer, are
        identical.  The service's degradation path relies on this.
        """
        self._sort.swap(sorter)
        self.backend = getattr(sorter, "name", "custom")

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Versioned JSON-serializable snapshot of the whole miner.

        Captures the estimator state *and* the engine's buffered state
        (tail buffer + pending windows), so a restored miner continues
        the stream from the exact element where the snapshot was taken.
        History mode only — sliding estimators hold order-sensitive
        state that is intentionally out of checkpoint scope.
        """
        if self.mode != "history":
            raise SummaryError("snapshot supports history mode only")
        state = {
            "version": 1,
            "kind": "stream-miner",
            "statistic": self.statistic,
            "eps": self.eps,
            "estimator_kind": self.kind,
            "window_size": int(self.window_size),
            "stream_length_hint": self._stream_length_hint,
            "cpu_speedup": self._cpu_speedup,
            "estimator": self.estimator.to_state(),
            "report": {
                "elements": self.report.elements,
                "windows": self.report.windows,
                "wall": dict(self.report.wall),
                "modelled": dict(self.report.modelled),
            },
        }
        state.update(self._windower.to_state())
        return state

    @classmethod
    def from_snapshot(cls, state: dict, backend: str = "cpu",
                      device: GpuDevice | None = None) -> "StreamMiner":
        """Rebuild a miner from :meth:`snapshot` output.

        ``backend``/``device`` choose the *new* sorting backend — sorter
        state is transient (textures live only within one sort), so the
        restored miner may run on different hardware than the one that
        wrote the checkpoint; answers are unaffected.

        The estimator class is resolved from the state's ``"kind"`` tag
        via the :mod:`repro.core.estimators` registry, so any registered
        estimator (including future ones) restores without this method
        changing.
        """
        if state.get("kind") != "stream-miner" or state.get("version") != 1:
            raise SummaryError(
                f"not a v1 stream-miner state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        miner = cls(state["statistic"], eps=float(state["eps"]),
                    backend=backend, mode="history",
                    window_size=int(state["window_size"]),
                    device=device,
                    cpu_speedup=float(state["cpu_speedup"]),
                    stream_length_hint=int(state["stream_length_hint"]),
                    kind=state.get("estimator_kind"))
        miner._bind_estimator(estimator_from_state(state["estimator"]))
        miner._windower.restore_state(state)
        report = state.get("report", {})
        miner.report.elements = int(report.get("elements", 0))
        miner.report.windows = int(report.get("windows", 0))
        for op in OPERATIONS:
            miner.report.wall[op] = float(report.get("wall", {}).get(op, 0.0))
            miner.report.modelled[op] = float(
                report.get("modelled", {}).get(op, 0.0))
        return miner
