"""Correlated sum-aggregate queries (paper Section 1.2's stated application).

"Our approach ... is also applicable to hierarchical heavy hitter and
correlated sum aggregate queries."  A correlated sum asks, over a stream
of pairs ``(x, y)``: *what is the sum of y over the tuples whose x lies
below the phi-quantile of x?* — e.g. "total bytes carried by the fastest
half of the flows".

The construction mirrors the window pipeline: each window is sorted by
``x`` (the GPU step), the running ``y`` prefix sums are computed, and the
pairs ``(x, cumulative_y)`` are sampled at the same ``eps``-spaced ranks
the quantile summary uses.  A query first locates the x-threshold through
the rank machinery, then sums each window's sampled prefix at that
threshold.  The rank-side error is the quantile guarantee (``eps * N``);
the y-side error is bounded by the y-mass of one sampling gap per window,
at most ``2 * eps * sum|y|`` overall.
"""

from __future__ import annotations

import math
from bisect import bisect_right

import numpy as np

from ...errors import QueryError, SummaryError


class _WindowPrefix:
    """Sampled (x, prefix-sum-of-y) pairs of one window."""

    __slots__ = ("xs", "prefix", "count", "total")

    def __init__(self, xs: np.ndarray, prefix: np.ndarray,
                 count: int, total: float):
        self.xs = xs
        self.prefix = prefix
        self.count = count
        self.total = total

    def sum_below(self, threshold: float) -> float:
        """Approximate sum of y over pairs with x <= threshold.

        The true prefix lies between the sampled prefix at or below the
        threshold and the next sampled prefix; returning the midpoint
        halves the worst-case bias of one sampling gap.
        """
        idx = bisect_right(self.xs.tolist(), threshold) - 1
        lower = float(self.prefix[idx]) if idx >= 0 else 0.0
        if idx + 1 < self.prefix.size:
            upper = float(self.prefix[idx + 1])
        else:
            upper = self.total
        return (lower + upper) / 2.0


class CorrelatedSum:
    """Approximate SUM(y) below an x-quantile threshold.

    Parameters
    ----------
    eps:
        Approximation fraction for both the rank and the y-mass error.
    window_size:
        Window width of the sort-and-sample pipeline.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.aggregates import CorrelatedSum
    >>> cs = CorrelatedSum(eps=0.05, window_size=100)
    >>> x = np.arange(1000, dtype=np.float32)
    >>> cs.update(x, np.ones(1000, dtype=np.float32))
    >>> 400 <= cs.query(0.5) <= 600
    True
    """

    def __init__(self, eps: float, window_size: int):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        if window_size <= 0:
            raise SummaryError(
                f"window_size must be positive, got {window_size}")
        self.eps = float(eps)
        self.window_size = int(window_size)
        self.count = 0
        self.total_y = 0.0
        self._windows: list[_WindowPrefix] = []
        self._pending_x = np.empty(0, dtype=np.float32)
        self._pending_y = np.empty(0, dtype=np.float32)

    def update(self, x: np.ndarray, y: np.ndarray) -> None:
        """Feed paired observations in arrival order."""
        x = np.asarray(x, dtype=np.float32).ravel()
        y = np.asarray(y, dtype=np.float32).ravel()
        if x.shape != y.shape:
            raise SummaryError(
                f"x and y must match, got {x.shape} vs {y.shape}")
        if self._pending_x.size:
            x = np.concatenate([self._pending_x, x])
            y = np.concatenate([self._pending_y, y])
        w = self.window_size
        full = (x.size // w) * w
        for start in range(0, full, w):
            self._add_window(x[start:start + w], y[start:start + w])
        self._pending_x, self._pending_y = x[full:].copy(), y[full:].copy()

    def _add_window(self, x: np.ndarray, y: np.ndarray) -> None:
        order = np.argsort(x, kind="stable")
        xs = x[order]
        prefix = np.cumsum(y[order], dtype=np.float64)
        n = xs.size
        step = max(1, math.ceil(self.eps * n))
        idx = np.arange(0, n, step)
        if idx[-1] != n - 1:
            idx = np.append(idx, n - 1)
        self._windows.append(_WindowPrefix(
            xs[idx].astype(np.float64), prefix[idx], n, float(prefix[-1])))
        self.count += int(n)
        self.total_y += float(prefix[-1])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def x_threshold(self, phi: float) -> float:
        """Approximate phi-quantile of the x stream (from the samples)."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        if self.count == 0:
            raise QueryError("no complete window ingested yet")
        # Merge per-window samples with their local ranks scaled; the
        # samples are eps-spaced per window, so the global rank of a value
        # is the sum of its per-window ranks within eps*N.
        target = max(1, math.ceil(phi * self.count))
        candidates = np.concatenate([w.xs for w in self._windows])
        candidates.sort()
        lo, hi = 0, candidates.size - 1
        while lo < hi:
            mid = (lo + hi) // 2
            rank = self._rank_of(candidates[mid])
            if rank < target:
                lo = mid + 1
            else:
                hi = mid
        return float(candidates[lo])

    def _rank_of(self, value: float) -> int:
        rank = 0
        for window in self._windows:
            idx = np.searchsorted(window.xs, value, side="right") - 1
            if idx >= 0:
                step = max(1, math.ceil(self.eps * window.count))
                rank += min(window.count, (idx + 1) * step)
        return rank

    def query(self, phi: float) -> float:
        """Approximate SUM(y) over tuples with x below the phi-quantile."""
        threshold = self.x_threshold(phi)
        return float(sum(w.sum_below(threshold) for w in self._windows))

    @property
    def num_windows(self) -> int:
        """Complete windows ingested."""
        return len(self._windows)

    def space(self) -> int:
        """Total sampled pairs retained."""
        return sum(w.xs.size for w in self._windows)
