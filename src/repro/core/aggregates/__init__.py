"""Aggregate queries built on the quantile machinery (Section 1.2)."""

from .correlated_sum import CorrelatedSum

__all__ = ["CorrelatedSum"]
