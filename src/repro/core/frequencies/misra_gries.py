"""Misra-Gries / "Frequent" counter summary (paper Section 2.1).

The earliest deterministic approximate frequency algorithm (Misra &
Gries 1982), independently rediscovered by Demaine et al. [14] and Karp
et al. [27] who reduced its worst-case processing time to O(1) per
element.  It is the classic CPU-side, single-element-insertion baseline
against which the paper's window-based pipeline is compared.

With ``k = ceil(1/eps)`` counters:

* estimates never overestimate and undercount by at most ``N / (k+1)
  <= eps * N``;
* every value with true frequency above ``eps * N`` has a counter.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import QueryError, SummaryError


class MisraGries:
    """The k-counter Frequent algorithm.

    Parameters
    ----------
    eps:
        Error fraction; the summary keeps ``ceil(1/eps)`` counters.

    Examples
    --------
    >>> from repro.core.frequencies import MisraGries
    >>> mg = MisraGries(eps=0.25)
    >>> mg.update([1.0, 1.0, 1.0, 2.0, 3.0, 1.0, 1.0, 2.0])
    >>> mg.estimate(1.0) >= 8 * (5/8 - 0.25)
    True
    """

    def __init__(self, eps: float):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        self.eps = float(eps)
        self.capacity = max(1, math.ceil(1.0 / eps))
        self.count = 0
        self._counters: dict[float, int] = {}

    def update(self, values: np.ndarray | list[float]) -> None:
        """Process stream elements one by one (amortised O(1) each)."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        counters = self._counters
        capacity = self.capacity
        for value in arr.tolist():
            if value in counters:
                counters[value] += 1
            elif len(counters) < capacity:
                counters[value] = 1
            else:
                # Decrement-all step; performed lazily in one sweep, which
                # is the Demaine/Karp O(1)-amortised formulation.
                doomed = []
                for key in counters:
                    counters[key] -= 1
                    if counters[key] == 0:
                        doomed.append(key)
                for key in doomed:
                    del counters[key]
        self.count += int(arr.size)

    def __len__(self) -> int:
        return len(self._counters)

    def estimate(self, value: float) -> int:
        """Estimated frequency (never overestimates)."""
        return self._counters.get(float(np.float32(value)), 0)

    def error_bound(self) -> float:
        """Deterministic undercount fraction (``f >= true_f - eps*N``)."""
        return self.eps

    def frequent_items(self, support: float) -> list[tuple[float, int]]:
        """Values whose estimate reaches ``(support - eps) * N``.

        Contains every value with true frequency >= ``support * N``.
        """
        if not 0.0 <= support <= 1.0:
            raise QueryError(f"support must be in [0, 1], got {support}")
        if support < self.eps:
            raise QueryError(
                f"support {support} below eps {self.eps}")
        threshold = (support - self.eps) * self.count
        result = [(value, count) for value, count in self._counters.items()
                  if count >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        return result
