"""Manku-Motwani lossy counting (Section 5.1's frequency algorithm).

The paper's frequency estimation follows Manku and Motwani [32]: the
stream is processed in windows ("buckets") of width ``w = ceil(1/eps)``.
For each window a **histogram** is computed (sort + run-length — the
GPU-accelerated step), then **merged** into the running summary, then the
summary is **compressed** by deleting entries whose count can no longer
reach the error threshold.

Each summary entry is ``(value, f, delta)`` where ``f`` is the counted
occurrences since the entry was (re)created and ``delta`` bounds the
occurrences that may have been missed before that.  After ``b`` windows,
an entry is deleted when ``f + delta <= b``.

Guarantees (Manku & Motwani 2002):

* estimated counts never overestimate: ``f <= true_f``;
* they underestimate by at most ``eps * N``: ``f >= true_f - eps * N``;
* :meth:`frequent_items` returns every value with true frequency above
  ``s * N`` (no false negatives) when called with threshold ``(s - eps) N``;
* the summary holds at most ``O((1/eps) * log(eps * N))`` entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ... import compiled
from ...errors import InvariantViolation, QueryError, SummaryError
from ..estimators import EstimatorCapabilities, register_estimator
from ..histograms import WindowHistogram, histogram_from_sorted


@dataclass
class FrequencyEntry:
    """One summary entry: counted occurrences plus the missed-count bound."""

    count: int
    delta: int


class LossyCounting:
    """Deterministic epsilon-approximate frequency summary.

    Parameters
    ----------
    eps:
        Error fraction; estimates undercount by at most ``eps * N``.

    Examples
    --------
    >>> from repro.core.frequencies import LossyCounting
    >>> lc = LossyCounting(eps=0.1)
    >>> lc.update([1.0] * 60 + [2.0] * 5 + [3.0] * 35)
    >>> [v for v, f in lc.frequent_items(support=0.5)]
    [1.0]
    """

    def __init__(self, eps: float):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        self.eps = float(eps)
        self.window_size = max(1, math.ceil(1.0 / eps))
        self.count = 0
        self.windows_processed = 0
        # The entry store has two representations with identical
        # answers, chosen once at construction (the compiled knob never
        # mutates a live summary): the historical insertion-ordered
        # dict, or — when the compiled tier is active — sorted parallel
        # arrays that repro.compiled's merge/compress kernels update
        # without per-entry Python.
        self._compiled = compiled.compiled_active()
        self._entries: dict[float, FrequencyEntry] = {}
        if self._compiled:
            self._values = np.empty(0, dtype=np.float32)
            self._counts = np.empty(0, dtype=np.int64)
            self._deltas = np.empty(0, dtype=np.int64)
        self._partial = np.empty(0, dtype=np.float32)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def update(self, values: np.ndarray | list[float]) -> None:
        """Feed stream elements; whole windows are processed immediately.

        A trailing partial window is buffered and processed on the next
        call (or counted in by queries via the pending buffer).
        """
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        data = np.concatenate([self._partial, arr]) if self._partial.size else arr
        w = self.window_size
        full = (data.size // w) * w
        for start in range(0, full, w):
            self._process_window(data[start:start + w])
        self._partial = data[full:].copy()

    def update_histogram(self, histogram: WindowHistogram) -> None:
        """Merge + compress one pre-computed window histogram.

        This is the engine's entry point: the histogram comes from a
        window that was sorted on the GPU.  The histogram must cover
        exactly one window (``window_size`` elements), except for the
        final, possibly short window of a stream.
        """
        if histogram.total > self.window_size:
            raise SummaryError(
                f"histogram covers {histogram.total} elements, more than the "
                f"window size {self.window_size}")
        if self._partial.size:
            raise SummaryError(
                "cannot mix update_histogram with a pending partial window")
        self._merge(histogram)
        self._compress()

    def _process_window(self, window: np.ndarray) -> None:
        self._merge(histogram_from_sorted(np.sort(window)))
        self._compress()

    def merge(self, other: "LossyCounting") -> "LossyCounting":
        """A new summary covering both streams, still never overcounting.

        Counted occurrences add; the missed-count bound of an entry the
        other side does not track grows by that side's window count (it
        may have counted and then deleted the value, missing at most one
        occurrence per window).  Merged deltas stay below the combined
        window count, so the undercount bound is
        ``eps * (N1 + N2)`` and the deletion rule keeps working.
        Trailing partial windows are re-fed through the merged summary.
        """
        if not isinstance(other, LossyCounting):
            raise SummaryError(
                f"cannot merge LossyCounting with {type(other).__name__}")
        if other.eps != self.eps:
            raise SummaryError(
                f"merge needs matching eps: {self.eps} vs {other.eps}")
        merged = LossyCounting(self.eps)
        merged.count = self.count + other.count
        merged.windows_processed = (self.windows_processed
                                    + other.windows_processed)
        mine = {value: (count, delta)
                for value, count, delta in self._entry_triples()}
        theirs = {value: (count, delta)
                  for value, count, delta in other._entry_triples()}
        triples = []
        for value, (count, delta) in mine.items():
            twin = theirs.get(value)
            if twin is None:
                triples.append((value, count,
                                delta + other.windows_processed))
            else:
                triples.append((value, count + twin[0], delta + twin[1]))
        for value, (count, delta) in theirs.items():
            if value not in mine:
                triples.append((value, count,
                                delta + self.windows_processed))
        merged._load_triples(triples)
        merged._compress()
        if self._partial.size or other._partial.size:
            merged.update(np.concatenate([self._partial, other._partial]))
        return merged

    # ------------------------------------------------------------------
    # the uniform Estimator protocol
    # ------------------------------------------------------------------
    def update_batch(self, sorted_window: np.ndarray,
                     histogram: WindowHistogram | None = None) -> None:
        """Protocol entry point: merge one ascending window.

        Accepts the run-length histogram the pipeline's summarize stage
        already computed; computes it when fed a bare sorted window.
        """
        if histogram is None:
            histogram = histogram_from_sorted(
                np.asarray(sorted_window).ravel())
        self.update_histogram(histogram)

    def query(self, support: float) -> list[tuple[float, int]]:
        """Protocol query: the heavy hitters above ``support``."""
        return self.frequent_items(support)

    def error_bound(self) -> float:
        """Deterministic undercount fraction (``f >= true_f - eps*N``)."""
        return self.eps

    @property
    def processed(self) -> int:
        """Elements accounted for, including the pending partial window."""
        return self.count + self.pending

    def _merge(self, histogram: WindowHistogram) -> None:
        """Merge operation: add or update entries (Section 5.1)."""
        self.count += histogram.total
        self.windows_processed += 1
        current_bucket = self.windows_processed
        if self._compiled:
            self._values, self._counts, self._deltas = compiled.lossy_merge(
                self._values, self._counts, self._deltas,
                np.asarray(histogram.values, dtype=np.float32),
                np.asarray(histogram.counts, dtype=np.int64),
                current_bucket)
            return
        for value, freq in histogram:
            entry = self._entries.get(value)
            if entry is None:
                self._entries[value] = FrequencyEntry(
                    count=int(freq), delta=current_bucket - 1)
            else:
                entry.count += int(freq)

    def _compress(self) -> None:
        """Compress operation: drop entries that cannot matter any more."""
        bucket = self.windows_processed
        if self._compiled:
            self._values, self._counts, self._deltas = \
                compiled.lossy_compress(self._values, self._counts,
                                        self._deltas, bucket)
            return
        doomed = [value for value, entry in self._entries.items()
                  if entry.count + entry.delta <= bucket]
        for value in doomed:
            del self._entries[value]

    # ------------------------------------------------------------------
    # the two entry-store representations (see __init__)
    # ------------------------------------------------------------------
    def _entry_triples(self) -> list[tuple[float, int, int]]:
        """``(value, count, delta)`` rows of the active representation."""
        if self._compiled:
            return list(zip(self._values.tolist(), self._counts.tolist(),
                            self._deltas.tolist()))
        return [(value, entry.count, entry.delta)
                for value, entry in self._entries.items()]

    def _load_triples(self, triples) -> None:
        """Replace the entry store with ``(value, count, delta)`` rows."""
        if self._compiled:
            values = np.asarray([value for value, _, _ in triples],
                                dtype=np.float32)
            order = np.argsort(values, kind="stable")
            self._values = values[order]
            self._counts = np.asarray([count for _, count, _ in triples],
                                      dtype=np.int64)[order]
            self._deltas = np.asarray([delta for _, _, delta in triples],
                                      dtype=np.int64)[order]
            return
        self._entries = {
            float(value): FrequencyEntry(count=int(count), delta=int(delta))
            for value, count, delta in triples}

    def _tracked_values(self) -> list[float]:
        """Every entry key, as Python floats (exact float32 doubles)."""
        if self._compiled:
            return self._values.tolist()
        return list(self._entries)

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot of the summary.

        Float32 stream values convert to doubles losslessly, so entry
        keys and the pending partial window round-trip exactly.  Entries
        are emitted sorted by value: the interpreted tier stores them in
        insertion order and the compiled tier in value order, and a
        canonical snapshot lets checkpoints move between tiers (a
        compiled worker's snapshot restores on an interpreted one with
        an identical state).
        """
        return {
            "version": 1,
            "kind": "lossy-counting",
            "eps": self.eps,
            "count": self.count,
            "windows_processed": self.windows_processed,
            "entries": sorted([float(value), int(count), int(delta)]
                              for value, count, delta
                              in self._entry_triples()),
            "partial": self._partial.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "LossyCounting":
        """Rebuild a summary from :meth:`to_state` output."""
        if state.get("kind") != "lossy-counting" or \
                state.get("version") != 1:
            raise SummaryError(
                f"not a v1 lossy-counting state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        summary = cls(float(state["eps"]))
        summary.count = int(state["count"])
        summary.windows_processed = int(state["windows_processed"])
        summary._load_triples(state["entries"])
        summary._partial = np.asarray(state["partial"], dtype=np.float32)
        summary.check_invariant()
        return summary

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of summary entries currently held."""
        if self._compiled:
            return int(self._values.size)
        return len(self._entries)

    @property
    def pending(self) -> int:
        """Elements buffered in the trailing partial window."""
        return int(self._partial.size)

    def estimate(self, value: float) -> int:
        """Estimated frequency of ``value`` (never overestimates)."""
        key = np.float32(value)
        if self._compiled:
            base = 0
            if self._values.size:
                pos = int(np.searchsorted(self._values, key))
                if pos < self._values.size and self._values[pos] == key:
                    base = int(self._counts[pos])
        else:
            entry = self._entries.get(key)
            base = entry.count if entry is not None else 0
        if self._partial.size:
            base += int(np.count_nonzero(self._partial == key))
        return base

    def items(self) -> list[tuple[float, int]]:
        """Every tracked value with its (never overestimating) count.

        Includes values seen only in the pending partial window.  Used by
        the sharded service's union query: under hash partitioning a
        value's entire count lives on one shard, so the global heavy-
        hitter set is a threshold filter over the union of these lists.
        """
        candidates = set(self._tracked_values())
        if self._partial.size:
            candidates.update(np.unique(self._partial).tolist())
        return [(value, self.estimate(value)) for value in candidates]

    def frequent_items(self, support: float) -> list[tuple[float, int]]:
        """All values whose estimated count is at least ``(support - eps) N``.

        Section 5.1: "the eps-approximate query returns all the elements
        ... with a frequency count of (s - eps) N".  The result contains
        every value whose *true* frequency is at least ``support * N``
        (no false negatives) and no value below ``(support - eps) * N``.
        """
        if not 0.0 <= support <= 1.0:
            raise QueryError(f"support must be in [0, 1], got {support}")
        if support < self.eps:
            raise QueryError(
                f"support {support} below eps {self.eps}: the guarantee "
                "threshold (s - eps) N would be vacuous")
        total = self.count + self.pending
        threshold = (support - self.eps) * total
        candidates = set(self._tracked_values())
        if self._partial.size:
            candidates.update(np.unique(self._partial).tolist())
        items = [(value, self.estimate(value)) for value in candidates]
        result = [(value, est) for value, est in items if est >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        return result

    def space_bound(self) -> int:
        """The worst-case entry bound ``(1/eps) log(eps N + 1)`` (MM02)."""
        if self.count == 0:
            return 0
        return math.ceil((1.0 / self.eps)
                         * math.log(self.eps * self.count + 1.0) + 1)

    def check_invariant(self) -> None:
        """Raise :class:`InvariantViolation` on internal inconsistency."""
        bucket = self.windows_processed
        for value, count, delta in self._entry_triples():
            if count < 1:
                raise InvariantViolation(f"entry {value} has count < 1")
            if delta > max(0, bucket - 1):
                raise InvariantViolation(
                    f"entry {value}: delta {delta} exceeds bucket "
                    f"{bucket} - 1")
        if len(self) > max(16, 4 * self.space_bound()):
            raise InvariantViolation(
                f"summary holds {len(self)} entries, far above the "
                f"theoretical bound {self.space_bound()}")


register_estimator(
    "lossy-counting", LossyCounting,
    # Deterministic counting: the planner may serve heavy-hitter,
    # top-k, and point-estimate metrics from one sketch; per-element
    # merge scans the bucket histogram, compress scans ~1/eps entries.
    capabilities=EstimatorCapabilities(
        statistic="frequency",
        metrics=("heavy_hitters", "top_k", "estimate"),
        driver="frequency",
        merge_cycles=40.0, compress_cycles=10.0,
        entries_per_inverse_eps=1.0, bound_type="count-under"),
    builder=lambda eps, window_size, hint: LossyCounting(eps))
