"""Manku-Motwani lossy counting (Section 5.1's frequency algorithm).

The paper's frequency estimation follows Manku and Motwani [32]: the
stream is processed in windows ("buckets") of width ``w = ceil(1/eps)``.
For each window a **histogram** is computed (sort + run-length — the
GPU-accelerated step), then **merged** into the running summary, then the
summary is **compressed** by deleting entries whose count can no longer
reach the error threshold.

Each summary entry is ``(value, f, delta)`` where ``f`` is the counted
occurrences since the entry was (re)created and ``delta`` bounds the
occurrences that may have been missed before that.  After ``b`` windows,
an entry is deleted when ``f + delta <= b``.

Guarantees (Manku & Motwani 2002):

* estimated counts never overestimate: ``f <= true_f``;
* they underestimate by at most ``eps * N``: ``f >= true_f - eps * N``;
* :meth:`frequent_items` returns every value with true frequency above
  ``s * N`` (no false negatives) when called with threshold ``(s - eps) N``;
* the summary holds at most ``O((1/eps) * log(eps * N))`` entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...errors import InvariantViolation, QueryError, SummaryError
from ..estimators import EstimatorCapabilities, register_estimator
from ..histograms import WindowHistogram, histogram_from_sorted


@dataclass
class FrequencyEntry:
    """One summary entry: counted occurrences plus the missed-count bound."""

    count: int
    delta: int


class LossyCounting:
    """Deterministic epsilon-approximate frequency summary.

    Parameters
    ----------
    eps:
        Error fraction; estimates undercount by at most ``eps * N``.

    Examples
    --------
    >>> from repro.core.frequencies import LossyCounting
    >>> lc = LossyCounting(eps=0.1)
    >>> lc.update([1.0] * 60 + [2.0] * 5 + [3.0] * 35)
    >>> [v for v, f in lc.frequent_items(support=0.5)]
    [1.0]
    """

    def __init__(self, eps: float):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        self.eps = float(eps)
        self.window_size = max(1, math.ceil(1.0 / eps))
        self.count = 0
        self.windows_processed = 0
        self._entries: dict[float, FrequencyEntry] = {}
        self._partial = np.empty(0, dtype=np.float32)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def update(self, values: np.ndarray | list[float]) -> None:
        """Feed stream elements; whole windows are processed immediately.

        A trailing partial window is buffered and processed on the next
        call (or counted in by queries via the pending buffer).
        """
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        data = np.concatenate([self._partial, arr]) if self._partial.size else arr
        w = self.window_size
        full = (data.size // w) * w
        for start in range(0, full, w):
            self._process_window(data[start:start + w])
        self._partial = data[full:].copy()

    def update_histogram(self, histogram: WindowHistogram) -> None:
        """Merge + compress one pre-computed window histogram.

        This is the engine's entry point: the histogram comes from a
        window that was sorted on the GPU.  The histogram must cover
        exactly one window (``window_size`` elements), except for the
        final, possibly short window of a stream.
        """
        if histogram.total > self.window_size:
            raise SummaryError(
                f"histogram covers {histogram.total} elements, more than the "
                f"window size {self.window_size}")
        if self._partial.size:
            raise SummaryError(
                "cannot mix update_histogram with a pending partial window")
        self._merge(histogram)
        self._compress()

    def _process_window(self, window: np.ndarray) -> None:
        self._merge(histogram_from_sorted(np.sort(window)))
        self._compress()

    def merge(self, other: "LossyCounting") -> "LossyCounting":
        """A new summary covering both streams, still never overcounting.

        Counted occurrences add; the missed-count bound of an entry the
        other side does not track grows by that side's window count (it
        may have counted and then deleted the value, missing at most one
        occurrence per window).  Merged deltas stay below the combined
        window count, so the undercount bound is
        ``eps * (N1 + N2)`` and the deletion rule keeps working.
        Trailing partial windows are re-fed through the merged summary.
        """
        if not isinstance(other, LossyCounting):
            raise SummaryError(
                f"cannot merge LossyCounting with {type(other).__name__}")
        if other.eps != self.eps:
            raise SummaryError(
                f"merge needs matching eps: {self.eps} vs {other.eps}")
        merged = LossyCounting(self.eps)
        merged.count = self.count + other.count
        merged.windows_processed = (self.windows_processed
                                    + other.windows_processed)
        for value, entry in self._entries.items():
            twin = other._entries.get(value)
            if twin is None:
                merged._entries[value] = FrequencyEntry(
                    count=entry.count,
                    delta=entry.delta + other.windows_processed)
            else:
                merged._entries[value] = FrequencyEntry(
                    count=entry.count + twin.count,
                    delta=entry.delta + twin.delta)
        for value, entry in other._entries.items():
            if value not in self._entries:
                merged._entries[value] = FrequencyEntry(
                    count=entry.count,
                    delta=entry.delta + self.windows_processed)
        merged._compress()
        if self._partial.size or other._partial.size:
            merged.update(np.concatenate([self._partial, other._partial]))
        return merged

    # ------------------------------------------------------------------
    # the uniform Estimator protocol
    # ------------------------------------------------------------------
    def update_batch(self, sorted_window: np.ndarray,
                     histogram: WindowHistogram | None = None) -> None:
        """Protocol entry point: merge one ascending window.

        Accepts the run-length histogram the pipeline's summarize stage
        already computed; computes it when fed a bare sorted window.
        """
        if histogram is None:
            histogram = histogram_from_sorted(
                np.asarray(sorted_window).ravel())
        self.update_histogram(histogram)

    def query(self, support: float) -> list[tuple[float, int]]:
        """Protocol query: the heavy hitters above ``support``."""
        return self.frequent_items(support)

    def error_bound(self) -> float:
        """Deterministic undercount fraction (``f >= true_f - eps*N``)."""
        return self.eps

    @property
    def processed(self) -> int:
        """Elements accounted for, including the pending partial window."""
        return self.count + self.pending

    def _merge(self, histogram: WindowHistogram) -> None:
        """Merge operation: add or update entries (Section 5.1)."""
        self.count += histogram.total
        self.windows_processed += 1
        current_bucket = self.windows_processed
        for value, freq in histogram:
            entry = self._entries.get(value)
            if entry is None:
                self._entries[value] = FrequencyEntry(
                    count=int(freq), delta=current_bucket - 1)
            else:
                entry.count += int(freq)

    def _compress(self) -> None:
        """Compress operation: drop entries that cannot matter any more."""
        bucket = self.windows_processed
        doomed = [value for value, entry in self._entries.items()
                  if entry.count + entry.delta <= bucket]
        for value in doomed:
            del self._entries[value]

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot of the summary.

        Float32 stream values convert to doubles losslessly, so entry
        keys and the pending partial window round-trip exactly.
        """
        return {
            "version": 1,
            "kind": "lossy-counting",
            "eps": self.eps,
            "count": self.count,
            "windows_processed": self.windows_processed,
            "entries": [[float(value), entry.count, entry.delta]
                        for value, entry in self._entries.items()],
            "partial": self._partial.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "LossyCounting":
        """Rebuild a summary from :meth:`to_state` output."""
        if state.get("kind") != "lossy-counting" or \
                state.get("version") != 1:
            raise SummaryError(
                f"not a v1 lossy-counting state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        summary = cls(float(state["eps"]))
        summary.count = int(state["count"])
        summary.windows_processed = int(state["windows_processed"])
        summary._entries = {
            float(value): FrequencyEntry(count=int(count), delta=int(delta))
            for value, count, delta in state["entries"]}
        summary._partial = np.asarray(state["partial"], dtype=np.float32)
        summary.check_invariant()
        return summary

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of summary entries currently held."""
        return len(self._entries)

    @property
    def pending(self) -> int:
        """Elements buffered in the trailing partial window."""
        return int(self._partial.size)

    def estimate(self, value: float) -> int:
        """Estimated frequency of ``value`` (never overestimates)."""
        entry = self._entries.get(np.float32(value))
        base = entry.count if entry is not None else 0
        if self._partial.size:
            base += int(np.count_nonzero(self._partial == np.float32(value)))
        return base

    def items(self) -> list[tuple[float, int]]:
        """Every tracked value with its (never overestimating) count.

        Includes values seen only in the pending partial window.  Used by
        the sharded service's union query: under hash partitioning a
        value's entire count lives on one shard, so the global heavy-
        hitter set is a threshold filter over the union of these lists.
        """
        candidates = set(self._entries)
        if self._partial.size:
            candidates.update(np.unique(self._partial).tolist())
        return [(value, self.estimate(value)) for value in candidates]

    def frequent_items(self, support: float) -> list[tuple[float, int]]:
        """All values whose estimated count is at least ``(support - eps) N``.

        Section 5.1: "the eps-approximate query returns all the elements
        ... with a frequency count of (s - eps) N".  The result contains
        every value whose *true* frequency is at least ``support * N``
        (no false negatives) and no value below ``(support - eps) * N``.
        """
        if not 0.0 <= support <= 1.0:
            raise QueryError(f"support must be in [0, 1], got {support}")
        if support < self.eps:
            raise QueryError(
                f"support {support} below eps {self.eps}: the guarantee "
                "threshold (s - eps) N would be vacuous")
        total = self.count + self.pending
        threshold = (support - self.eps) * total
        candidates = set(self._entries)
        if self._partial.size:
            candidates.update(np.unique(self._partial).tolist())
        items = [(value, self.estimate(value)) for value in candidates]
        result = [(value, est) for value, est in items if est >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        return result

    def space_bound(self) -> int:
        """The worst-case entry bound ``(1/eps) log(eps N + 1)`` (MM02)."""
        if self.count == 0:
            return 0
        return math.ceil((1.0 / self.eps)
                         * math.log(self.eps * self.count + 1.0) + 1)

    def check_invariant(self) -> None:
        """Raise :class:`InvariantViolation` on internal inconsistency."""
        bucket = self.windows_processed
        for value, entry in self._entries.items():
            if entry.count < 1:
                raise InvariantViolation(f"entry {value} has count < 1")
            if entry.delta > max(0, bucket - 1):
                raise InvariantViolation(
                    f"entry {value}: delta {entry.delta} exceeds bucket "
                    f"{bucket} - 1")
        if len(self._entries) > max(16, 4 * self.space_bound()):
            raise InvariantViolation(
                f"summary holds {len(self._entries)} entries, far above the "
                f"theoretical bound {self.space_bound()}")


register_estimator(
    "lossy-counting", LossyCounting,
    # Deterministic counting: the planner may serve heavy-hitter,
    # top-k, and point-estimate metrics from one sketch; per-element
    # merge scans the bucket histogram, compress scans ~1/eps entries.
    capabilities=EstimatorCapabilities(
        statistic="frequency",
        metrics=("heavy_hitters", "top_k", "estimate"),
        driver="frequency",
        merge_cycles=40.0, compress_cycles=10.0,
        entries_per_inverse_eps=1.0, bound_type="count-under"),
    builder=lambda eps, window_size, hint: LossyCounting(eps))
