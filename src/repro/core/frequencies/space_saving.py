"""Space-Saving (Metwally et al. 2005) — the counter-based contemporary.

Included as the third deterministic baseline in the accuracy benchmarks:
unlike lossy counting and Misra-Gries (which undercount), Space-Saving
*overcounts* by at most ``eps * N`` and additionally tracks a per-entry
overestimation bound, allowing "guaranteed" heavy hitters to be reported.

With ``k = ceil(1/eps)`` counters: when a monitored value arrives its
counter increments; an unmonitored value replaces the entry with the
minimum count ``m`` and starts at ``m + 1`` with error bound ``m``.
"""

from __future__ import annotations

import math
import heapq

import numpy as np

from ...errors import QueryError, SummaryError


class SpaceSaving:
    """The Space-Saving stream summary.

    Parameters
    ----------
    eps:
        Error fraction; the summary keeps ``ceil(1/eps)`` counters.
    """

    def __init__(self, eps: float):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        self.eps = float(eps)
        self.capacity = max(1, math.ceil(1.0 / eps))
        self.count = 0
        self._counts: dict[float, int] = {}
        self._errors: dict[float, int] = {}
        # Lazy min-heap of (count, value); stale entries are skipped on pop.
        self._heap: list[tuple[int, float]] = []

    def update(self, values: np.ndarray | list[float]) -> None:
        """Process stream elements one by one (O(log k) each)."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        counts, errors, heap = self._counts, self._errors, self._heap
        for value in arr.tolist():
            if value in counts:
                counts[value] += 1
                heapq.heappush(heap, (counts[value], value))
            elif len(counts) < self.capacity:
                counts[value] = 1
                errors[value] = 0
                heapq.heappush(heap, (1, value))
            else:
                while True:
                    min_count, victim = heap[0]
                    if counts.get(victim) == min_count:
                        break
                    heapq.heappop(heap)  # stale
                heapq.heappop(heap)
                del counts[victim]
                del errors[victim]
                counts[value] = min_count + 1
                errors[value] = min_count
                heapq.heappush(heap, (min_count + 1, value))
        self.count += int(arr.size)

    def __len__(self) -> int:
        return len(self._counts)

    def estimate(self, value: float) -> int:
        """Estimated frequency (never underestimates a monitored value)."""
        return self._counts.get(float(np.float32(value)), 0)

    def guaranteed_count(self, value: float) -> int:
        """A certain lower bound on the value's true frequency."""
        key = float(np.float32(value))
        return self._counts.get(key, 0) - self._errors.get(key, 0)

    def error_bound(self) -> float:
        """Deterministic overcount fraction (``f <= true_f + eps*N``)."""
        return self.eps

    def frequent_items(self, support: float) -> list[tuple[float, int]]:
        """Values whose estimate reaches ``support * N``.

        Because Space-Saving overcounts, the comparison is against
        ``support * N`` directly; the result contains every value with
        true frequency >= ``support * N`` and none below
        ``(support - eps) * N``.
        """
        if not 0.0 <= support <= 1.0:
            raise QueryError(f"support must be in [0, 1], got {support}")
        threshold = support * self.count
        result = [(value, count) for value, count in self._counts.items()
                  if count >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        return result
