"""Hierarchical heavy hitters (paper Section 1.2's stated application).

"Our approach is based on recent algorithms for quantile estimation [21]
and frequency estimation [32] and is also applicable to hierarchical
heavy hitter ... queries."  This module supplies that application: given
values drawn from a domain with a natural dyadic hierarchy (e.g. IP
prefixes, price bands), it finds every *prefix* whose frequency —
discounted by the frequency of its already-reported descendants — exceeds
the support threshold.

The implementation maintains one :class:`~repro.core.frequencies.
lossy_counting.LossyCounting` summary per hierarchy level, each fed the
stream mapped to that level's granularity, and computes the discounted
counts bottom-up at query time (the standard Cormode et al. construction
on top of any eps-approximate counter).
"""

from __future__ import annotations

import numpy as np

from ...errors import QueryError, SummaryError
from .lossy_counting import LossyCounting


class HierarchicalHeavyHitters:
    """Dyadic hierarchical heavy hitters over non-negative numeric values.

    Values are integerised and aggregated into dyadic prefixes: level 0
    is the value itself, level ``l`` is ``value >> l``.  A value's full
    ancestry therefore has ``levels`` nodes.

    Parameters
    ----------
    eps:
        Per-level frequency error.
    levels:
        Number of hierarchy levels (e.g. 32 for IPv4-like domains;
        keep small for numeric streams).
    """

    def __init__(self, eps: float, levels: int = 16):
        if levels < 1:
            raise SummaryError(f"levels must be >= 1, got {levels}")
        self.eps = float(eps)
        self.levels = int(levels)
        self._summaries = [LossyCounting(eps) for _ in range(levels)]
        self.count = 0

    def update(self, values: np.ndarray | list[float]) -> None:
        """Feed stream elements (non-negative, integerised by truncation)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        if np.any(arr < 0) or np.any(~np.isfinite(arr)):
            raise SummaryError("hierarchical heavy hitters require finite "
                               "non-negative values")
        ints = arr.astype(np.int64)
        for level, summary in enumerate(self._summaries):
            summary.update((ints >> level).astype(np.float32))
        self.count += int(arr.size)

    def query(self, support: float) -> list[tuple[int, int, int]]:
        """Return hierarchical heavy hitters as ``(level, prefix, count)``.

        A prefix is reported when its estimated frequency, minus the
        estimated frequency already attributed to its reported
        descendants, reaches ``(support - eps) * N``.  Results are ordered
        bottom-up (level 0 first), so exact values precede the aggregates
        that summarise their siblings.
        """
        if not self.eps <= support <= 1.0:
            raise QueryError(
                f"support must be in [{self.eps}, 1], got {support}")
        total = self.count
        threshold = (support - self.eps) * total
        reported: list[tuple[int, int, int]] = []
        # discounted[level] maps prefix -> count already attributed below.
        discounted: dict[int, dict[int, int]] = {
            level: {} for level in range(self.levels + 1)}
        for level, summary in enumerate(self._summaries):
            level_discount = discounted[level]
            for value, est in summary.frequent_items(support):
                prefix = int(value)
                inherited = level_discount.get(prefix, 0)
                adjusted = est - inherited
                attributed = inherited
                if adjusted >= threshold:
                    reported.append((level, prefix, adjusted))
                    attributed = est
                # Ancestors are discounted by the mass already attributed
                # to reported descendants (at any depth below), so they
                # only surface when the *remainder* is heavy too.
                if attributed:
                    parent = prefix >> 1
                    parent_map = discounted[level + 1]
                    parent_map[parent] = parent_map.get(parent, 0) + attributed
        return reported

    def __len__(self) -> int:
        """Total entries across all per-level summaries."""
        return sum(len(s) for s in self._summaries)
