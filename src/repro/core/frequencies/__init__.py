"""Epsilon-approximate frequency estimation (paper Sections 2.1 and 5.1)."""

from .count_min import CountMinSketch
from .hierarchical import HierarchicalHeavyHitters
from .lossy_counting import FrequencyEntry, LossyCounting
from .misra_gries import MisraGries
from .space_saving import SpaceSaving
from .sticky_sampling import StickySampling

__all__ = [
    "CountMinSketch",
    "FrequencyEntry",
    "HierarchicalHeavyHitters",
    "LossyCounting",
    "MisraGries",
    "SpaceSaving",
    "StickySampling",
]
