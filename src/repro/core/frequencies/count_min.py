"""Count-Min: point-frequency over-estimates with conservative update.

Cormode & Muthukrishnan's sketch is the mirror image of the paper's
lossy counting (Section 5.1): a ``depth x width`` counter table where
every occurrence of a value increments one counter per row (the row's
hash of the value).  Estimates take the *minimum* across rows, so they
never undercount; with ``width = ceil(e / eps)`` the overcount stays
within ``eps * N`` except with probability ``e^-depth`` per query —
the one-sided ``"count-over"`` bound, where lossy counting's is
``"count-under"``.

Two refinements over the textbook sketch:

* **conservative update** (Estan & Varghese): a batch of ``f``
  occurrences raises each row's counter only up to
  ``current_estimate + f``, never beyond — strictly smaller counters,
  same never-undercount guarantee;
* ingest is driven by the pipeline's run-length histograms, so one
  window costs one hash round per *distinct* value, not per element.

Row hashes reuse the KMV splitmix64 value hash (the service layer
AST-bans builtin ``hash``).  Sketches with equal shape and seed merge
by adding tables: ``min`` of sums is at least the sum of ``min``s, so
the merged sketch still never undercounts, and each table stays below
its own ``eps * N_i`` overcount budget.

The sketch cannot *enumerate* values — ``heavy_hitters`` / ``top_k``
are not in its capability metrics and :meth:`items` raises — it only
answers point estimates.
"""

from __future__ import annotations

import math

import numpy as np

from ... import compiled
from ...errors import QueryError, SummaryError
from ..distinct.kmv import hash_values
from ..estimators import EstimatorCapabilities, register_estimator
from ..histograms import WindowHistogram, histogram_from_sorted

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """Mergeable point-frequency sketch that never undercounts.

    Parameters
    ----------
    eps:
        Overcount fraction: estimates exceed true counts by at most
        ``eps * N`` (except with probability ``e^-depth`` per query).
    depth:
        Hash rows (failure probability ``e^-depth``).
    width:
        Counters per row; defaults to ``ceil(e / eps)``, which is what
        makes the ``eps * N`` bound hold.  Overriding it changes the
        *actual* error while ``error_bound()`` keeps claiming ``eps`` —
        exactly the lie the conformance mutation canary exists to catch.
    seed:
        Row-hash seed (sketches must share it to be mergeable).

    Examples
    --------
    >>> from repro.core.frequencies import CountMinSketch
    >>> cm = CountMinSketch(eps=0.01)
    >>> cm.update([1.0] * 60 + [2.0] * 40)
    >>> cm.estimate(1.0) >= 60
    True
    """

    def __init__(self, eps: float, depth: int = 4,
                 width: int | None = None, seed: int = 0):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        if depth < 1:
            raise SummaryError(f"depth must be >= 1, got {depth}")
        self.eps = float(eps)
        self.depth = int(depth)
        self.width = (int(width) if width is not None
                      else max(8, math.ceil(math.e / eps)))
        if self.width < 1:
            raise SummaryError(f"width must be >= 1, got {self.width}")
        self.seed = int(seed)
        self.count = 0
        self.window_size = max(1, math.ceil(1.0 / eps))
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        # Sampled once at construction: the conservative-update walk is
        # order-dependent across histogram entries, so both paths run it
        # sequentially — the compiled kernel just strips the per-entry
        # fancy-indexing overhead (numba-jitted when available).
        self._compiled = compiled.compiled_active()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _row_indices(self, values: np.ndarray) -> np.ndarray:
        """(depth, n) column indices for ``values`` (vectorized)."""
        # -0.0 == 0.0 for every dict-keyed estimator and the offline
        # oracle, but the two have different bit patterns; canonicalize
        # so the bit-pattern hash agrees with float equality (otherwise
        # estimate(0.0) could undercount a stream holding -0.0).
        values = values + np.float32(0.0)
        columns = np.empty((self.depth, values.size), dtype=np.int64)
        for row in range(self.depth):
            hashes = hash_values(values,
                                 seed=self.seed * self.depth + row + 1)
            columns[row] = (hashes * self.width).astype(np.int64)
        return columns

    def update_histogram(self, histogram: WindowHistogram) -> None:
        """Conservative update from one window's run-length histogram."""
        if self._compiled:
            values = np.asarray(histogram.values, dtype=np.float32)
            if not values.size:
                return
            freqs_arr = np.asarray(histogram.counts, dtype=np.int64)
            columns = self._row_indices(values)
            self.count += int(freqs_arr.sum())
            compiled.cm_conservative_update(self._table, columns, freqs_arr)
            return
        pairs = list(histogram)
        if not pairs:
            return
        values = np.asarray([value for value, _ in pairs],
                            dtype=np.float32)
        freqs = [int(freq) for _, freq in pairs]
        columns = self._row_indices(values)
        rows = np.arange(self.depth)
        self.count += sum(freqs)
        for j, freq in enumerate(freqs):
            cells = columns[:, j]
            raised = int(self._table[rows, cells].min()) + freq
            self._table[rows, cells] = np.maximum(
                self._table[rows, cells], raised)

    def update_batch(self, sorted_window: np.ndarray,
                     histogram: WindowHistogram | None = None) -> None:
        """Protocol entry point: absorb one ascending window."""
        if histogram is None:
            histogram = histogram_from_sorted(
                np.sort(np.asarray(sorted_window,
                                   dtype=np.float32).ravel()))
        self.update_histogram(histogram)

    def update(self, values) -> None:
        """Feed raw stream elements (sorts to build the histogram)."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size:
            self.update_batch(np.sort(arr))

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """A new sketch over both streams (tables add entrywise)."""
        if not isinstance(other, CountMinSketch):
            raise SummaryError(
                f"cannot merge CountMinSketch with {type(other).__name__}")
        if (other.eps != self.eps or other.depth != self.depth
                or other.width != self.width or other.seed != self.seed):
            raise SummaryError(
                f"merge needs matching tables: eps {self.eps} vs "
                f"{other.eps}, depth {self.depth} vs {other.depth}, "
                f"width {self.width} vs {other.width}, seed {self.seed} "
                f"vs {other.seed}")
        merged = CountMinSketch(self.eps, depth=self.depth,
                                width=self.width, seed=self.seed)
        merged.count = self.count + other.count
        merged._table = self._table + other._table
        return merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def estimate(self, value: float) -> int:
        """Estimated frequency of ``value`` (never underestimates)."""
        columns = self._row_indices(
            np.asarray([value], dtype=np.float32))[:, 0]
        return int(self._table[np.arange(self.depth), columns].min())

    def query(self, value: float) -> int:
        """Protocol query: the point estimate for ``value``."""
        return self.estimate(value)

    def items(self) -> list:
        """Unsupported: a count-min table cannot enumerate its values."""
        raise QueryError(
            "count-min answers point estimates only; it cannot enumerate "
            "tracked values — use lossy-counting for heavy hitters")

    def frequent_items(self, support: float) -> list:
        """Unsupported — see :meth:`items`."""
        raise QueryError(
            "count-min answers point estimates only; it cannot enumerate "
            "heavy hitters — use lossy-counting (kind='lossy-counting')")

    def error_bound(self) -> float:
        """Overcount fraction (holds per query w.p. ``1 - e^-depth``)."""
        return self.eps

    @property
    def processed(self) -> int:
        """Elements absorbed."""
        return self.count

    def space(self) -> int:
        """Counter cells held."""
        return self.depth * self.width

    def __len__(self) -> int:
        return self.space()

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot (exact counter table)."""
        return {
            "version": 1,
            "kind": "count-min",
            "eps": self.eps,
            "depth": self.depth,
            "width": self.width,
            "seed": self.seed,
            "count": self.count,
            "table": self._table.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CountMinSketch":
        """Rebuild a sketch from :meth:`to_state` output."""
        if state.get("kind") != "count-min" or state.get("version") != 1:
            raise SummaryError(
                f"not a v1 count-min state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        sketch = cls(float(state["eps"]), depth=int(state["depth"]),
                     width=int(state["width"]), seed=int(state["seed"]))
        sketch.count = int(state["count"])
        sketch._table = np.asarray(state["table"], dtype=np.int64)
        if sketch._table.shape != (sketch.depth, sketch.width):
            raise SummaryError(
                f"table shape {sketch._table.shape} does not match "
                f"depth x width ({sketch.depth}, {sketch.width})")
        return sketch


register_estimator(
    "count-min", CountMinSketch,
    # Point estimates only (no enumeration), so heavy_hitters/top_k are
    # deliberately absent; the wide table makes its compress scan cheap
    # but its per-element merge dearer than lossy counting's.
    capabilities=EstimatorCapabilities(
        statistic="frequency", metrics=("estimate",), driver="frequency",
        randomized=True, merge_cycles=64.0, compress_cycles=2.0,
        entries_per_inverse_eps=8.0, bound_type="count-over"),
    builder=lambda eps, window_size, hint: CountMinSketch(eps))
