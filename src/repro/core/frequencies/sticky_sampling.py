"""Sticky Sampling — Manku & Motwani's probabilistic counterpart.

The paper classifies frequency algorithms into deterministic and
probabilistic families (Section 2.1); Sticky Sampling is the
probabilistic algorithm published alongside lossy counting [32] and is
included here as the randomized baseline for the accuracy benchmarks.

With support ``s``, error ``eps`` and failure probability ``delta``, the
algorithm samples each *new* value with a rate that halves as the stream
grows, while *existing* entries are always counted.  With probability at
least ``1 - delta`` it reports every value with frequency above ``s N``
and undercounts by at most ``eps * N``.  Expected space is
``(2/eps) * ln(1/(s * delta))`` entries — independent of ``N``.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import QueryError, SummaryError


class StickySampling:
    """Probabilistic epsilon-approximate frequency summary.

    Parameters
    ----------
    support:
        The query support ``s`` the failure probability is stated for.
    eps:
        Error fraction (must be below ``support``).
    delta:
        Failure probability.
    seed:
        Seed for the sampling decisions (None for nondeterministic).
    """

    def __init__(self, support: float, eps: float, delta: float = 1e-4,
                 seed: int | None = 0):
        if not 0.0 < eps < support <= 1.0:
            raise SummaryError(
                f"need 0 < eps < support <= 1, got eps={eps}, support={support}")
        if not 0.0 < delta < 1.0:
            raise SummaryError(f"delta must be in (0, 1), got {delta}")
        self.support = float(support)
        self.eps = float(eps)
        self.delta = float(delta)
        #: t = (1/eps) ln(1 / (s * delta)); the first 2t elements are
        #: sampled at rate 1, the next 2t at rate 1/2, and so on.
        self.t = (1.0 / eps) * math.log(1.0 / (support * delta))
        self.count = 0
        self._rate = 1
        self._rng = np.random.default_rng(seed)
        self._counters: dict[float, int] = {}

    def _current_rate(self) -> int:
        """Sampling rate window: rate r covers elements (2t r, 2t * 2r]."""
        rate = 1
        while self.count > 2.0 * self.t * rate:
            rate *= 2
        return rate

    def update(self, values: np.ndarray | list[float]) -> None:
        """Process stream elements one by one."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        for value in arr.tolist():
            self.count += 1
            new_rate = self._current_rate()
            if new_rate != self._rate:
                self._resample(new_rate)
            if value in self._counters:
                self._counters[value] += 1
            elif self._rng.random() < 1.0 / self._rate:
                self._counters[value] = 1

    def _resample(self, new_rate: int) -> None:
        """On a rate change, degrade existing entries by coin flips.

        For each entry, repeatedly toss an unbiased coin until heads,
        diminishing the count by one per tails; entries reaching zero are
        dropped (the MM02 rate-transition step).
        """
        self._rate = new_rate
        doomed = []
        for value in list(self._counters):
            while self._counters[value] > 0 and self._rng.random() < 0.5:
                self._counters[value] -= 1
            if self._counters[value] == 0:
                doomed.append(value)
        for value in doomed:
            del self._counters[value]

    def __len__(self) -> int:
        return len(self._counters)

    def estimate(self, value: float) -> int:
        """Estimated frequency (undercounts with high probability)."""
        return self._counters.get(float(np.float32(value)), 0)

    def error_bound(self) -> float:
        """Undercount fraction, honoured with probability >= 1 - delta."""
        return self.eps

    def frequent_items(self, support: float | None = None) -> list[tuple[float, int]]:
        """Values whose estimate reaches ``(support - eps) * N``."""
        support = self.support if support is None else support
        if not 0.0 <= support <= 1.0:
            raise QueryError(f"support must be in [0, 1], got {support}")
        threshold = (support - self.eps) * self.count
        result = [(value, count) for value, count in self._counters.items()
                  if count >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        return result
