"""The pipeline's first stage: buffer the stream and cut it into windows.

Section 4.1 buffers four windows and packs them into the RGBA channels
of one texture; :class:`Windower` owns the CPU side of that contract:
accepting arbitrarily-sized chunks, cutting them into fixed-width
windows, and holding the tail until it fills (or the stream ends).

The windower is deliberately transactional: :meth:`peek` exposes a batch
without removing it and :meth:`commit` drops it only after the caller's
(faultable) sort succeeded, so a failed dispatch can be retried without
data loss.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ...obs import collector


class Windower:
    """Buffer/cut/pack stage: chunks in, fixed-width windows out.

    Parameters
    ----------
    window_size:
        Width of every produced window (the final flushed window may be
        shorter).
    prepare:
        Optional element-wise transform applied to each incoming chunk
        before windowing — the distinct pipeline hashes values here so
        the sorter orders *hashes*, exactly as the engine's texture
        would hold them.
    """

    def __init__(self, window_size: int,
                 prepare: Callable[[np.ndarray], np.ndarray] | None = None):
        self.window_size = int(window_size)
        self.prepare = prepare
        self._windows: list[np.ndarray] = []
        self._tail = np.empty(0, dtype=np.float32)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def push(self, chunk: np.ndarray | list[float]) -> None:
        """Accept a chunk; complete windows queue up, the rest is held.

        Pure CPU book-keeping that cannot fault: after this returns,
        every element of ``chunk`` is safely held in either a pending
        window or the tail buffer.
        """
        col = collector()
        began = time.perf_counter() if col.enabled else 0.0
        arr = np.asarray(chunk, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        if self.prepare is not None:
            arr = self.prepare(arr)
        data = (np.concatenate([self._tail, arr])
                if self._tail.size else arr)
        w = self.window_size
        full = (data.size // w) * w
        for start in range(0, full, w):
            self._windows.append(data[start:start + w])
        self._tail = data[full:].copy()
        if col.enabled:
            col.record("pipeline.window", time.perf_counter() - began,
                       elements=int(arr.size), windows=full // w)

    def flush_tail(self) -> None:
        """Promote the partial tail to a (short) pending window."""
        if self._tail.size:
            self._windows.append(self._tail)
            self._tail = np.empty(0, dtype=np.float32)

    # ------------------------------------------------------------------
    # transactional batch hand-off
    # ------------------------------------------------------------------
    def peek(self, batch_size: int) -> list[np.ndarray]:
        """The next ``batch_size`` pending windows, without removing them."""
        return self._windows[:batch_size]

    def commit(self, batch_size: int) -> None:
        """Drop the first ``batch_size`` windows (their sort succeeded)."""
        del self._windows[:batch_size]

    @property
    def pending(self) -> int:
        """Complete windows queued for the next texture batch."""
        return len(self._windows)

    @property
    def buffered(self) -> int:
        """Elements accepted but not yet handed to the sort stage."""
        return int(self._tail.size) + sum(
            int(w.size) for w in self._windows)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-serializable buffered state (tail + pending windows)."""
        return {
            "buffer": self._tail.tolist(),
            "pending_windows": [w.tolist() for w in self._windows],
        }

    def restore_state(self, state: dict) -> None:
        """Reload :meth:`to_state` output."""
        self._tail = np.asarray(state["buffer"], dtype=np.float32)
        self._windows = [np.asarray(w, dtype=np.float32)
                         for w in state["pending_windows"]]
