"""Per-operation accounting and the modelled paper-hardware time model.

The engine measures the wall time of each pipeline operation on this
machine and, in parallel, derives *modelled* times on the paper's
hardware (GeForce 6800 Ultra + AGP 8X for the GPU path, Pentium IV for
the CPU path) from exact operation counts.  Figures 5-7 are regenerated
from the modelled times; Figure 6's operation-share chart holds for both
(the shares come from the same counts).

:class:`EngineReport` is the ledger; :class:`TimingModel` owns the
cycle-cost constants and the math that converts operation counts into
modelled seconds, so the pipeline stages record what happened and this
module decides what it would have cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...gpu.presets import PENTIUM_IV_3_4GHZ, CpuSpec
from ...obs import collector
from ...sorting.gpu_sorter import GpuSorter

#: Modelled Pentium-IV cycles per histogram entry for the summary merge
#: (hash probe + counter update).  Calibrated so the operation shares
#: match Figure 6's sort-dominated profile (Section 5.1: sorting is
#: 80-90% of the frequency pipeline).
MERGE_CYCLES_PER_ENTRY = 40.0

#: Modelled cycles per summary entry scanned by the compress operation.
COMPRESS_CYCLES_PER_ENTRY = 10.0

#: Modelled cycles per window element for the run-length histogram scan.
HISTOGRAM_CYCLES_PER_ELEMENT = 8.0

OPERATIONS = ("sort", "transfer", "histogram", "merge", "compress")


@dataclass
class EngineReport:
    """Per-operation accounting of one mining run."""

    backend: str
    statistic: str
    elements: int = 0
    windows: int = 0
    #: wall seconds measured on this machine, per operation.
    wall: dict[str, float] = field(
        default_factory=lambda: {op: 0.0 for op in OPERATIONS})
    #: modelled paper-hardware seconds, per operation.
    modelled: dict[str, float] = field(
        default_factory=lambda: {op: 0.0 for op in OPERATIONS})

    @property
    def wall_total(self) -> float:
        """Total measured seconds."""
        return sum(self.wall.values())

    @property
    def modelled_total(self) -> float:
        """Total modelled seconds on the paper's hardware."""
        return sum(self.modelled.values())

    def modelled_shares(self) -> dict[str, float]:
        """Fraction of modelled time per operation (Figure 6's quantity)."""
        total = self.modelled_total
        if total <= 0:
            return {op: 0.0 for op in OPERATIONS}
        return {op: t / total for op, t in self.modelled.items()}


class TimingModel:
    """Converts pipeline operation counts into report entries.

    One instance is shared by every stage of a pipeline; all writes land
    in the single :class:`EngineReport` it owns.
    """

    def __init__(self, report: EngineReport,
                 cpu_spec: CpuSpec = PENTIUM_IV_3_4GHZ):
        self.report = report
        self.cpu_spec = cpu_spec

    @property
    def clock_hz(self) -> float:
        """The modelled host CPU clock."""
        return self.cpu_spec.clock_hz

    def record_sort(self, sorter, windows, wall_seconds: float) -> None:
        """Account one sorted texture batch on the given backend.

        The GPU path bills modelled sort + transfer from the device's
        counters; buffers are reused across batches in the streaming
        loop, so the per-sort setup cost is charged only on the first
        batch.  CPU-style backends bill their analytic cost model, when
        they have one.
        """
        modelled_sort = 0.0
        modelled_transfer = 0.0
        if isinstance(sorter, GpuSorter):
            breakdown = sorter.modelled_time()
            modelled_sort = breakdown.sort
            if self.report.windows:
                modelled_sort -= breakdown.setup
            modelled_transfer = breakdown.transfer
            self.report.modelled["sort"] += modelled_sort
            self.report.modelled["transfer"] += modelled_transfer
            # Wall time on the simulator includes the (free-in-model)
            # transfers; attribute it all to sort.
            self.report.wall["sort"] += wall_seconds
        else:
            self.report.wall["sort"] += wall_seconds
            model = getattr(sorter, "cost_model", None)
            if model is not None:
                modelled_sort = sum(model.time(len(w)) for w in windows)
                self.report.modelled["sort"] += modelled_sort
        col = collector()
        if col.enabled:
            # The spans carry the exact modelled deltas just billed, so
            # span-derived stage shares reproduce Figure 4/6 precisely.
            col.record("pipeline.sort", wall_seconds,
                       windows=len(windows), modelled=modelled_sort)
            if modelled_transfer:
                col.record("pipeline.transfer", 0.0,
                           modelled=modelled_transfer)

    def record_histogram(self, elements: int, wall_seconds: float) -> None:
        """Account the run-length histogram scan of one sorted window."""
        modelled = elements * HISTOGRAM_CYCLES_PER_ELEMENT / self.clock_hz
        self.report.wall["histogram"] += wall_seconds
        self.report.modelled["histogram"] += modelled
        col = collector()
        if col.enabled:
            col.record("pipeline.histogram", wall_seconds,
                       elements=elements, modelled=modelled)

    def record_merge(self, merged_entries: int, summary_size: int,
                     wall_seconds: float) -> None:
        """Account one summary merge + the compress scan that follows.

        ``summary_size`` is the summary's size *after* the merge;
        compress scans the summary as it stood before deletions — the
        surviving entries plus everything this window just merged in.
        """
        modelled_merge = merged_entries * MERGE_CYCLES_PER_ENTRY / \
            self.clock_hz
        scanned = summary_size + merged_entries
        modelled_compress = scanned * COMPRESS_CYCLES_PER_ENTRY / \
            self.clock_hz
        self.report.wall["merge"] += wall_seconds
        self.report.modelled["merge"] += modelled_merge
        self.report.modelled["compress"] += modelled_compress
        col = collector()
        if col.enabled:
            col.record("pipeline.merge", wall_seconds,
                       entries=merged_entries, modelled=modelled_merge)
            col.record("pipeline.compress", 0.0, entries=scanned,
                       modelled=modelled_compress)

    def record_batch(self, windows) -> None:
        """Account the window/element totals of one completed batch."""
        self.report.windows += len(windows)
        self.report.elements += sum(int(len(w)) for w in windows)
