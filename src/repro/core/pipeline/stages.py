"""Sort, summarize, and merge: the co-processor stages of the pipeline.

Each stage is a thin, timed wrapper around one operation of the paper's
loop (Section 5): the sort runs on the pluggable backend (GPU PBSN, the
CPU baseline, or anything registered in :mod:`repro.backends`); the
summarize stage reduces a sorted window to a run-length histogram when
the estimator consumes counts; the merge stage feeds the estimator
through the uniform :class:`~repro.core.estimators.Estimator` protocol.

All stages write their accounting into one shared
:class:`~repro.core.pipeline.timing.TimingModel`.
"""

from __future__ import annotations

import time

import numpy as np

from ..histograms import WindowHistogram, histogram_from_sorted
from .timing import TimingModel


class SortStage:
    """Sorts window batches on a swappable backend, recording cost.

    The backend is any object with ``sort_batch``; swapping it mid-
    stream (the service's degradation path) changes only the cost model
    because sorting is a pure function of the window.
    """

    def __init__(self, sorter, timing: TimingModel):
        self.sorter = sorter
        self.timing = timing

    @property
    def name(self) -> str:
        """The backend label (used by reports and metrics)."""
        return getattr(self.sorter, "name", "custom")

    def swap(self, sorter) -> None:
        """Replace the sorting backend in place."""
        self.sorter = sorter

    def run(self, windows: list[np.ndarray]) -> list[np.ndarray]:
        """Sort one texture batch (up to four windows), timed."""
        start = time.perf_counter()
        sorted_windows = self.sorter.sort_batch(windows)
        self.timing.record_sort(self.sorter, windows,
                                time.perf_counter() - start)
        return sorted_windows


class SummarizeStage:
    """Reduces each sorted window to its per-window summary input.

    For frequency-style estimators that is the run-length histogram
    (the GPU-accelerated scan of Section 5.1); quantile and distinct
    estimators consume the sorted window itself, so the stage only
    accounts the scan it skipped.
    """

    def __init__(self, timing: TimingModel, build_histogram: bool):
        self.timing = timing
        self.build_histogram = bool(build_histogram)

    def run(self, sorted_window: np.ndarray) -> WindowHistogram | None:
        """The window's histogram, or ``None`` for sorted-window feeds."""
        start = time.perf_counter()
        histogram = (histogram_from_sorted(sorted_window)
                     if self.build_histogram else None)
        self.timing.record_histogram(int(sorted_window.size),
                                     time.perf_counter() - start)
        return histogram


class MergeStage:
    """Merges one summarized window into the estimator, timed.

    Dispatches through the uniform estimator protocol —
    ``update_batch(sorted_window, histogram=...)`` — so the stage works
    unchanged for quantiles, frequencies, distinct counts, and the
    sliding-window estimators.
    """

    def __init__(self, estimator, timing: TimingModel):
        self.estimator = estimator
        self.timing = timing

    def summary_size(self) -> int:
        """Entries currently held by the estimator."""
        estimator = self.estimator
        if hasattr(estimator, "space"):
            return int(estimator.space())
        return len(estimator)

    def run(self, sorted_window: np.ndarray,
            histogram: WindowHistogram | None) -> None:
        """Merge one window (and compress), recording modelled cost."""
        start = time.perf_counter()
        self.estimator.update_batch(sorted_window, histogram=histogram)
        wall = time.perf_counter() - start
        merged_entries = (histogram.distinct if histogram is not None
                          else int(sorted_window.size))
        self.timing.record_merge(merged_entries, self.summary_size(), wall)
