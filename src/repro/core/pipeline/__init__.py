"""The staged stream-mining pipeline (window -> sort -> summarize -> merge).

The paper's co-processor loop (Section 5) as explicit, composable
stages, each independently testable and reusable:

* :class:`~repro.core.pipeline.windower.Windower` — buffer the stream,
  cut it into fixed-width windows, hand off transactional batches;
* :class:`~repro.core.pipeline.stages.SortStage` — sort each batch on a
  swappable backend resolved from :mod:`repro.backends`;
* :class:`~repro.core.pipeline.stages.SummarizeStage` — run-length
  histogram (frequencies) or sorted-window pass-through;
* :class:`~repro.core.pipeline.stages.MergeStage` — feed the estimator
  via the uniform :class:`~repro.core.estimators.Estimator` protocol;
* :class:`~repro.core.pipeline.timing.TimingModel` — the modelled
  paper-hardware cost accounting shared by every stage.

:class:`~repro.core.engine.StreamMiner` is a thin composition of these.
"""

from .stages import MergeStage, SortStage, SummarizeStage
from .timing import (COMPRESS_CYCLES_PER_ENTRY, HISTOGRAM_CYCLES_PER_ELEMENT,
                     MERGE_CYCLES_PER_ENTRY, OPERATIONS, EngineReport,
                     TimingModel)
from .windower import Windower

__all__ = [
    "COMPRESS_CYCLES_PER_ENTRY",
    "EngineReport",
    "HISTOGRAM_CYCLES_PER_ELEMENT",
    "MERGE_CYCLES_PER_ENTRY",
    "MergeStage",
    "OPERATIONS",
    "SortStage",
    "SummarizeStage",
    "TimingModel",
    "Windower",
]
