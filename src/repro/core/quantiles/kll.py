"""KLL: rank-error quantiles via randomized compactor levels.

Karnin, Lang & Liberty's sketch (FOCS 2016) is the modern successor of
the GK lineage the paper builds on: a stack of *compactors*, where
level ``h`` holds items of weight ``2^h``.  When a level overflows its
capacity it sorts itself and keeps every other item (a random offset
choosing odds or evens), pushing the survivors — now representing twice
the mass — one level up.  Capacities shrink geometrically below the top
(``k * (2/3)^depth``), which is what beats GK's space in theory.

The compaction coin here is a counted splitmix64 stream seeded at
construction: deterministic given ingest order, so checkpoint restore
and the cross-executor equivalence matrix stay bit-identical, while the
published (2-sigma) rank guarantee ``eps * N`` is what
``error_bound()`` reports (``randomized=True`` in the capability
record).  Sketches with equal parameters merge by concatenating levels
and re-compacting.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import QueryError, SummaryError
from ..estimators import EstimatorCapabilities, register_estimator

__all__ = ["KLLSketch"]

_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1

#: Level-capacity decay below the top compactor.
_DECAY = 2.0 / 3.0


def _coin(seed: int, flip: int) -> int:
    """Deterministic fair coin: bit from splitmix64(seed, flip)."""
    x = (seed * 0x9E3779B97F4A7C15 + flip) & _MASK
    x ^= x >> 30
    x = (x * _MIX1) & _MASK
    x ^= x >> 27
    x = (x * _MIX2) & _MASK
    x ^= x >> 31
    return int(x & 1)


class KLLSketch:
    """Mergeable rank-error quantile sketch with compactor levels.

    Parameters
    ----------
    eps:
        Target rank-error fraction (2-sigma); sizes the top compactor
        at ``k = ceil(4 / eps)``.
    k:
        Explicit top-compactor capacity (overrides the ``eps`` sizing).
    seed:
        Compaction-coin seed (sketches must share it to merge
        reproducibly).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.quantiles import KLLSketch
    >>> sk = KLLSketch(eps=0.05)
    >>> sk.update_batch(np.arange(10_000, dtype=np.float32))
    >>> abs(sk.quantile(0.5) - 5_000) <= 0.05 * 10_000
    True
    """

    def __init__(self, eps: float, k: int | None = None, seed: int = 0):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        self.eps = float(eps)
        self.k = int(k) if k is not None else max(8, math.ceil(4.0 / eps))
        if self.k < 4:
            raise SummaryError(f"k must be >= 4, got {self.k}")
        self.seed = int(seed)
        self.count = 0
        self._flips = 0
        #: level h -> items of weight 2^h (unsorted between compactions).
        self._levels: list[list[float]] = [[]]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _capacity(self, level: int) -> int:
        depth = len(self._levels) - 1 - level
        return max(2, math.ceil(self.k * _DECAY ** depth))

    def _compact_level(self, level: int) -> None:
        items = sorted(self._levels[level])
        # An odd item stays behind at its own weight; compaction halves
        # an even count.
        keep_back = items.pop() if len(items) % 2 else None
        offset = _coin(self.seed, self._flips)
        self._flips += 1
        survivors = items[offset::2]
        self._levels[level] = [keep_back] if keep_back is not None else []
        if level + 1 == len(self._levels):
            self._levels.append([])
        self._levels[level + 1].extend(survivors)

    def _compact(self) -> None:
        changed = True
        while changed:
            changed = False
            for level in range(len(self._levels)):
                if len(self._levels[level]) > self._capacity(level):
                    self._compact_level(level)
                    changed = True

    def update_batch(self, sorted_window: np.ndarray,
                     histogram=None) -> None:
        """Absorb one window into the level-0 compactor."""
        arr = np.asarray(sorted_window, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self._levels[0].extend(arr.tolist())
        self._compact()

    def update(self, values) -> None:
        """Convenience alias used by direct (non-pipeline) callers."""
        self.update_batch(np.asarray(values, dtype=np.float64))

    def merge(self, other: "KLLSketch") -> "KLLSketch":
        """A new sketch over both streams (levels concatenate, weights
        align), then re-compacted down to capacity."""
        if not isinstance(other, KLLSketch):
            raise SummaryError(
                f"cannot merge KLLSketch with {type(other).__name__}")
        if (other.eps != self.eps or other.k != self.k
                or other.seed != self.seed):
            raise SummaryError(
                f"merge needs matching parameters: eps {self.eps} vs "
                f"{other.eps}, k {self.k} vs {other.k}, seed {self.seed} "
                f"vs {other.seed}")
        merged = KLLSketch(self.eps, k=self.k, seed=self.seed)
        merged.count = self.count + other.count
        merged._flips = self._flips + other._flips
        depth = max(len(self._levels), len(other._levels))
        merged._levels = [[] for _ in range(depth)]
        for source in (self._levels, other._levels):
            for level, items in enumerate(source):
                merged._levels[level].extend(items)
        merged._compact()
        return merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _weighted(self) -> tuple[np.ndarray, np.ndarray]:
        values, weights = [], []
        for level, items in enumerate(self._levels):
            values.extend(items)
            weights.extend([1 << level] * len(items))
        if not values:
            raise QueryError("no data ingested yet")
        order = np.argsort(np.asarray(values), kind="stable")
        return (np.asarray(values)[order],
                np.cumsum(np.asarray(weights, dtype=np.int64)[order]))

    def quantile(self, phi: float) -> float:
        """The phi-quantile, rank-accurate within ``eps * N`` (2-sigma)."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        values, cumulative = self._weighted()
        target = max(1, math.ceil(phi * self.count))
        index = int(np.searchsorted(cumulative, target))
        return float(values[min(index, len(values) - 1)])

    def query(self, phi: float) -> float:
        """Protocol query: the phi-quantile."""
        return self.quantile(phi)

    def error_bound(self) -> float:
        """Rank-error fraction (2-sigma over the compaction coins)."""
        return self.eps

    @property
    def processed(self) -> int:
        """Elements absorbed."""
        return self.count

    def space(self) -> int:
        """Items retained across all compactor levels."""
        return sum(len(items) for items in self._levels)

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned snapshot including the coin counter, so a restored
        sketch continues the exact compaction sequence."""
        return {
            "version": 1,
            "kind": "kll",
            "eps": self.eps,
            "k": self.k,
            "seed": self.seed,
            "count": self.count,
            "flips": self._flips,
            "levels": [[float(v) for v in items] for items in self._levels],
        }

    @classmethod
    def from_state(cls, state: dict) -> "KLLSketch":
        """Rebuild a sketch from :meth:`to_state` output."""
        if state.get("kind") != "kll" or state.get("version") != 1:
            raise SummaryError(
                f"not a v1 kll state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        sketch = cls(float(state["eps"]), k=int(state["k"]),
                     seed=int(state["seed"]))
        sketch.count = int(state["count"])
        sketch._flips = int(state["flips"])
        sketch._levels = [list(map(float, items))
                          for items in state["levels"]]
        if not sketch._levels:
            sketch._levels = [[]]
        return sketch


register_estimator(
    "kll", KLLSketch,
    # Rank-error quantiles like the default exponential histogram, but
    # with randomized compaction; costed above the default so only an
    # explicit kind request selects it.
    capabilities=EstimatorCapabilities(
        statistic="quantile", metrics=("quantile",), driver="quantile",
        randomized=True, merge_cycles=56.0, compress_cycles=14.0,
        entries_per_inverse_eps=3.0, bound_type="rank"),
    builder=lambda eps, window_size, hint: KLLSketch(eps))
