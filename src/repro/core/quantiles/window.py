"""Window-based quantile summaries (Greenwald-Khanna 2004, Section 5.2).

The paper lifts the sensor-network summaries of Greenwald and Khanna [21]
to the stream setting: each window is **sorted** (on the GPU), an
eps-approximate summary is extracted by **sampling** the sorted sequence,
and summaries are combined with a lossless **merge** followed by a lossy
**prune** that caps the memory footprint.

A summary here is a list of :class:`RankedValue` entries ``(value, rmin,
rmax)`` over a population of ``count`` elements, with the guarantee that
for every target rank ``r`` some entry satisfies both ``r - rmin <= error
* count`` and ``rmax - r <= error * count``.

The three operations and their error arithmetic (all from GK04):

========  ==========================================================
sample    from a sorted window: error ``e`` using ``floor(2 e n)``-
          spaced ranks (both extremes included)
merge     ``error = max(error_a, error_b)`` (lossless)
prune     to ``B + 1`` entries: ``error += 1 / (2 B)``
========  ==========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...errors import InvariantViolation, QueryError, SummaryError


@dataclass(frozen=True)
class RankedValue:
    """One summary entry: a value and bounds on its rank in the population."""

    value: float
    rmin: int
    rmax: int

    def __post_init__(self) -> None:
        if not 1 <= self.rmin <= self.rmax:
            raise SummaryError(
                f"invalid rank bounds rmin={self.rmin}, rmax={self.rmax}")


class QuantileSummary:
    """An epsilon-approximate quantile summary with explicit rank bounds.

    Instances are immutable in spirit: :meth:`merge` and :meth:`prune`
    return new summaries.  Build one with :meth:`from_sorted`.
    """

    def __init__(self, entries: list[RankedValue], count: int, error: float):
        if count < 0:
            raise SummaryError(f"count must be non-negative, got {count}")
        if error < 0:
            raise SummaryError(f"error must be non-negative, got {error}")
        if count > 0 and not entries:
            raise SummaryError("a non-empty population needs entries")
        self.entries = entries
        self.count = int(count)
        self.error = float(error)
        self._array_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def _arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(values, rmins, rmaxs) as numpy arrays, computed lazily.

        Summaries are immutable after construction, so the cache never
        invalidates.  The vectorised merge/lookup paths run off these.
        """
        if self._array_cache is None:
            self._array_cache = (
                np.array([e.value for e in self.entries], dtype=np.float64),
                np.array([e.rmin for e in self.entries], dtype=np.int64),
                np.array([e.rmax for e in self.entries], dtype=np.int64),
            )
        return self._array_cache

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "QuantileSummary":
        """A summary of zero elements."""
        return cls([], 0, 0.0)

    @classmethod
    def from_sorted(cls, sorted_values: np.ndarray,
                    error: float) -> "QuantileSummary":
        """Sample an ascending window into an ``error``-approximate summary.

        Takes the elements of rank ``1, s+1, 2s+1, ..., n`` with spacing
        ``s = max(1, floor(2 * error * n))``; the nearest kept rank is
        then within ``floor(s / 2) <= error * n`` of any target rank, so
        answering a rank query with the nearest kept element honours the
        recorded ``error`` exactly.  (``ceil`` would be one rank too
        coarse on duplicate-heavy inputs: a spacing of ``ceil(2 e n)``
        can leave a mid-gap rank ``ceil(s / 2) > e n`` away from every
        kept element.)  Ranks are exact (``rmin == rmax``) because the
        window was fully sorted.
        """
        arr = np.asarray(sorted_values).ravel()
        n = int(arr.size)
        if n == 0:
            return cls.empty()
        if np.any(arr[1:] < arr[:-1]):
            raise SummaryError("from_sorted requires ascending input")
        if error < 0:
            raise SummaryError(f"error must be non-negative, got {error}")
        step = max(1, math.floor(2.0 * error * n))
        ranks = list(range(1, n + 1, step))
        if ranks[-1] != n:
            ranks.append(n)
        entries = [RankedValue(float(arr[r - 1]), r, r) for r in ranks]
        return cls(entries, n, error)

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """A versioned, JSON-serializable snapshot of this summary.

        Values are stored as Python floats (float32 stream values are
        exactly representable in a double, so the round trip is
        lossless) and rank bounds as ints; :meth:`from_state` rebuilds
        an identical summary.
        """
        return {
            "version": 1,
            "kind": "quantile-summary",
            "count": self.count,
            "error": self.error,
            "values": [e.value for e in self.entries],
            "rmins": [e.rmin for e in self.entries],
            "rmaxs": [e.rmax for e in self.entries],
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSummary":
        """Rebuild a summary from :meth:`to_state` output."""
        if state.get("kind") != "quantile-summary" or \
                state.get("version") != 1:
            raise SummaryError(
                f"not a v1 quantile-summary state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        entries = [RankedValue(float(v), int(lo), int(hi))
                   for v, lo, hi in zip(state["values"], state["rmins"],
                                        state["rmaxs"])]
        return cls(entries, int(state["count"]), float(state["error"]))

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSummary") -> "QuantileSummary":
        """Lossless merge (GK04): combined error is the max of the inputs.

        For an entry ``x`` drawn from summary A, with ``pred``/``succ``
        its neighbours among B's entries:

        * ``rmin' = rmin_A(x) + rmin_B(pred)``  (0 if no predecessor)
        * ``rmax' = rmax_A(x) + rmax_B(succ) - 1``
          (``rmax_A(x) + rmax_B(last)`` if no successor)
        """
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        # Ties are broken consistently: equal values of `self` precede
        # equal values of `other`.  For an element of the *first* source
        # its predecessor in the other summary must be strictly smaller
        # and its successor may be equal ("left" bisection); for the
        # *second* source the roles flip ("right").  Without a consistent
        # tie-break, duplicated values across the inputs widen the rank
        # bounds past the guarantee.
        pieces_v, pieces_lo, pieces_hi = [], [], []
        for source, against, side in ((self, other, "left"),
                                      (other, self, "right")):
            sv, s_rmin, s_rmax = source._arrays()
            av, a_rmin, a_rmax = against._arrays()
            idx = np.searchsorted(av, sv, side=side)
            rmin = s_rmin.copy()
            has_pred = idx > 0
            rmin[has_pred] += a_rmin[idx[has_pred] - 1]
            rmax = s_rmax.copy()
            has_succ = idx < av.size
            rmax[has_succ] += a_rmax[idx[has_succ]] - 1
            rmax[~has_succ] += a_rmax[-1]
            pieces_v.append(sv)
            pieces_lo.append(rmin)
            pieces_hi.append(np.maximum(rmin, rmax))
        all_v = np.concatenate(pieces_v)
        all_lo = np.concatenate(pieces_lo)
        all_hi = np.concatenate(pieces_hi)
        order = np.lexsort((all_lo, all_v))
        merged = [RankedValue(float(v), int(lo), int(hi))
                  for v, lo, hi in zip(all_v[order], all_lo[order],
                                       all_hi[order])]
        return QuantileSummary(merged, self.count + other.count,
                               max(self.error, other.error))

    @staticmethod
    def merge_all(summaries: list["QuantileSummary"]) -> "QuantileSummary":
        """Merge many summaries with a balanced binary reduction.

        Equivalent to folding :meth:`merge` left-to-right (the operation
        is associative in its guarantees) but each entry participates in
        ``log k`` merges instead of ``O(k)``, which matters when a
        sliding window holds hundreds of sub-window summaries.
        """
        level = [s for s in summaries if s.count] or [QuantileSummary.empty()]
        while len(level) > 1:
            merged = []
            for i in range(0, len(level) - 1, 2):
                merged.append(level[i].merge(level[i + 1]))
            if len(level) % 2:
                merged.append(level[-1])
            level = merged
        return level[0]

    def prune(self, budget: int) -> "QuantileSummary":
        """Keep ``budget + 1`` entries; error grows by ``1 / (2 * budget)``.

        Queries the summary at the ranks ``i * n / budget`` for
        ``i = 0..budget`` and keeps the answering entries with their
        original rank bounds (GK04's prune).
        """
        if budget < 1:
            raise SummaryError(f"prune budget must be >= 1, got {budget}")
        if len(self.entries) <= budget + 1:
            return QuantileSummary(list(self.entries), self.count,
                                   self.error + 1.0 / (2.0 * budget))
        kept: list[RankedValue] = []
        for i in range(budget + 1):
            rank = max(1, min(self.count,
                              math.ceil(i * self.count / budget)))
            entry = self._lookup(rank)
            if not kept or entry is not kept[-1]:
                kept.append(entry)
        return QuantileSummary(kept, self.count,
                               self.error + 1.0 / (2.0 * budget))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lookup(self, rank: int) -> RankedValue:
        """Entry minimising ``max(rank - rmin, rmax - rank)``."""
        if not self.entries:
            raise QueryError("lookup on an empty summary")
        _, rmins, rmaxs = self._arrays()
        scores = np.maximum(rank - rmins, rmaxs - rank)
        return self.entries[int(np.argmin(scores))]

    def query_rank(self, rank: int) -> float:
        """Value whose true rank is within ``error * count`` of ``rank``."""
        if self.count == 0:
            raise QueryError("query on an empty summary")
        if not 1 <= rank <= self.count:
            raise QueryError(f"rank must be in [1, {self.count}], got {rank}")
        return self._lookup(rank).value

    def quantile(self, phi: float) -> float:
        """The phi-quantile within ``error * count`` rank error."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        if self.count == 0:
            raise QueryError("quantile of an empty summary")
        return self.query_rank(max(1, math.ceil(phi * self.count)))

    def __len__(self) -> int:
        return len(self.entries)

    def check_invariant(self) -> None:
        """Validate ordering and rank-bound sanity; raise on violation."""
        previous_value = -math.inf
        for entry in self.entries:
            if entry.value < previous_value:
                raise InvariantViolation("summary entries out of value order")
            previous_value = entry.value
            if entry.rmax > self.count:
                raise InvariantViolation(
                    f"rmax {entry.rmax} exceeds population {self.count}")
        if self.entries:
            if self.entries[0].rmin > max(1, math.ceil(
                    2 * self.error * self.count)):
                raise InvariantViolation("first entry's rmin too large")
