"""Epsilon-approximate quantile estimation (paper Sections 2.1 and 5.2).

Alongside the paper's GK machinery live the modern families — DDSketch
(relative error), KLL (compactor levels), t-digest (merging centroids)
— registered as first-class estimator kinds.
"""

from .ddsketch import DDSketch
from .gk import GKSummary
from .kll import KLLSketch
from .sensor import SensorNode, aggregate
from .tdigest import TDigest
from .window import QuantileSummary, RankedValue

__all__ = [
    "DDSketch",
    "GKSummary",
    "KLLSketch",
    "QuantileSummary",
    "RankedValue",
    "SensorNode",
    "TDigest",
    "aggregate",
]
