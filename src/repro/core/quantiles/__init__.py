"""Epsilon-approximate quantile estimation (paper Sections 2.1 and 5.2)."""

from .gk import GKSummary
from .sensor import SensorNode, aggregate
from .window import QuantileSummary, RankedValue

__all__ = [
    "GKSummary",
    "QuantileSummary",
    "RankedValue",
    "SensorNode",
    "aggregate",
]
