"""The Greenwald-Khanna (2001) epsilon-approximate quantile summary.

This is the single-element-insertion summary the paper cites as [21]: a
sorted list of tuples ``(v, g, delta)`` where ``g_i`` is the gap between
the minimum ranks of consecutive tuples and ``delta_i`` bounds the spread
between the tuple's minimum and maximum possible rank.  The structure
maintains the invariant ``g_i + delta_i <= floor(2 * eps * n)``, which
guarantees that any phi-quantile can be answered within ``eps * n`` rank
error.

The window-based pipeline of Section 5.2 (sort the window on the GPU,
sample, merge, prune) lives in :mod:`repro.core.quantiles.window`; this
module provides both the canonical single-element algorithm — used as the
CPU-side reference and by tests — and the batched insertion path used when
a pre-sorted window is available.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable

import numpy as np

from ...errors import InvariantViolation, QueryError, SummaryError


class GKSummary:
    """Greenwald-Khanna epsilon-approximate quantile summary.

    Parameters
    ----------
    eps:
        Target rank-error fraction; queries are answered within
        ``eps * n`` of the true rank.

    Examples
    --------
    >>> from repro.core.quantiles import GKSummary
    >>> s = GKSummary(eps=0.1)
    >>> for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
    ...     s.insert(v)
    >>> 2.0 <= s.quantile(0.5) <= 4.0
    True
    """

    def __init__(self, eps: float):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        self.eps = float(eps)
        self._values: list[float] = []
        self._g: list[int] = []
        self._delta: list[int] = []
        self.count = 0
        self._since_compress = 0
        self._compress_period = max(1, int(1.0 / (2.0 * eps)))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Insert one stream element (the single-element model, §3.2)."""
        value = float(value)
        if math.isnan(value):
            raise SummaryError("cannot insert NaN")
        threshold = math.floor(2.0 * self.eps * self.count)
        idx = bisect_right(self._values, value)
        if idx == 0 or idx == len(self._values):
            delta = 0
        else:
            delta = max(0, threshold - 1)
        self._values.insert(idx, value)
        self._g.insert(idx, 1)
        self._delta.insert(idx, delta)
        self.count += 1
        self._since_compress += 1
        if self._since_compress >= self._compress_period:
            self.compress()

    def insert_sorted(self, values: Iterable[float] | np.ndarray) -> None:
        """Insert an ascending batch (the window model: sort first, then feed).

        Equivalent to inserting one by one but performs a single merge walk
        instead of repeated bisection.
        """
        batch = np.asarray(list(values) if not isinstance(values, np.ndarray)
                           else values, dtype=np.float64).ravel()
        if batch.size == 0:
            return
        if np.any(np.isnan(batch)):
            raise SummaryError("cannot insert NaN")
        if np.any(batch[1:] < batch[:-1]):
            raise SummaryError("insert_sorted requires ascending input")
        for value in batch.tolist():
            self.insert(value)

    def compress(self) -> None:
        """Merge adjacent tuples whose combined uncertainty stays legal.

        The simplified (band-free) compress: tuple ``i`` is absorbed into
        tuple ``i+1`` when ``g_i + g_{i+1} + delta_{i+1} <= 2 eps n``.  The
        extreme tuples are never removed, so min and max stay exact.
        """
        self._since_compress = 0
        if len(self._values) < 3:
            return
        threshold = math.floor(2.0 * self.eps * self.count)
        values, g, delta = self._values, self._g, self._delta
        out_v = [values[0]]
        out_g = [g[0]]
        out_d = [delta[0]]
        for i in range(1, len(values)):
            if (len(out_v) > 1
                    and out_g[-1] + g[i] + delta[i] <= threshold):
                # absorb the previous kept tuple into tuple i
                out_v[-1] = values[i]
                out_g[-1] += g[i]
                out_d[-1] = delta[i]
            else:
                out_v.append(values[i])
                out_g.append(g[i])
                out_d.append(delta[i])
        self._values, self._g, self._delta = out_v, out_g, out_d

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of tuples currently stored."""
        return len(self._values)

    def quantile(self, phi: float) -> float:
        """Return a value whose rank is within ``eps * n`` of ``phi * n``."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        if self.count == 0:
            raise QueryError("quantile of an empty summary")
        rank = max(1, math.ceil(phi * self.count))
        return self.query_rank(rank)

    def query_rank(self, rank: int) -> float:
        """Return a value whose rank is within ``eps * n`` of ``rank``."""
        if not 1 <= rank <= self.count:
            raise QueryError(f"rank must be in [1, {self.count}], got {rank}")
        tolerance = max(1.0, self.eps * self.count)
        rmin = 0
        best_value = self._values[-1]
        best_score = math.inf
        for i, value in enumerate(self._values):
            rmin += self._g[i]
            rmax = rmin + self._delta[i]
            score = max(rank - rmin, rmax - rank, 0)
            if score < best_score:
                best_score = score
                best_value = value
            if score <= tolerance and rmin >= rank:
                break
        return best_value

    def check_invariant(self) -> None:
        """Raise :class:`InvariantViolation` if the GK invariant is broken."""
        if not self._values:
            return
        threshold = max(1, math.floor(2.0 * self.eps * self.count))
        for i in range(1, len(self._values)):
            if self._g[i] + self._delta[i] > threshold:
                raise InvariantViolation(
                    f"tuple {i}: g + delta = {self._g[i] + self._delta[i]} "
                    f"> 2 eps n = {threshold}")
        if sum(self._g) != self.count:
            raise InvariantViolation(
                f"sum of g ({sum(self._g)}) != n ({self.count})")
        if any(self._values[i] > self._values[i + 1]
               for i in range(len(self._values) - 1)):
            raise InvariantViolation("tuple values out of order")
