"""The Greenwald-Khanna (2001) epsilon-approximate quantile summary.

This is the single-element-insertion summary the paper cites as [21]: a
sorted list of tuples ``(v, g, delta)`` where ``g_i`` is the gap between
the minimum ranks of consecutive tuples and ``delta_i`` bounds the spread
between the tuple's minimum and maximum possible rank.  The structure
maintains the invariant ``g_i + delta_i <= floor(2 * eps * n)``, which
guarantees that any phi-quantile can be answered within ``eps * n`` rank
error.

The window-based pipeline of Section 5.2 (sort the window on the GPU,
sample, merge, prune) lives in :mod:`repro.core.quantiles.window`; this
module provides both the canonical single-element algorithm — used as the
CPU-side reference and by tests — and the batched insertion path used when
a pre-sorted window is available.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable

import numpy as np

from ...errors import InvariantViolation, QueryError, SummaryError
from ..estimators import EstimatorCapabilities, register_estimator


def _compress_arrays(values: np.ndarray, g: np.ndarray, delta: np.ndarray,
                     threshold: int
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One greedy compress pass over tuple arrays, vectorised per group.

    Same semantics as :meth:`GKSummary.compress`: walking left to right,
    tuple ``j`` joins the group started at ``s`` while the group's
    combined ``sum(g) + delta_j`` stays within ``threshold``; the group
    collapses to ``(v_e, sum g, delta_e)`` for its last member ``e``.
    Tuple 0 is always kept alone so the minimum stays exact.

    A group's ``g`` sum is at most ``threshold`` and every ``g >= 1``,
    so each group spans at most ``threshold + 1`` tuples — the scan for
    the group end is a bounded vectorised comparison instead of a
    per-tuple Python loop.
    """
    n = int(values.size)
    if n < 3:
        return values, g, delta
    cumg = np.cumsum(g)
    reach = cumg + delta  # reach[j] <= threshold + cumg[s-1] => absorbable
    keep_v = [float(values[0])]
    keep_g = [int(g[0])]
    keep_d = [int(delta[0])]
    span = int(threshold) + 2
    s = 1
    while s < n:
        base = int(cumg[s - 1])
        hi = min(s + span, n)
        fails = reach[s + 1:hi] > threshold + base
        if fails.any():
            end = s + int(np.argmax(fails))
        else:
            end = hi - 1
        keep_v.append(float(values[end]))
        keep_g.append(int(cumg[end] - base))
        keep_d.append(int(delta[end]))
        s = end + 1
    return (np.asarray(keep_v, dtype=np.float64),
            np.asarray(keep_g, dtype=np.int64),
            np.asarray(keep_d, dtype=np.int64))


class GKSummary:
    """Greenwald-Khanna epsilon-approximate quantile summary.

    Parameters
    ----------
    eps:
        Target rank-error fraction; queries are answered within
        ``eps * n`` of the true rank.

    Examples
    --------
    >>> from repro.core.quantiles import GKSummary
    >>> s = GKSummary(eps=0.1)
    >>> for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
    ...     s.insert(v)
    >>> 2.0 <= s.quantile(0.5) <= 4.0
    True
    """

    def __init__(self, eps: float):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        self.eps = float(eps)
        self._values: list[float] = []
        self._g: list[int] = []
        self._delta: list[int] = []
        self.count = 0
        self._since_compress = 0
        self._compress_period = max(1, int(1.0 / (2.0 * eps)))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Insert one stream element (the single-element model, §3.2)."""
        value = float(value)
        if math.isnan(value):
            raise SummaryError("cannot insert NaN")
        threshold = math.floor(2.0 * self.eps * self.count)
        idx = bisect_right(self._values, value)
        if idx == 0 or idx == len(self._values):
            delta = 0
        else:
            delta = max(0, threshold - 1)
        self._values.insert(idx, value)
        self._g.insert(idx, 1)
        self._delta.insert(idx, delta)
        self.count += 1
        self._since_compress += 1
        if self._since_compress >= self._compress_period:
            self.compress()

    def insert_sorted(self, values: Iterable[float] | np.ndarray) -> None:
        """Insert an ascending batch (the window model: sort first, then feed).

        Vectorised O(n + |S|) merge: every batch element receives exactly
        the tuple ``(v, 1, delta)`` the single-element path would give it
        — ``delta = 0`` for a new minimum or maximum, otherwise
        ``max(0, floor(2 eps n_before) - 1)`` for its own pre-insertion
        count — followed by **one** compress over the merged arrays.
        This matches inserting the batch element by element with
        compression deferred to the end of the batch (the scalar path
        with ``_compress_period`` larger than the batch, then one
        explicit :meth:`compress`); periodic mid-batch compression only
        reorders which legal tuples survive, never the guarantee.
        """
        batch = np.asarray(list(values) if not isinstance(values, np.ndarray)
                           else values, dtype=np.float64).ravel()
        if batch.size == 0:
            return
        if np.any(np.isnan(batch)):
            raise SummaryError("cannot insert NaN")
        if np.any(batch[1:] < batch[:-1]):
            raise SummaryError("insert_sorted requires ascending input")
        orig_v = np.asarray(self._values, dtype=np.float64)
        orig_g = np.asarray(self._g, dtype=np.int64)
        orig_d = np.asarray(self._delta, dtype=np.int64)
        # Where each batch element lands: bisect_right against the
        # original tuples; equal batch elements keep arrival order, so
        # np.insert's stable placement reproduces sequential insertion.
        pos = np.searchsorted(orig_v, batch, side="right")
        pre_counts = self.count + np.arange(batch.size, dtype=np.int64)
        delta = np.maximum(
            0, (2.0 * self.eps * pre_counts).astype(np.int64) - 1)
        # An element with pos == len(orig) is >= every original value and
        # (batch ascending) every earlier batch element: a running
        # maximum, inserted at the end -> delta = 0.  Only the first
        # batch element can be a new minimum: later ones sit at or after
        # it, so their insertion index is never 0.
        delta[pos == orig_v.size] = 0
        if orig_v.size and pos[0] == 0:
            delta[0] = 0
        if orig_v.size == 0:
            # First window: the merge IS the batch.
            merged_v = batch
            merged_g = np.ones(batch.size, dtype=np.int64)
            merged_d = delta
        else:
            # Stable scatter-merge: batch element i ends up pos[i] slots
            # past its bisect point (one per earlier batch element), the
            # original tuples fill the remaining slots in order.
            # Equivalent to np.insert at ``pos`` but without its
            # internal argsort.
            total = orig_v.size + batch.size
            batch_idx = pos + np.arange(batch.size, dtype=np.int64)
            orig_mask = np.ones(total, dtype=bool)
            orig_mask[batch_idx] = False
            merged_v = np.empty(total, dtype=np.float64)
            merged_g = np.empty(total, dtype=np.int64)
            merged_d = np.empty(total, dtype=np.int64)
            merged_v[batch_idx] = batch
            merged_g[batch_idx] = 1
            merged_d[batch_idx] = delta
            merged_v[orig_mask] = orig_v
            merged_g[orig_mask] = orig_g
            merged_d[orig_mask] = orig_d
        self.count += int(batch.size)
        threshold = math.floor(2.0 * self.eps * self.count)
        out_v, out_g, out_d = _compress_arrays(
            merged_v, merged_g, merged_d, threshold)
        self._values = out_v.tolist()
        self._g = out_g.tolist()
        self._delta = out_d.tolist()
        self._since_compress = 0

    def compress(self) -> None:
        """Merge adjacent tuples whose combined uncertainty stays legal.

        The simplified (band-free) compress: tuple ``i`` is absorbed into
        tuple ``i+1`` when ``g_i + g_{i+1} + delta_{i+1} <= 2 eps n``.  The
        extreme tuples are never removed, so min and max stay exact.
        """
        self._since_compress = 0
        if len(self._values) < 3:
            return
        threshold = math.floor(2.0 * self.eps * self.count)
        values, g, delta = self._values, self._g, self._delta
        out_v = [values[0]]
        out_g = [g[0]]
        out_d = [delta[0]]
        for i in range(1, len(values)):
            if (len(out_v) > 1
                    and out_g[-1] + g[i] + delta[i] <= threshold):
                # absorb the previous kept tuple into tuple i
                out_v[-1] = values[i]
                out_g[-1] += g[i]
                out_d[-1] = delta[i]
            else:
                out_v.append(values[i])
                out_g.append(g[i])
                out_d.append(delta[i])
        self._values, self._g, self._delta = out_v, out_g, out_d

    # ------------------------------------------------------------------
    # the uniform Estimator protocol
    # ------------------------------------------------------------------
    def update_batch(self, sorted_window: np.ndarray,
                     histogram=None) -> None:
        """Protocol entry point: absorb one ascending window."""
        self.insert_sorted(np.asarray(sorted_window).ravel())

    def query(self, phi: float) -> float:
        """Protocol query: the phi-quantile."""
        return self.quantile(phi)

    def error_bound(self) -> float:
        """Deterministic rank-error fraction."""
        return self.eps

    @property
    def processed(self) -> int:
        """Stream elements inserted so far."""
        return self.count

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot of the summary."""
        return {
            "version": 1,
            "kind": "gk-summary",
            "eps": self.eps,
            "count": self.count,
            "tuples": [[float(v), int(g), int(d)] for v, g, d
                       in zip(self._values, self._g, self._delta)],
        }

    @classmethod
    def from_state(cls, state: dict) -> "GKSummary":
        """Rebuild a summary from :meth:`to_state` output."""
        if state.get("kind") != "gk-summary" or state.get("version") != 1:
            raise SummaryError(
                f"not a v1 gk-summary state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        summary = cls(float(state["eps"]))
        summary.count = int(state["count"])
        tuples = state["tuples"]
        summary._values = [float(v) for v, _, _ in tuples]
        summary._g = [int(g) for _, g, _ in tuples]
        summary._delta = [int(d) for _, _, d in tuples]
        summary.check_invariant()
        return summary

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of tuples currently stored."""
        return len(self._values)

    def quantile(self, phi: float) -> float:
        """Return a value whose rank is within ``eps * n`` of ``phi * n``."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        if self.count == 0:
            raise QueryError("quantile of an empty summary")
        rank = max(1, math.ceil(phi * self.count))
        return self.query_rank(rank)

    def query_rank(self, rank: int) -> float:
        """Return a value whose rank is within ``eps * n`` of ``rank``."""
        if not 1 <= rank <= self.count:
            raise QueryError(f"rank must be in [1, {self.count}], got {rank}")
        tolerance = max(1.0, self.eps * self.count)
        rmin = 0
        best_value = self._values[-1]
        best_score = math.inf
        for i, value in enumerate(self._values):
            rmin += self._g[i]
            rmax = rmin + self._delta[i]
            score = max(rank - rmin, rmax - rank, 0)
            if score < best_score:
                best_score = score
                best_value = value
            if score <= tolerance and rmin >= rank:
                break
        return best_value

    def check_invariant(self) -> None:
        """Raise :class:`InvariantViolation` if the GK invariant is broken."""
        if not self._values:
            return
        threshold = max(1, math.floor(2.0 * self.eps * self.count))
        for i in range(1, len(self._values)):
            if self._g[i] + self._delta[i] > threshold:
                raise InvariantViolation(
                    f"tuple {i}: g + delta = {self._g[i] + self._delta[i]} "
                    f"> 2 eps n = {threshold}")
        if sum(self._g) != self.count:
            raise InvariantViolation(
                f"sum of g ({sum(self._g)}) != n ({self.count})")
        if any(self._values[i] > self._values[i + 1]
               for i in range(len(self._values) - 1)):
            raise InvariantViolation("tuple values out of order")


register_estimator(
    "gk-summary", GKSummary,
    # A building block (driver=None): the pipeline drives GK summaries
    # through the exponential histogram, never standalone, so the
    # planner must not map a query onto a bare gk-summary.
    capabilities=EstimatorCapabilities(
        statistic="quantile", metrics=("quantile",), driver=None,
        mergeable=False,
        merge_cycles=40.0, compress_cycles=10.0,
        entries_per_inverse_eps=1.0, bound_type="rank"))
