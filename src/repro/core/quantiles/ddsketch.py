"""DDSketch: relative-error quantiles over log-spaced buckets.

The paper's quantile machinery (GK summaries, Section 5.2) guarantees
*rank* error: the answer's rank is within ``eps * N`` of the target.
Latency/log analytics wants the other guarantee — *relative value*
error, so a p99 of 2 seconds is never reported as 1 second — which is
DDSketch's contract (Masson, Rim & Lee, VLDB 2019):

    ``|q_est - q_true| <= alpha * |q_true|``

The structure is a histogram over geometrically-spaced buckets: value
``v > 0`` lands in bucket ``ceil(log_gamma(v))`` with
``gamma = (1 + alpha) / (1 - alpha)``, and every value in a bucket is
within ``alpha`` relative error of the bucket's representative
``2 * gamma^i / (gamma + 1)``.  Bucket counts are exact, so the
quantile walk finds the bucket holding the exact target rank and the
guarantee is deterministic.  Negative values mirror into a second
store; magnitudes below :data:`MIN_MAGNITUDE` count as exact zeros.

Two sketches with the same ``alpha`` merge losslessly by adding bucket
counts, which is what the sharded service's merge-on-query path calls.
When the store outgrows ``max_bins`` the lowest-magnitude buckets
collapse into one (the published space/accuracy escape hatch); the
relative guarantee then holds above the collapsed magnitude.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import QueryError, SummaryError
from ..estimators import EstimatorCapabilities, register_estimator

__all__ = ["DDSketch", "MIN_MAGNITUDE"]

#: Magnitudes at or below this are exact zeros (the zero bucket), which
#: keeps the log-bucket index finite and makes ``quantile`` return 0.0
#: exactly where the data is zero.
MIN_MAGNITUDE = 1e-9


class DDSketch:
    """Mergeable relative-error quantile sketch.

    Parameters
    ----------
    alpha:
        Relative accuracy: answers satisfy
        ``|q_est - q| <= alpha * |q|``.
    max_bins:
        Bucket budget per store (positive/negative); the lowest buckets
        collapse when exceeded.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.quantiles import DDSketch
    >>> sk = DDSketch(alpha=0.01)
    >>> sk.update_batch(np.sort(np.arange(1, 1001, dtype=np.float32)))
    >>> abs(sk.quantile(0.99) - 990) <= 0.01 * 990
    True
    """

    def __init__(self, alpha: float, max_bins: int = 2048):
        if not 0.0 < alpha < 1.0:
            raise SummaryError(f"alpha must be in (0, 1), got {alpha}")
        if max_bins < 2:
            raise SummaryError(f"max_bins must be >= 2, got {max_bins}")
        self.alpha = float(alpha)
        self.max_bins = int(max_bins)
        self.gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self._zero = 0
        #: bucket index -> exact count, one store per sign.
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _bucket_counts(self, magnitudes: np.ndarray) -> zip:
        indices = np.ceil(
            np.log(magnitudes) / self._log_gamma).astype(np.int64)
        unique, counts = np.unique(indices, return_counts=True)
        return zip(unique.tolist(), counts.tolist())

    def update_batch(self, sorted_window: np.ndarray,
                     histogram=None) -> None:
        """Absorb one window (sortedness is not required, only allowed)."""
        arr = np.asarray(sorted_window, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        self.count += int(arr.size)
        magnitudes = np.abs(arr)
        tiny = magnitudes <= MIN_MAGNITUDE
        self._zero += int(np.count_nonzero(tiny))
        positive = arr > MIN_MAGNITUDE
        if positive.any():
            for index, freq in self._bucket_counts(magnitudes[positive]):
                self._pos[index] = self._pos.get(index, 0) + freq
        negative = ~tiny & ~positive
        if negative.any():
            for index, freq in self._bucket_counts(magnitudes[negative]):
                self._neg[index] = self._neg.get(index, 0) + freq
        self._collapse(self._pos)
        self._collapse(self._neg)

    def update(self, values) -> None:
        """Convenience alias used by direct (non-pipeline) callers."""
        self.update_batch(np.asarray(values, dtype=np.float64))

    def _collapse(self, store: dict[int, int]) -> None:
        """Fold the lowest-magnitude buckets into one while over budget."""
        while len(store) > self.max_bins:
            low, second = sorted(store)[:2]
            store[second] += store.pop(low)

    def merge(self, other: "DDSketch") -> "DDSketch":
        """A new sketch over both streams (bucket counts add exactly)."""
        if not isinstance(other, DDSketch):
            raise SummaryError(
                f"cannot merge DDSketch with {type(other).__name__}")
        if other.alpha != self.alpha or other.max_bins != self.max_bins:
            raise SummaryError(
                f"merge needs matching accuracy: alpha {self.alpha} vs "
                f"{other.alpha}, max_bins {self.max_bins} vs "
                f"{other.max_bins}")
        merged = DDSketch(self.alpha, self.max_bins)
        merged.count = self.count + other.count
        merged._zero = self._zero + other._zero
        for store_name in ("_pos", "_neg"):
            target = getattr(merged, store_name)
            for source in (getattr(self, store_name),
                           getattr(other, store_name)):
                for index, freq in source.items():
                    target[index] = target.get(index, 0) + freq
            merged._collapse(target)
        return merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _representative(self, index: int) -> float:
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def quantile(self, phi: float) -> float:
        """The phi-quantile, within ``alpha`` relative error of the truth."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        if self.count == 0:
            raise QueryError("no data ingested yet")
        target = max(1, math.ceil(phi * self.count))
        cumulative = 0
        # Ascending value order: negatives from largest magnitude down,
        # then the zero bucket, then positives from smallest index up.
        for index in sorted(self._neg, reverse=True):
            cumulative += self._neg[index]
            if cumulative >= target:
                return -self._representative(index)
        cumulative += self._zero
        if cumulative >= target:
            return 0.0
        for index in sorted(self._pos):
            cumulative += self._pos[index]
            if cumulative >= target:
                return self._representative(index)
        raise QueryError(
            f"bucket populations sum to {cumulative} < count {self.count}")

    def query(self, phi: float) -> float:
        """Protocol query: the phi-quantile."""
        return self.quantile(phi)

    def error_bound(self) -> float:
        """Deterministic *relative value* error fraction (alpha)."""
        return self.alpha

    @property
    def processed(self) -> int:
        """Elements absorbed."""
        return self.count

    def space(self) -> int:
        """Live buckets across both stores (plus the zero bucket)."""
        return len(self._pos) + len(self._neg) + (1 if self._zero else 0)

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot (exact bucket counts)."""
        return {
            "version": 1,
            "kind": "ddsketch",
            "alpha": self.alpha,
            "max_bins": self.max_bins,
            "count": self.count,
            "zero": self._zero,
            "pos": [[int(i), int(c)] for i, c in sorted(self._pos.items())],
            "neg": [[int(i), int(c)] for i, c in sorted(self._neg.items())],
        }

    @classmethod
    def from_state(cls, state: dict) -> "DDSketch":
        """Rebuild a sketch from :meth:`to_state` output."""
        if state.get("kind") != "ddsketch" or state.get("version") != 1:
            raise SummaryError(
                f"not a v1 ddsketch state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        sketch = cls(float(state["alpha"]), int(state["max_bins"]))
        sketch.count = int(state["count"])
        sketch._zero = int(state["zero"])
        sketch._pos = {int(i): int(c) for i, c in state["pos"]}
        sketch._neg = {int(i): int(c) for i, c in state["neg"]}
        return sketch


register_estimator(
    "ddsketch", DDSketch,
    # Relative-error quantiles: same driver statistic as the default
    # exponential histogram but costed above it (dict-hash merge per
    # element), so the planner only picks it when asked by kind.
    capabilities=EstimatorCapabilities(
        statistic="quantile", metrics=("quantile",), driver="quantile",
        merge_cycles=48.0, compress_cycles=12.0,
        entries_per_inverse_eps=2.5, bound_type="relative"),
    builder=lambda eps, window_size, hint: DDSketch(eps))
