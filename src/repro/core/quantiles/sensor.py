"""The Greenwald-Khanna sensor-network aggregation model (Section 5.2).

The paper's quantile pipeline is an adaptation of GK04's algorithm for
sensor networks: "The sensor network is assumed as a tree with height h.
Each node in the tree initially computes an eps/2-approximate quantile
summary by sorting its set of observations locally ... Each node
communicates its summary structure to its parent node", which merges the
children's summaries and prunes the result back to ``B + 1`` entries.

Each prune adds ``1 / (2B)`` error, so after ``h`` levels the root
summary is ``(eps/2 + h/(2B))``-approximate; choosing ``B = ceil(h /
eps)`` keeps the total within ``eps``.  This module implements that tree
verbatim — it is both the conceptual basis of the streaming estimator
(an exponential histogram is this tree laid on its side) and a usable
API for hierarchical aggregation, exercised by the
``sensor_network_aggregation`` example.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import SummaryError
from .window import QuantileSummary


class SensorNode:
    """One node of the aggregation tree.

    Parameters
    ----------
    observations:
        The values measured locally at this node (may be empty).
    children:
        Child nodes whose summaries are merged into this node's.
    """

    def __init__(self, observations: np.ndarray | list[float] | None = None,
                 children: list["SensorNode"] | None = None):
        self.observations = np.asarray(
            observations if observations is not None else [],
            dtype=np.float64).ravel()
        self.children = list(children) if children else []

    @property
    def height(self) -> int:
        """Height of the subtree rooted here (a leaf has height 0)."""
        if not self.children:
            return 0
        return 1 + max(child.height for child in self.children)

    @property
    def total_observations(self) -> int:
        """Observations in the whole subtree."""
        return int(self.observations.size) + sum(
            child.total_observations for child in self.children)

    def local_summary(self, eps: float) -> QuantileSummary:
        """The eps/2-approximate summary of this node's own observations."""
        if self.observations.size == 0:
            return QuantileSummary.empty()
        return QuantileSummary.from_sorted(np.sort(self.observations),
                                           eps / 2.0)


def aggregate(root: SensorNode, eps: float,
              budget: int | None = None) -> QuantileSummary:
    """Aggregate a sensor tree bottom-up into an eps-approximate summary.

    Parameters
    ----------
    root:
        The tree to aggregate.
    eps:
        Target error at the root.
    budget:
        Prune budget ``B``; defaults to ``ceil(h / eps)`` where ``h`` is
        the tree height, the smallest budget that meets ``eps``.

    Returns
    -------
    QuantileSummary
        A summary of every observation in the tree whose ``error`` field
        is at most ``eps`` (exactly ``eps/2 + h/(2B)``).
    """
    if not 0.0 < eps < 1.0:
        raise SummaryError(f"eps must be in (0, 1), got {eps}")
    height = root.height
    if budget is None:
        budget = max(1, math.ceil(max(height, 1) / eps))
    return _aggregate_node(root, eps, budget)


def _aggregate_node(node: SensorNode, eps: float,
                    budget: int) -> QuantileSummary:
    summary = node.local_summary(eps)
    for child in node.children:
        summary = summary.merge(_aggregate_node(child, eps, budget))
    if node.children and summary.count:
        summary = summary.prune(budget)
    return summary
