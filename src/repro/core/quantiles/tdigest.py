"""t-digest: merging-digest centroids for tail quantiles.

Dunning & Ertl's digest clusters the stream into centroids — (mean,
weight) pairs kept sorted by mean — with a cap on how much mass one
centroid may absorb.  This implementation uses the *uniform* scale
variant: every centroid holds at most ``delta * N / 2`` elements, so
the rank uncertainty introduced by reading an interpolated value off
the centroid chain stays within ``delta * N``, the rank bound
``error_bound()`` reports.  (The classic k1 scale function tightens the
cap near the tails; the uniform cap is the conservative choice that
keeps the whole range uniformly bounded, and the digest still tracks
the exact stream min/max so phi = 0 and phi = 1 are answered exactly.)

Ingest buffers raw values and periodically *compresses*: centroids and
buffered points sort together by mean and greedily re-pack into capped
centroids (weighted means).  The procedure is deterministic, so
checkpoint restore and the cross-executor matrix stay bit-identical.
Digests with equal ``delta`` merge by pooling centroids and
re-packing — the "merging digest" of the paper's title.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import QueryError, SummaryError
from ..estimators import EstimatorCapabilities, register_estimator

__all__ = ["TDigest"]


class TDigest:
    """Mergeable quantile digest with uniformly capped centroids.

    Parameters
    ----------
    delta:
        Target rank-error fraction; centroids hold at most
        ``delta * N / 2`` elements each.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.quantiles import TDigest
    >>> td = TDigest(delta=0.05)
    >>> td.update_batch(np.arange(10_000, dtype=np.float32))
    >>> abs(td.quantile(0.99) - 9_900) <= 0.05 * 10_000
    True
    """

    def __init__(self, delta: float):
        if not 0.0 < delta < 1.0:
            raise SummaryError(f"delta must be in (0, 1), got {delta}")
        self.delta = float(delta)
        self.count = 0
        self._means: list[float] = []
        self._weights: list[int] = []
        self._buffer: list[float] = []
        self._buffer_limit = max(32, 4 * math.ceil(2.0 / delta))
        self._min: float | None = None
        self._max: float | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def update_batch(self, sorted_window: np.ndarray,
                     histogram=None) -> None:
        """Buffer one window; compress when the buffer fills."""
        arr = np.asarray(sorted_window, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        self.count += int(arr.size)
        low, high = float(arr.min()), float(arr.max())
        self._min = low if self._min is None else min(self._min, low)
        self._max = high if self._max is None else max(self._max, high)
        self._buffer.extend(arr.tolist())
        if len(self._buffer) >= self._buffer_limit:
            self._compress()

    def update(self, values) -> None:
        """Convenience alias used by direct (non-pipeline) callers."""
        self.update_batch(np.asarray(values, dtype=np.float64))

    def _weight_cap(self) -> int:
        return max(1, int(self.delta * self.count / 2.0))

    def _compress(self) -> None:
        """Re-pack centroids + buffer into capped centroids (stable)."""
        if not self._buffer and not self._means:
            return
        means = np.asarray(self._means + self._buffer, dtype=np.float64)
        weights = np.asarray(
            self._weights + [1] * len(self._buffer), dtype=np.int64)
        order = np.argsort(means, kind="stable")
        means, weights = means[order], weights[order]
        cap = self._weight_cap()
        packed_means: list[float] = []
        packed_weights: list[int] = []
        acc_sum, acc_weight = 0.0, 0
        for mean, weight in zip(means.tolist(), weights.tolist()):
            if acc_weight and acc_weight + weight > cap:
                packed_means.append(acc_sum / acc_weight)
                packed_weights.append(acc_weight)
                acc_sum, acc_weight = 0.0, 0
            acc_sum += mean * weight
            acc_weight += weight
        if acc_weight:
            packed_means.append(acc_sum / acc_weight)
            packed_weights.append(acc_weight)
        self._means, self._weights = packed_means, packed_weights
        self._buffer = []

    def merge(self, other: "TDigest") -> "TDigest":
        """A new digest over both streams (centroids pool and re-pack)."""
        if not isinstance(other, TDigest):
            raise SummaryError(
                f"cannot merge TDigest with {type(other).__name__}")
        if other.delta != self.delta:
            raise SummaryError(
                f"merge needs matching delta: {self.delta} vs "
                f"{other.delta}")
        merged = TDigest(self.delta)
        merged.count = self.count + other.count
        for bound in (self._min, other._min):
            if bound is not None:
                merged._min = (bound if merged._min is None
                               else min(merged._min, bound))
        for bound in (self._max, other._max):
            if bound is not None:
                merged._max = (bound if merged._max is None
                               else max(merged._max, bound))
        merged._means = self._means + other._means
        merged._weights = self._weights + other._weights
        merged._buffer = self._buffer + other._buffer
        merged._compress()
        return merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def quantile(self, phi: float) -> float:
        """The phi-quantile by midpoint interpolation over centroids."""
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        if self.count == 0:
            raise QueryError("no data ingested yet")
        self._compress()
        if phi == 0.0:
            return float(self._min)
        if phi == 1.0:
            return float(self._max)
        target = phi * self.count
        # Midpoint positions: centroid i's mass is centered at
        # (cumulative before it) + w_i / 2.
        cumulative = 0.0
        previous_position, previous_mean = 0.5, float(self._min)
        for mean, weight in zip(self._means, self._weights):
            position = cumulative + weight / 2.0
            if target <= position:
                if target <= cumulative:
                    # The target rank falls inside the *previous*
                    # centroid's own mass (its upper half).  Tie-heavy
                    # streams concentrate that mass exactly at the
                    # mean, so interpolating toward the next centroid
                    # can overshoot by more than the delta*N rank
                    # budget; the previous mean is the rank-safe
                    # answer (error at most one centroid's weight,
                    # i.e. the delta*N/2 cap).
                    return float(min(max(previous_mean, self._min),
                                     self._max))
                span = position - previous_position
                if span <= 0:
                    return float(mean)
                fraction = (target - previous_position) / span
                value = previous_mean + fraction * (mean - previous_mean)
                return float(min(max(value, self._min), self._max))
            cumulative += weight
            previous_position, previous_mean = position, mean
        span = (self.count - 0.5) - previous_position
        if span <= 0:
            return float(self._max)
        fraction = (target - previous_position) / span
        value = previous_mean + fraction * (self._max - previous_mean)
        return float(min(max(value, self._min), self._max))

    def query(self, phi: float) -> float:
        """Protocol query: the phi-quantile."""
        return self.quantile(phi)

    def error_bound(self) -> float:
        """Rank-error fraction implied by the uniform centroid cap."""
        return self.delta

    @property
    def processed(self) -> int:
        """Elements absorbed (including the unpacked buffer)."""
        return self.count

    def space(self) -> int:
        """Centroids plus buffered raw values."""
        return len(self._means) + len(self._buffer)

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned snapshot.  Pure: the unpacked buffer serializes
        as-is rather than being compressed away, so a restored digest
        is bit-identical to the live one and continues (and merges)
        exactly the same."""
        return {
            "version": 1,
            "kind": "tdigest",
            "delta": self.delta,
            "count": self.count,
            "min": self._min,
            "max": self._max,
            "centroids": [[float(m), int(w)] for m, w in
                          zip(self._means, self._weights)],
            "buffer": [float(v) for v in self._buffer],
        }

    @classmethod
    def from_state(cls, state: dict) -> "TDigest":
        """Rebuild a digest from :meth:`to_state` output."""
        if state.get("kind") != "tdigest" or state.get("version") != 1:
            raise SummaryError(
                f"not a v1 tdigest state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        digest = cls(float(state["delta"]))
        digest.count = int(state["count"])
        digest._min = (None if state["min"] is None
                       else float(state["min"]))
        digest._max = (None if state["max"] is None
                       else float(state["max"]))
        digest._means = [float(m) for m, _ in state["centroids"]]
        digest._weights = [int(w) for _, w in state["centroids"]]
        digest._buffer = [float(v) for v in state.get("buffer", [])]
        return digest


register_estimator(
    "tdigest", TDigest,
    # Tail-quantile digest: heaviest per-element cost of the quantile
    # kinds (sort + re-pack on compress), so the planner never prefers
    # it over the default without an explicit kind request.
    capabilities=EstimatorCapabilities(
        statistic="quantile", metrics=("quantile",), driver="quantile",
        merge_cycles=80.0, compress_cycles=16.0,
        entries_per_inverse_eps=2.0, bound_type="rank"),
    builder=lambda eps, window_size, hint: TDigest(eps))
