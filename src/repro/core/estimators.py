"""The uniform estimator protocol and the checkpoint-kind registry.

Every summary structure the pipeline can drive — Greenwald-Khanna,
the exponential histogram of window summaries, lossy counting, the KMV
sketch, and the sliding-window estimators — speaks one interface:

``update_batch(sorted_window, histogram=None)``
    Absorb one ascending window.  Estimators that consume run-length
    histograms accept the one the pipeline's summarize stage already
    computed (and compute their own when fed directly).
``query(...)``
    The estimator's natural query (phi for quantiles, support for
    frequencies, nothing for distinct counts).
``error_bound()``
    The guarantee the estimator offers, as a fraction (deterministic
    eps, or a 2-sigma relative error for randomized sketches).
``to_state()`` / ``from_state(state)``
    Versioned JSON-serializable checkpointing.

The engine's merge stage and the checkpoint/restore code dispatch
through this protocol instead of special-casing each statistic; restore
resolves the concrete class from the state's ``"kind"`` tag via
:func:`estimator_from_state`.

Capabilities.  Each registered kind also declares an
:class:`EstimatorCapabilities` record: which *query metrics* it can
answer (``"quantile"``, ``"heavy_hitters"``, ``"top_k"``,
``"estimate"``, ``"distinct"``), which pipeline ``statistic`` drives
it, and the per-element cost coefficients the continuous-query planner
(:mod:`repro.query.planner`) feeds into the :mod:`repro.bench.models`
timing model.  The registry is the single place the planner learns what
exists — a new estimator family becomes plannable by registering here,
without the planner changing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from ..errors import SummaryError

__all__ = [
    "BOUND_TYPES",
    "Estimator",
    "EstimatorCapabilities",
    "build_estimator",
    "default_kind_for",
    "estimator_capabilities",
    "estimator_from_state",
    "register_estimator",
    "registered_capabilities",
    "registered_estimator_kinds",
]

#: The query metrics a capability record may advertise.
QUERY_METRICS = ("quantile", "heavy_hitters", "top_k", "estimate",
                 "distinct")

#: The guarantee shapes the conformance layer knows how to verify.
#:
#: ``"rank"``
#:     Quantile answers land within ``eps * N`` ranks of the target
#:     rank (GK, the exponential histogram, KLL, t-digest).
#: ``"relative"``
#:     Quantile answers land within ``eps * |x|`` of the true quantile
#:     *value* ``x`` (DDSketch).
#: ``"count-under"``
#:     Point frequencies never overcount and undercount by at most
#:     ``eps * N`` (lossy counting).
#: ``"count-over"``
#:     Point frequencies never undercount and overcount by at most
#:     ``eps * N`` (count-min).
#: ``"relative-std"``
#:     A 2-sigma relative error on the estimate (KMV distinct counts).
BOUND_TYPES = ("rank", "relative", "count-under", "count-over",
               "relative-std")


@dataclass(frozen=True)
class EstimatorCapabilities:
    """Planner-facing metadata for one registered estimator kind.

    Parameters
    ----------
    statistic:
        The pipeline statistic that instantiates this kind
        (``"quantile"`` / ``"frequency"`` / ``"distinct"``).
    metrics:
        Query metrics the kind can answer (subset of
        :data:`QUERY_METRICS`).
    driver:
        The :class:`~repro.core.engine.StreamMiner` statistic name that
        builds this kind as its live estimator, or ``None`` when the
        kind is a building block (e.g. ``gk-summary`` inside the
        exponential histogram) that the planner must not pick directly.
    mergeable:
        Whether per-shard instances merge losslessly (required for the
        sharded pools' merge-on-query path).
    randomized:
        ``True`` when ``error_bound()`` is a 2-sigma relative error
        rather than a deterministic guarantee.
    merge_cycles / compress_cycles:
        Modelled CPU cycles per element (merge) and per summary entry
        (compress) — the knobs :func:`repro.bench.models.
        streaming_modelled_time` takes.
    entries_per_inverse_eps:
        Summary entries per ``1/eps`` (space model; sizes the
        compress-scan term).
    bound_type:
        The shape of the guarantee ``error_bound()`` states, one of
        :data:`BOUND_TYPES`.  The conformance suite dispatches on this
        to pick the exact-oracle check (rank error vs relative value
        error vs one-sided count error).
    """

    statistic: str
    metrics: tuple[str, ...]
    driver: str | None = None
    mergeable: bool = True
    randomized: bool = False
    merge_cycles: float = 40.0
    compress_cycles: float = 10.0
    entries_per_inverse_eps: float = 1.0
    bound_type: str = "rank"

    def __post_init__(self):
        if self.statistic not in ("quantile", "frequency", "distinct"):
            raise SummaryError(
                f"unknown capability statistic {self.statistic!r}")
        unknown = set(self.metrics) - set(QUERY_METRICS)
        if unknown:
            raise SummaryError(
                f"unknown capability metrics {sorted(unknown)!r}; "
                f"known: {', '.join(QUERY_METRICS)}")
        if not self.metrics:
            raise SummaryError("capabilities must declare >= 1 metric")
        if self.bound_type not in BOUND_TYPES:
            raise SummaryError(
                f"unknown bound type {self.bound_type!r}; "
                f"known: {', '.join(BOUND_TYPES)}")


@runtime_checkable
class Estimator(Protocol):
    """Structural interface every pipeline estimator implements."""

    def update_batch(self, sorted_window, histogram=None) -> None:
        """Absorb one ascending window (histogram optional, pre-computed)."""
        ...

    def query(self, *args: Any, **kwargs: Any) -> Any:
        """Answer the estimator's natural query."""
        ...

    def error_bound(self) -> float:
        """The approximation guarantee, as a fraction."""
        ...

    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot."""
        ...


#: state ``"kind"`` tag -> estimator class (populated at import time by
#: each estimator module).
_KINDS: dict[str, type] = {}

#: state ``"kind"`` tag -> :class:`EstimatorCapabilities`.
_CAPABILITIES: dict[str, EstimatorCapabilities] = {}

#: state ``"kind"`` tag -> builder ``(eps, window_size, hint) -> est``.
_BUILDERS: dict[str, Any] = {}

#: statistic -> the kind :class:`~repro.core.engine.StreamMiner` builds
#: when no explicit kind is requested.  These are the paper's original
#: summaries; newer families opt in per query via ``kind=``.
_DEFAULT_KINDS = {
    "quantile": "streaming-quantiles",
    "frequency": "lossy-counting",
    "distinct": "kmv",
}


def register_estimator(kind: str, cls: type, *, replace: bool = False,
                       capabilities: EstimatorCapabilities | None = None,
                       builder=None) -> None:
    """Map a checkpoint ``kind`` tag to the class that restores it.

    ``capabilities`` declares the kind to the continuous-query planner;
    the registry-coverage guard in ``tests/query`` fails any kind that
    registers without one, so new estimator families stay plannable.

    ``builder`` is a callable ``(eps, window_size, stream_length_hint)
    -> estimator`` that constructs a fresh instance for the engine;
    kinds registered without one can only be restored from state, never
    requested by name through :func:`build_estimator`.
    """
    if kind in _KINDS and not replace and _KINDS[kind] is not cls:
        raise SummaryError(f"estimator kind {kind!r} already registered "
                           f"to {_KINDS[kind].__name__}")
    _KINDS[kind] = cls
    if capabilities is not None:
        _CAPABILITIES[kind] = capabilities
    if builder is not None:
        _BUILDERS[kind] = builder


def default_kind_for(statistic: str) -> str:
    """The estimator kind a :class:`StreamMiner` builds by default."""
    try:
        return _DEFAULT_KINDS[statistic]
    except KeyError:
        raise SummaryError(
            f"no default estimator kind for statistic {statistic!r}; "
            f"known: {', '.join(sorted(_DEFAULT_KINDS))}") from None


def build_estimator(kind: str, *, eps: float,
                    window_size: int | None = None,
                    stream_length_hint: int | None = None):
    """Construct a fresh estimator of ``kind`` from engine parameters.

    The registered builder decides what the parameters mean for its
    family (DDSketch ignores the window; KLL sizes its compactors from
    ``eps``; count-min sizes width from ``eps``).  Raises
    :class:`SummaryError` for kinds without a registered builder (the
    building blocks, e.g. ``gk-summary``).
    """
    builder = _BUILDERS.get(kind)
    if builder is None:
        known = ", ".join(sorted(_BUILDERS))
        raise SummaryError(
            f"estimator kind {kind!r} has no registered builder; "
            f"buildable kinds: {known}")
    return builder(eps, window_size, stream_length_hint)


def registered_estimator_kinds() -> tuple[str, ...]:
    """Sorted checkpoint kinds currently restorable."""
    return tuple(sorted(_KINDS))


def estimator_capabilities(kind: str) -> EstimatorCapabilities:
    """The capability record declared for ``kind``."""
    caps = _CAPABILITIES.get(kind)
    if caps is None:
        raise SummaryError(
            f"estimator kind {kind!r} declares no capabilities; "
            f"declared: {', '.join(sorted(_CAPABILITIES))}")
    return caps


def registered_capabilities() -> dict[str, EstimatorCapabilities]:
    """Every declared capability record, keyed by kind (sorted)."""
    return {kind: _CAPABILITIES[kind] for kind in sorted(_CAPABILITIES)}


def estimator_from_state(state: dict):
    """Rebuild any registered estimator from its ``to_state`` output.

    Dispatches on ``state["kind"]`` — the one place restore code needs
    to know which classes exist.
    """
    kind = state.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise SummaryError(
            f"no estimator registered for state kind {kind!r}; "
            f"known: {', '.join(registered_estimator_kinds())}")
    return cls.from_state(state)
