"""The uniform estimator protocol and the checkpoint-kind registry.

Every summary structure the pipeline can drive — Greenwald-Khanna,
the exponential histogram of window summaries, lossy counting, the KMV
sketch, and the sliding-window estimators — speaks one interface:

``update_batch(sorted_window, histogram=None)``
    Absorb one ascending window.  Estimators that consume run-length
    histograms accept the one the pipeline's summarize stage already
    computed (and compute their own when fed directly).
``query(...)``
    The estimator's natural query (phi for quantiles, support for
    frequencies, nothing for distinct counts).
``error_bound()``
    The guarantee the estimator offers, as a fraction (deterministic
    eps, or a 2-sigma relative error for randomized sketches).
``to_state()`` / ``from_state(state)``
    Versioned JSON-serializable checkpointing.

The engine's merge stage and the checkpoint/restore code dispatch
through this protocol instead of special-casing each statistic; restore
resolves the concrete class from the state's ``"kind"`` tag via
:func:`estimator_from_state`.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from ..errors import SummaryError

__all__ = [
    "Estimator",
    "estimator_from_state",
    "register_estimator",
    "registered_estimator_kinds",
]


@runtime_checkable
class Estimator(Protocol):
    """Structural interface every pipeline estimator implements."""

    def update_batch(self, sorted_window, histogram=None) -> None:
        """Absorb one ascending window (histogram optional, pre-computed)."""
        ...

    def query(self, *args: Any, **kwargs: Any) -> Any:
        """Answer the estimator's natural query."""
        ...

    def error_bound(self) -> float:
        """The approximation guarantee, as a fraction."""
        ...

    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot."""
        ...


#: state ``"kind"`` tag -> estimator class (populated at import time by
#: each estimator module).
_KINDS: dict[str, type] = {}


def register_estimator(kind: str, cls: type, *, replace: bool = False) -> None:
    """Map a checkpoint ``kind`` tag to the class that restores it."""
    if kind in _KINDS and not replace and _KINDS[kind] is not cls:
        raise SummaryError(f"estimator kind {kind!r} already registered "
                           f"to {_KINDS[kind].__name__}")
    _KINDS[kind] = cls


def registered_estimator_kinds() -> tuple[str, ...]:
    """Sorted checkpoint kinds currently restorable."""
    return tuple(sorted(_KINDS))


def estimator_from_state(state: dict):
    """Rebuild any registered estimator from its ``to_state`` output.

    Dispatches on ``state["kind"]`` — the one place restore code needs
    to know which classes exist.
    """
    kind = state.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise SummaryError(
            f"no estimator registered for state kind {kind!r}; "
            f"known: {', '.join(registered_estimator_kinds())}")
    return cls.from_state(state)
