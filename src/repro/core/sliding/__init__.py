"""Sliding-window machinery (paper Sections 5.2 and 5.3)."""

from .basic_counting import DgimCounter, DgimSum
from .exponential_histogram import StreamingQuantiles
from .window_query import SlidingWindowFrequencies, SlidingWindowQuantiles

__all__ = [
    "DgimCounter",
    "DgimSum",
    "SlidingWindowFrequencies",
    "SlidingWindowQuantiles",
    "StreamingQuantiles",
]
