"""DGIM exponential histograms for basic counting (the paper's ref [13]).

Section 5.2: "Exponential histograms have been widely used for other
statistic computations over sliding windows such as sums [13]".  This is
that substrate — Datar, Gionis, Indyk & Motwani's structure for counting
the 1s (or summing bounded values) among the last ``W`` stream elements
using ``O((1/eps) log^2 W)`` bits.

Buckets hold power-of-two counts with arrival timestamps; at most
``k/2 + 1`` buckets of each size are kept (``k = ceil(1/eps)``), merging
the two oldest of a size when the bound is exceeded.  A count query sums
all live buckets minus half the oldest, giving relative error at most
``eps``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from ... import compiled
from ...errors import InvariantViolation, QueryError, SummaryError


@dataclass
class _Bucket:
    timestamp: int  # arrival index of the bucket's most recent 1
    size: int       # number of 1s merged into this bucket (power of two)


class DgimCounter:
    """Approximate count of 1s in a count-based sliding window.

    Parameters
    ----------
    window:
        Window width ``W`` in stream positions.
    eps:
        Relative counting error.

    Examples
    --------
    >>> from repro.core.sliding import DgimCounter
    >>> c = DgimCounter(window=100, eps=0.1)
    >>> for i in range(200):
    ...     c.update(True)
    >>> abs(c.estimate() - 100) <= 10
    True
    """

    def __init__(self, window: int, eps: float = 0.5):
        if window <= 0:
            raise SummaryError(f"window must be positive, got {window}")
        if not 0.0 < eps <= 1.0:
            raise SummaryError(f"eps must be in (0, 1], got {eps}")
        self.window = int(window)
        self.eps = float(eps)
        #: max buckets allowed per size before a merge.
        self.max_per_size = max(2, math.ceil(1.0 / eps) // 2 + 1)
        self.time = 0
        # Two bucket representations with identical semantics, chosen
        # once at construction: the historical deque of _Bucket objects
        # (newest at the left), or — when the compiled tier is active —
        # parallel timestamp/size arrays (oldest first, live range
        # ``[0, _live)``) updated by repro.compiled's cascade kernels.
        self._compiled = compiled.compiled_active()
        if self._compiled:
            self._ts = np.zeros(16, dtype=np.int64)
            self._sz = np.zeros(16, dtype=np.int64)
            self._live = 0
        else:
            self._buckets: deque[_Bucket] = deque()  # newest at the left

    def update(self, bit: bool | int) -> None:
        """Append one stream element (truthy = a 1)."""
        self.time += 1
        self._expire()
        if not bit:
            return
        self._append_one()

    def update_bits(self, bits) -> None:
        """Append a whole batch of stream elements at once.

        Semantically identical to calling :meth:`update` per element;
        in compiled mode the entire batch runs inside one kernel call,
        which is where the per-element Python overhead goes away.
        """
        if not self._compiled:
            for bit in bits:
                self.update(bit)
            return
        arr = np.ascontiguousarray(
            np.asarray(bits).ravel() != 0).astype(np.int64)
        self._reserve(int(arr.sum()))
        self._live, self.time = compiled.dgim_update_bits(
            self._ts, self._sz, self._live, self.time, self.window,
            self.max_per_size, arr)

    def _reserve(self, extra: int) -> None:
        """Grow the bucket arrays so ``extra`` appends cannot overflow."""
        needed = self._live + max(1, extra)
        if needed > self._ts.size:
            capacity = max(needed, 2 * self._ts.size)
            self._ts = np.concatenate(
                [self._ts[:self._live],
                 np.zeros(capacity - self._live, dtype=np.int64)])
            self._sz = np.concatenate(
                [self._sz[:self._live],
                 np.zeros(capacity - self._live, dtype=np.int64)])

    def _expire(self) -> None:
        if self._compiled:
            self._live = compiled.dgim_expire(
                self._ts, self._sz, self._live, self.time, self.window)
            return
        while self._buckets and \
                self._buckets[-1].timestamp <= self.time - self.window:
            self._buckets.pop()

    def _append_one(self) -> None:
        """Add a size-1 bucket at the current time and cascade merges."""
        if self._compiled:
            self._reserve(1)
            self._live = compiled.dgim_append(
                self._ts, self._sz, self._live, self.time,
                self.max_per_size)
            return
        self._buckets.appendleft(_Bucket(self.time, 1))
        self._cascade_merges()

    def _cascade_merges(self) -> None:
        """Merge oldest pairs whenever a size exceeds its bucket budget."""
        size = 1
        while True:
            indices = [i for i, b in enumerate(self._buckets)
                       if b.size == size]
            if len(indices) <= self.max_per_size:
                return
            # Merge the two oldest buckets of this size.
            second_oldest, oldest = indices[-2], indices[-1]
            merged = _Bucket(self._buckets[second_oldest].timestamp, size * 2)
            buckets = list(self._buckets)
            del buckets[oldest]
            buckets[second_oldest] = merged
            self._buckets = deque(buckets)
            size *= 2

    def _bucket_pairs(self) -> list[tuple[int, int]]:
        """Live ``(timestamp, size)`` pairs, newest first."""
        if self._compiled:
            live = self._live
            return [(int(self._ts[i]), int(self._sz[i]))
                    for i in range(live - 1, -1, -1)]
        return [(b.timestamp, b.size) for b in self._buckets]

    def estimate(self) -> int:
        """Approximate number of 1s among the last ``window`` elements."""
        self._expire()
        pairs = self._bucket_pairs()
        if not pairs:
            return 0
        total = sum(size for _, size in pairs)
        return total - pairs[-1][1] // 2

    def exact_upper_bound(self) -> int:
        """A certain upper bound on the true count (all live buckets)."""
        self._expire()
        return sum(size for _, size in self._bucket_pairs())

    def error_bound(self) -> float:
        """Deterministic relative counting error."""
        return self.eps

    def __len__(self) -> int:
        """Number of buckets currently held."""
        if self._compiled:
            return self._live
        return len(self._buckets)

    def check_invariant(self) -> None:
        """Validate bucket ordering, sizes, and per-size budgets."""
        previous_ts = math.inf
        pairs = self._bucket_pairs()
        for timestamp, size in pairs:
            if size & (size - 1):
                raise InvariantViolation(
                    f"bucket size {size} not a power of two")
            if timestamp > previous_ts:
                raise InvariantViolation("buckets out of timestamp order")
            previous_ts = timestamp
        sizes: dict[int, int] = {}
        for _, size in pairs:
            sizes[size] = sizes.get(size, 0) + 1
        for size, count in sizes.items():
            if count > self.max_per_size + 1:
                raise InvariantViolation(
                    f"{count} buckets of size {size} exceeds budget "
                    f"{self.max_per_size}")


class DgimSum:
    """Approximate sum of bounded non-negative integers over a window.

    The standard reduction (DGIM Section 5): a value ``v`` in
    ``[0, max_value]`` is treated as ``v`` separate 1s arriving at the
    same position.
    """

    def __init__(self, window: int, max_value: int, eps: float = 0.5):
        if max_value <= 0:
            raise SummaryError(f"max_value must be positive, got {max_value}")
        self.max_value = int(max_value)
        self._counter = DgimCounter(window, eps)

    def update(self, value: int) -> None:
        """Append one value in ``[0, max_value]``."""
        value = int(value)
        if not 0 <= value <= self.max_value:
            raise QueryError(
                f"value {value} outside [0, {self.max_value}]")
        # All v ones share the arrival position: advance time once.
        self._counter.time += 1
        self._counter._expire()
        for _ in range(value):
            self._counter._append_one()

    def estimate(self) -> int:
        """Approximate sum over the last ``window`` positions."""
        return self._counter.estimate()
