"""Epsilon-approximate queries over sliding windows (Section 5.3).

"We have applied our deterministic frequency and quantile estimation
algorithms for performing eps-approximate queries over sliding windows.
... These windows could be fixed or variable-sized width."

Both estimators here follow the same sub-window decomposition the paper
uses for its window-based pipeline: the stream is cut into sub-windows of
``w0 = max(1, floor(eps * W / 2))`` elements; each sub-window is sorted
(on the GPU in the engine) and reduced to a compact per-sub-window
summary; a ring buffer retains exactly the sub-windows intersecting the
last ``W`` positions.

Error accounting for a query over the last ``W'`` elements
(``W' = W`` fixed, or any ``W' <= W`` when ``variable=True``):

* each retained sub-window summary is (eps/2)-approximate over its own
  elements, so the merged summary errs by at most ``(eps/2) * W'``;
* the oldest sub-window may straddle the window boundary, contributing
  at most ``w0 <= (eps/2) * W`` misattributed elements;

hence the total rank/frequency error is at most ``eps * W`` — the same
deterministic guarantee as the entire-history algorithms, using
``O((1/eps) * B)`` sub-window summaries of ``B + 1`` entries each.
"""

from __future__ import annotations

import math
from collections import Counter, deque

import numpy as np

from ...errors import QueryError, SummaryError
from ..histograms import WindowHistogram, histogram_from_sorted
from ..quantiles.window import QuantileSummary


def _subwindow_size(eps: float, window: int) -> int:
    return max(1, int(math.floor(eps * window / 2.0)))


class SlidingWindowQuantiles:
    """Quantiles over the last ``window`` elements, fixed or variable width.

    Parameters
    ----------
    eps:
        Rank-error fraction relative to the queried window width.
    window:
        Maximum (and default) window width ``W``.
    variable:
        When true, :meth:`quantile` accepts any width up to ``W``.
    prune_budget:
        Entries kept per sub-window summary; defaults to ``ceil(2/eps)``
        so pruning costs at most ``eps/4`` additional error (folded into
        the ``eps/2`` sub-window budget by sampling at ``eps/4``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.sliding import SlidingWindowQuantiles
    >>> sw = SlidingWindowQuantiles(eps=0.1, window=1000)
    >>> sw.extend(np.arange(5000, dtype=np.float32))
    >>> 3890 <= sw.quantile(0.5) <= 4610
    True
    """

    def __init__(self, eps: float, window: int, variable: bool = False,
                 prune_budget: int | None = None):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        if window <= 0:
            raise SummaryError(f"window must be positive, got {window}")
        self.eps = float(eps)
        self.window = int(window)
        self.variable = bool(variable)
        self.subwindow = _subwindow_size(eps, window)
        self.prune_budget = (prune_budget if prune_budget is not None
                             else max(4, math.ceil(2.0 / eps)))
        self.count = 0
        self._summaries: deque[QuantileSummary] = deque()
        self._buffer = np.empty(0, dtype=np.float32)
        # Cache of the last merged suffix, keyed by (generation, count of
        # summaries merged); repeated quantile() calls between inserts
        # are common (one per phi) and the merge is the expensive part.
        self._generation = 0
        self._merge_cache: dict[int, QuantileSummary] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def extend(self, values: np.ndarray | list[float]) -> None:
        """Feed stream elements in arrival order."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        data = np.concatenate([self._buffer, arr]) if self._buffer.size else arr
        w0 = self.subwindow
        full = (data.size // w0) * w0
        for start in range(0, full, w0):
            self.add_sorted_subwindow(np.sort(data[start:start + w0]))
        self._buffer = data[full:].copy()

    def add_sorted_subwindow(self, sorted_subwindow: np.ndarray) -> None:
        """Insert one complete, ascending sub-window (GPU-sorted upstream)."""
        arr = np.asarray(sorted_subwindow).ravel()
        if arr.size != self.subwindow:
            raise SummaryError(
                f"sub-window must hold exactly {self.subwindow} values, "
                f"got {arr.size}")
        # Sample at eps/4 and prune: total sub-window error stays <= eps/2.
        summary = QuantileSummary.from_sorted(arr, self.eps / 4.0)
        summary = summary.prune(self.prune_budget)
        self._summaries.append(summary)
        self.count += int(arr.size)
        self._generation += 1
        self._merge_cache.clear()
        self._expire()

    def _expire(self) -> None:
        capacity = math.ceil(self.window / self.subwindow) + 1
        while len(self._summaries) > capacity:
            self._summaries.popleft()

    # ------------------------------------------------------------------
    # the uniform Estimator protocol
    # ------------------------------------------------------------------
    def update_batch(self, sorted_window: np.ndarray,
                     histogram: WindowHistogram | None = None) -> None:
        """Protocol entry point: absorb one ascending sub-window."""
        self.add_sorted_subwindow(sorted_window)

    def query(self, phi: float, width: int | None = None) -> float:
        """Protocol query: the phi-quantile of the sliding window."""
        return self.quantile(phi, width)

    def error_bound(self) -> float:
        """Deterministic rank-error fraction over the queried width."""
        return self.eps

    @property
    def processed(self) -> int:
        """Elements absorbed into completed sub-windows."""
        return self.count

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _covering(self, width: int) -> list[QuantileSummary]:
        needed = math.ceil(width / self.subwindow)
        if needed > len(self._summaries):
            needed = len(self._summaries)
        return list(self._summaries)[-needed:] if needed else []

    def quantile(self, phi: float, width: int | None = None) -> float:
        """The phi-quantile of the last ``width`` elements.

        ``width`` defaults to the configured window; narrower widths
        require ``variable=True``.  The pending (unsummarised) buffer is
        not consulted — queries reflect completed sub-windows, matching
        the window-based processing model.
        """
        if not 0.0 <= phi <= 1.0:
            raise QueryError(f"phi must be in [0, 1], got {phi}")
        width = self.window if width is None else int(width)
        if width <= 0 or width > self.window:
            raise QueryError(
                f"width must be in [1, {self.window}], got {width}")
        if width != self.window and not self.variable:
            raise QueryError(
                "variable-width queries require variable=True")
        summaries = self._covering(width)
        if not summaries:
            raise QueryError("no complete sub-window ingested yet")
        merged = self._merge_cache.get(len(summaries))
        if merged is None:
            merged = QuantileSummary.merge_all(summaries)
            self._merge_cache[len(summaries)] = merged
        return merged.quantile(phi)

    @property
    def num_subwindows(self) -> int:
        """Sub-window summaries currently retained."""
        return len(self._summaries)

    def space(self) -> int:
        """Total entries across retained summaries."""
        return sum(len(s) for s in self._summaries)


class SlidingWindowFrequencies:
    """Frequent items over the last ``window`` elements.

    Same sub-window ring as :class:`SlidingWindowQuantiles`, holding one
    truncated histogram per sub-window: values occurring at least
    ``eps/2 * w0`` times in their sub-window keep exact counts; the long
    tail is dropped, costing at most ``eps/2`` of each sub-window — so a
    window estimate undercounts by at most ``eps * W'`` and never
    overcounts (beyond the one boundary sub-window, bounded by ``w0``).
    """

    def __init__(self, eps: float, window: int, variable: bool = False):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        if window <= 0:
            raise SummaryError(f"window must be positive, got {window}")
        self.eps = float(eps)
        self.window = int(window)
        self.variable = bool(variable)
        self.subwindow = _subwindow_size(eps, window)
        self.count = 0
        self._histograms: deque[dict[float, int]] = deque()
        self._buffer = np.empty(0, dtype=np.float32)

    def extend(self, values: np.ndarray | list[float]) -> None:
        """Feed stream elements in arrival order."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        data = np.concatenate([self._buffer, arr]) if self._buffer.size else arr
        w0 = self.subwindow
        full = (data.size // w0) * w0
        for start in range(0, full, w0):
            self.add_histogram(
                histogram_from_sorted(np.sort(data[start:start + w0])))
        self._buffer = data[full:].copy()

    def add_histogram(self, histogram: WindowHistogram) -> None:
        """Insert one complete sub-window histogram (GPU-sorted upstream)."""
        if histogram.total != self.subwindow:
            raise SummaryError(
                f"sub-window histogram must cover exactly {self.subwindow} "
                f"values, got {histogram.total}")
        keep_threshold = self.eps / 2.0 * self.subwindow
        kept = {float(v): int(c) for v, c in histogram
                if c >= keep_threshold}
        self._histograms.append(kept)
        self.count += histogram.total
        capacity = math.ceil(self.window / self.subwindow) + 1
        while len(self._histograms) > capacity:
            self._histograms.popleft()

    # ------------------------------------------------------------------
    # the uniform Estimator protocol
    # ------------------------------------------------------------------
    def update_batch(self, sorted_window: np.ndarray,
                     histogram: WindowHistogram | None = None) -> None:
        """Protocol entry point: absorb one sub-window histogram.

        Accepts the run-length histogram from the pipeline's summarize
        stage, or derives it from a bare ascending sub-window.
        """
        if histogram is None:
            histogram = histogram_from_sorted(
                np.asarray(sorted_window).ravel())
        self.add_histogram(histogram)

    def query(self, support: float,
              width: int | None = None) -> list[tuple[float, int]]:
        """Protocol query: heavy hitters of the sliding window."""
        return self.frequent_items(support, width)

    def error_bound(self) -> float:
        """Deterministic undercount fraction over the queried width."""
        return self.eps

    @property
    def processed(self) -> int:
        """Elements absorbed into completed sub-windows."""
        return self.count

    def _covering(self, width: int) -> list[dict[float, int]]:
        needed = min(math.ceil(width / self.subwindow), len(self._histograms))
        return list(self._histograms)[-needed:] if needed else []

    def estimate(self, value: float, width: int | None = None) -> int:
        """Estimated occurrences of ``value`` in the last ``width`` elements."""
        width = self.window if width is None else int(width)
        key = float(np.float32(value))
        return sum(h.get(key, 0) for h in self._covering(width))

    def frequent_items(self, support: float,
                       width: int | None = None) -> list[tuple[float, int]]:
        """Values with estimated count >= ``(support - eps) * width``."""
        if not self.eps <= support <= 1.0:
            raise QueryError(
                f"support must be in [{self.eps}, 1], got {support}")
        width = self.window if width is None else int(width)
        if width <= 0 or width > self.window:
            raise QueryError(
                f"width must be in [1, {self.window}], got {width}")
        if width != self.window and not self.variable:
            raise QueryError("variable-width queries require variable=True")
        totals: Counter[float] = Counter()
        for histogram in self._covering(width):
            totals.update(histogram)
        covered = min(self.count, width)
        threshold = (support - self.eps) * covered
        result = [(value, count) for value, count in totals.items()
                  if count >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        return result

    @property
    def num_subwindows(self) -> int:
        """Sub-window histograms currently retained."""
        return len(self._histograms)

    def space(self) -> int:
        """Total histogram entries retained."""
        return sum(len(h) for h in self._histograms)
