"""The paper's exponential histogram of quantile summaries (Section 5.2).

"We extend the sensor network model in [21] to a stream model by
maintaining the summary structure as an exponential histogram.  The
exponential histogram has log N buckets and each bucket is associated
with a bucket id. ... If the bucket id is b, the error is set to
``eps/2 + eps*b / (2 (log N + 1))``.  Initially, we set all the buckets
as empty.  Next, we compute an eps/2-approximate summary for each new
window of elements and assign it a bucket id of one and add it to the
exponential histogram.  If there are two buckets with same bucket id, we
combine the two into one larger bucket and increment their bucket id by
one.  The combine operation involves a merge and prune operation
performed using an error parameter for (bucket id + 1).  These
operations are repeatedly performed ... till there are no two buckets
with the same bucket id."

A bucket of id ``b`` covers ``2^(b-1)`` windows, so after ``N`` elements
at most ``log(N/W) + 1`` buckets exist and every bucket's error is at
most ``eps/2 + eps/2 = eps``.  Querying merges all buckets losslessly
(error = max), so the answer is eps-approximate over the entire history.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import InvariantViolation, QueryError, SummaryError
from ..estimators import EstimatorCapabilities, register_estimator
from ..quantiles.window import QuantileSummary


class StreamingQuantiles:
    """Entire-past-history eps-approximate quantiles via window summaries.

    Parameters
    ----------
    eps:
        Target rank error over the whole stream.
    window_size:
        Elements per window (each window is sorted — on the GPU in the
        engine — and summarised before entering the histogram).
    stream_length_hint:
        The paper's algorithm assumes "a large data stream of size N,
        where N is known a priori"; the hint sizes the per-combine error
        schedule.  If the stream outgrows the hint the schedule is
        re-derived for the doubled horizon (standard doubling trick) —
        summaries already combined keep their recorded error, so the
        overall guarantee degrades gracefully rather than breaking.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.sliding import StreamingQuantiles
    >>> sq = StreamingQuantiles(eps=0.05, window_size=100)
    >>> sq.add_sorted_window(np.sort(np.arange(100, dtype=np.float32)))
    >>> sq.quantile(0.5)
    50.0
    """

    def __init__(self, eps: float, window_size: int,
                 stream_length_hint: int = 100_000_000):
        if not 0.0 < eps < 1.0:
            raise SummaryError(f"eps must be in (0, 1), got {eps}")
        if window_size <= 0:
            raise SummaryError(
                f"window_size must be positive, got {window_size}")
        self.eps = float(eps)
        self.window_size = int(window_size)
        self.horizon = max(int(stream_length_hint), window_size)
        self.count = 0
        #: bucket id -> summary (at most one per id).
        self._buckets: dict[int, QuantileSummary] = {}

    # ------------------------------------------------------------------
    # error schedule
    # ------------------------------------------------------------------
    @property
    def _levels(self) -> int:
        """log N + 1 in the paper's error formula."""
        return max(1, math.ceil(math.log2(self.horizon / self.window_size))
                   + 1)

    def bucket_error(self, bucket_id: int) -> float:
        """The error budget of bucket ``b``: eps/2 + eps*b / (2(logN+1))."""
        return self.eps / 2.0 + self.eps * bucket_id / (2.0 * self._levels)

    def _prune_budget(self) -> int:
        """Prune budget B with 1/(2B) = eps / (2 (log N + 1))."""
        return max(1, math.ceil(self._levels / self.eps))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sorted_window(self, sorted_window: np.ndarray) -> None:
        """Insert one ascending window (pre-sorted, e.g. on the GPU)."""
        arr = np.asarray(sorted_window).ravel()
        if arr.size == 0:
            return
        if arr.size > self.window_size:
            raise SummaryError(
                f"window of {arr.size} exceeds window_size {self.window_size}")
        self.count += int(arr.size)
        while self.count > self.horizon:
            self.horizon *= 2
        summary = QuantileSummary.from_sorted(arr, self.eps / 2.0)
        bucket_id = 1
        while bucket_id in self._buckets:
            other = self._buckets.pop(bucket_id)
            summary = summary.merge(other).prune(self._prune_budget())
            bucket_id += 1
        self._buckets[bucket_id] = summary

    def add_window(self, window: np.ndarray) -> None:
        """Convenience wrapper: sorts on the CPU then inserts."""
        self.add_sorted_window(np.sort(np.asarray(window).ravel()))

    def merge(self, other: "StreamingQuantiles") -> "StreamingQuantiles":
        """A new histogram answering for both streams' entire histories.

        Bucket summaries are immutable, so the merge is pure: every
        bucket from both sides joins one lossless
        :meth:`QuantileSummary.merge_all` (error = max of parts, each
        at most its bucket budget) followed by a single prune.  The
        result lands one bucket id above the deepest part, whose budget
        ``eps/2 + eps*(b+1)/(2L)`` covers the parts' budgets plus the
        prune's ``eps/(2L)``, so the merged rank guarantee stays
        ``eps * (N1 + N2)``.  Requires equal ``eps`` and window size
        (the error schedule is parameterized by both).
        """
        if not isinstance(other, StreamingQuantiles):
            raise SummaryError(
                f"cannot merge StreamingQuantiles with "
                f"{type(other).__name__}")
        if other.eps != self.eps or other.window_size != self.window_size:
            raise SummaryError(
                f"merge needs matching schedules: eps {self.eps} vs "
                f"{other.eps}, window {self.window_size} vs "
                f"{other.window_size}")
        merged = StreamingQuantiles(
            self.eps, self.window_size,
            max(self.horizon, other.horizon))
        merged.count = self.count + other.count
        while merged.count > merged.horizon:
            merged.horizon *= 2
        parts = list(self._buckets.items()) + list(other._buckets.items())
        if parts:
            summary = QuantileSummary.merge_all([s for _, s in parts])
            bucket_id = max(bucket for bucket, _ in parts)
            if len(parts) > 1:
                summary = summary.prune(merged._prune_budget())
                bucket_id += 1
            merged._buckets = {bucket_id: summary}
        return merged

    # ------------------------------------------------------------------
    # the uniform Estimator protocol
    # ------------------------------------------------------------------
    def update_batch(self, sorted_window: np.ndarray,
                     histogram=None) -> None:
        """Protocol entry point: absorb one ascending window."""
        self.add_sorted_window(sorted_window)

    def query(self, phi: float) -> float:
        """Protocol query: the phi-quantile over the whole history."""
        return self.quantile(phi)

    def error_bound(self) -> float:
        """Deterministic rank-error fraction over the whole stream."""
        return self.eps

    @property
    def processed(self) -> int:
        """Elements fully absorbed into the histogram."""
        return self.count

    # ------------------------------------------------------------------
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot of the whole histogram.

        Captures the error schedule (eps, window size, current horizon)
        and every live bucket, so :meth:`from_state` reproduces an
        estimator that answers every query identically and continues
        ingesting with the same combine schedule.
        """
        return {
            "version": 1,
            "kind": "streaming-quantiles",
            "eps": self.eps,
            "window_size": self.window_size,
            "horizon": self.horizon,
            "count": self.count,
            "buckets": {str(bucket_id): summary.to_state()
                        for bucket_id, summary in self._buckets.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingQuantiles":
        """Rebuild an estimator from :meth:`to_state` output."""
        if state.get("kind") != "streaming-quantiles" or \
                state.get("version") != 1:
            raise SummaryError(
                f"not a v1 streaming-quantiles state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        estimator = cls(float(state["eps"]), int(state["window_size"]),
                        int(state["horizon"]))
        estimator.horizon = int(state["horizon"])
        estimator.count = int(state["count"])
        estimator._buckets = {
            int(bucket_id): QuantileSummary.from_state(summary_state)
            for bucket_id, summary_state in state["buckets"].items()}
        estimator.check_invariant()
        return estimator

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _combined(self) -> QuantileSummary:
        if not self._buckets:
            raise QueryError("no data ingested yet")
        return QuantileSummary.merge_all(list(self._buckets.values()))

    def summaries(self) -> list[QuantileSummary]:
        """The live bucket summaries (each with error at most ``eps``).

        Summaries are immutable, so callers — notably the sharded
        service's merge-on-query layer — may combine them freely with
        :meth:`QuantileSummary.merge_all` without copying.
        """
        return list(self._buckets.values())

    def quantile(self, phi: float) -> float:
        """The phi-quantile of the entire history, within ``eps * N``."""
        return self._combined().quantile(phi)

    def query_rank(self, rank: int) -> float:
        """Value whose true rank is within ``eps * N`` of ``rank``."""
        return self._combined().query_rank(rank)

    @property
    def num_buckets(self) -> int:
        """Live buckets (at most ``log2(N / W) + 1``)."""
        return len(self._buckets)

    def space(self) -> int:
        """Total summary entries held across all buckets."""
        return sum(len(s) for s in self._buckets.values())

    def check_invariant(self) -> None:
        """Validate bucket-id uniqueness and per-bucket error budgets."""
        for bucket_id, summary in self._buckets.items():
            if bucket_id < 1:
                raise InvariantViolation(f"invalid bucket id {bucket_id}")
            budget = self.bucket_error(bucket_id) + 1e-9
            if summary.error > budget:
                raise InvariantViolation(
                    f"bucket {bucket_id}: error {summary.error:.6f} exceeds "
                    f"budget {budget:.6f}")
        total = sum(s.count for s in self._buckets.values())
        if total != self.count:
            raise InvariantViolation(
                f"bucket populations sum to {total}, expected {self.count}")


def _build_streaming_quantiles(eps, window_size, stream_length_hint):
    window = int(window_size) if window_size else max(
        1, math.ceil(1.0 / eps))
    hint = int(stream_length_hint) if stream_length_hint else 100_000_000
    return StreamingQuantiles(eps, window, hint)


register_estimator(
    "streaming-quantiles", StreamingQuantiles,
    # The GK-04 history-mode quantile cascade: window summaries merge
    # up the exponential histogram (merge per element) and prune back
    # to ~1/eps entries per level (compress).
    capabilities=EstimatorCapabilities(
        statistic="quantile", metrics=("quantile",), driver="quantile",
        merge_cycles=40.0, compress_cycles=10.0,
        entries_per_inverse_eps=2.0, bound_type="rank"),
    builder=_build_streaming_quantiles)
