"""The paper's primary contribution: epsilon-approximate stream mining.

Quantile estimation (Greenwald-Khanna summaries in an exponential
histogram), frequency estimation (Manku-Motwani lossy counting plus
baselines), sliding-window variants of both, and the
:class:`StreamMiner` engine that drives them off GPU-sorted windows.
"""

from .aggregates import CorrelatedSum
from .distinct import (FlajoletMartin, KMinValues, WindowedDistinctCounter,
                       hash_values)
from .engine import EngineReport, StreamMiner
from .frequencies import (CountMinSketch, HierarchicalHeavyHitters,
                          LossyCounting, MisraGries, SpaceSaving,
                          StickySampling)
from .histograms import (EquiDepthHistogram, HistogramBucket,
                         VOptimalHistogram, WindowHistogram,
                         histogram_from_sorted)
from .quantiles import (DDSketch, GKSummary, KLLSketch, QuantileSummary,
                        RankedValue, SensorNode, TDigest, aggregate)
from .sliding import (DgimCounter, DgimSum, SlidingWindowFrequencies,
                      SlidingWindowQuantiles, StreamingQuantiles)

__all__ = [
    "CorrelatedSum",
    "CountMinSketch",
    "DDSketch",
    "DgimCounter",
    "DgimSum",
    "EquiDepthHistogram",
    "FlajoletMartin",
    "EngineReport",
    "GKSummary",
    "KLLSketch",
    "HierarchicalHeavyHitters",
    "HistogramBucket",
    "KMinValues",
    "LossyCounting",
    "MisraGries",
    "QuantileSummary",
    "RankedValue",
    "SensorNode",
    "SlidingWindowFrequencies",
    "SlidingWindowQuantiles",
    "SpaceSaving",
    "StickySampling",
    "StreamMiner",
    "StreamingQuantiles",
    "TDigest",
    "VOptimalHistogram",
    "WindowHistogram",
    "WindowedDistinctCounter",
    "aggregate",
    "hash_values",
    "histogram_from_sorted",
]
