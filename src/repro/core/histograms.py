"""Histogram structures: per-window run-length histograms and stream-
maintained equi-depth histograms.

Two layers, both rooted in the paper:

**Window histograms** (Section 3.2, operation 1).  "For each window, the
elements are ordered by sorting them and a histogram is computed.  A
histogram data structure holds each element value in the window and its
frequency."  Sorting is delegated to a pluggable backend (the GPU sorter
or a CPU baseline); the run-length extraction on the already-sorted
array is linear and stays on the CPU.

**Equi-depth histograms** (Section 1): "The quantile and frequency
estimation algorithms have also been used as subroutines to solve more
complex problems related to histogram maintenance" [24].  An equi-depth
(equi-height) histogram — the structure databases use for selectivity
estimation — maintained incrementally from the streaming quantile
machinery.  With ``B`` buckets the boundaries sit at the
``i/B``-quantiles, so every bucket holds ~``N/B`` elements.  Bucket
boundaries come straight from the epsilon-approximate quantile summary;
each boundary is off by at most ``eps * N`` ranks, so a bucket's true
depth is within ``2 eps N`` of ``N/B`` and range-selectivity estimates
carry the same additive guarantee.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..errors import QueryError, SummaryError


@dataclass(frozen=True)
class WindowHistogram:
    """The (value, frequency) pairs of one window, in ascending value order."""

    values: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.counts.shape or self.values.ndim != 1:
            raise SummaryError(
                f"histogram arrays must be matching 1-D, got "
                f"{self.values.shape} / {self.counts.shape}")

    @property
    def total(self) -> int:
        """Number of stream elements the histogram covers."""
        return int(self.counts.sum())

    @property
    def distinct(self) -> int:
        """Number of distinct values."""
        return int(self.values.size)

    def __iter__(self):
        return zip(self.values.tolist(), self.counts.tolist())


def histogram_from_sorted(sorted_values: np.ndarray) -> WindowHistogram:
    """Run-length encode an ascending array into a histogram.

    Raises :class:`SummaryError` if the input is not ascending — the
    whole point of the paper's pipeline is that the expensive ordering
    step already happened (on the GPU).
    """
    arr = np.asarray(sorted_values).ravel()
    if arr.size == 0:
        return WindowHistogram(np.empty(0, dtype=arr.dtype),
                               np.empty(0, dtype=np.int64))
    if np.any(arr[1:] < arr[:-1]):
        raise SummaryError("histogram_from_sorted requires ascending input")
    boundaries = np.flatnonzero(arr[1:] != arr[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [arr.size]))
    return WindowHistogram(arr[starts].copy(), (ends - starts).astype(np.int64))


@dataclass(frozen=True)
class HistogramBucket:
    """One equi-depth bucket: value range and its (approximate) depth."""

    low: float
    high: float
    depth: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise SummaryError(
                f"bucket range inverted: [{self.low}, {self.high}]")


class EquiDepthHistogram:
    """An equi-depth histogram maintained from a data stream.

    Parameters
    ----------
    buckets:
        Number of buckets ``B``.
    eps:
        Quantile-summary error; selectivity estimates are within
        ``~2 * eps`` (plus one bucket's worth of interpolation error).
    window_size:
        Window width of the underlying quantile pipeline.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.histograms import EquiDepthHistogram
    >>> h = EquiDepthHistogram(buckets=10, eps=0.01, window_size=1000)
    >>> h.update(np.random.default_rng(0).random(20_000).astype(np.float32))
    >>> bool(0.35 < h.selectivity(0.2, 0.6) < 0.45)
    True
    """

    def __init__(self, buckets: int = 20, eps: float = 0.01,
                 window_size: int = 4096,
                 stream_length_hint: int = 100_000_000):
        # imported here, not at module level: the sliding package's
        # window_query module needs WindowHistogram from this module, so
        # a top-level import either way would be circular.
        from .sliding.exponential_histogram import StreamingQuantiles
        if buckets < 1:
            raise SummaryError(f"buckets must be >= 1, got {buckets}")
        self.num_buckets = int(buckets)
        self.eps = float(eps)
        self._quantiles = StreamingQuantiles(eps, window_size,
                                             stream_length_hint)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def update(self, values: np.ndarray | list[float]) -> None:
        """Feed stream elements (windowed through the quantile pipeline)."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        w = self._quantiles.window_size
        for start in range(0, arr.size, w):
            self._quantiles.add_window(arr[start:start + w])

    def add_sorted_window(self, sorted_window: np.ndarray) -> None:
        """Feed one pre-sorted window (the GPU path)."""
        self._quantiles.add_sorted_window(sorted_window)

    @property
    def count(self) -> int:
        """Stream elements summarised so far."""
        return self._quantiles.count

    # ------------------------------------------------------------------
    # histogram construction & queries
    # ------------------------------------------------------------------
    def boundaries(self) -> list[float]:
        """The ``B + 1`` bucket boundaries (approximate quantiles)."""
        if self.count == 0:
            raise QueryError("no data ingested yet")
        return [self._quantiles.quantile(i / self.num_buckets)
                for i in range(self.num_buckets + 1)]

    def histogram(self) -> list[HistogramBucket]:
        """Materialise the current buckets.

        Each bucket's nominal depth is ``N / B``; consecutive equal
        boundaries (heavy values spanning several quantiles) are merged
        into one deeper bucket.
        """
        bounds = self.boundaries()
        nominal = self.count / self.num_buckets
        merged: list[HistogramBucket] = []
        depth = 0.0
        low = bounds[0]
        for i in range(1, len(bounds)):
            depth += nominal
            if bounds[i] > low or i == len(bounds) - 1:
                merged.append(HistogramBucket(low, bounds[i], depth))
                low = bounds[i]
                depth = 0.0
        return merged

    def selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of elements with ``low <= value <= high``.

        Uses the bucket boundaries with linear interpolation inside the
        partially-covered end buckets — the textbook equi-depth
        selectivity estimator.
        """
        if high < low:
            raise QueryError(f"inverted range [{low}, {high}]")
        if self.count == 0:
            raise QueryError("no data ingested yet")
        bounds = self.boundaries()
        return max(0.0, self._cdf(bounds, high) - self._cdf(bounds, low))

    def _cdf(self, bounds: list[float], value: float) -> float:
        if value < bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        # rightmost boundary <= value; ties resolved to the upper edge of
        # a run of equal boundaries (heavy single values).
        idx = bisect_right(bounds, value) - 1
        lower_fraction = idx / self.num_buckets
        span = bounds[idx + 1] - bounds[idx]
        if span <= 0:
            return lower_fraction
        within = (value - bounds[idx]) / span
        return lower_fraction + within / self.num_buckets

    def estimated_rows(self, low: float, high: float) -> float:
        """Estimated element count in the range (selectivity * N)."""
        return self.selectivity(low, high) * self.count


class VOptimalHistogram:
    """Static V-optimal histogram via dynamic programming.

    The quality yardstick of the histogram literature the paper cites
    [3, 24]: choose ``B`` bucket boundaries minimising the total
    within-bucket variance of the frequency distribution.  Quadratic DP
    over a (value, frequency) distribution — used by tests and examples
    to show how close the streaming equi-depth histogram gets on skewed
    data, not for online maintenance.
    """

    def __init__(self, buckets: int):
        if buckets < 1:
            raise SummaryError(f"buckets must be >= 1, got {buckets}")
        self.num_buckets = int(buckets)

    def fit(self, frequencies: np.ndarray) -> tuple[list[int], float]:
        """Optimal bucketisation of ``frequencies``.

        Returns ``(boundaries, sse)`` where boundaries are start indices
        of each bucket and ``sse`` is the minimal total squared error.
        """
        freqs = np.asarray(frequencies, dtype=np.float64).ravel()
        n = freqs.size
        if n == 0:
            raise SummaryError("empty frequency vector")
        buckets = min(self.num_buckets, n)
        prefix = np.concatenate(([0.0], np.cumsum(freqs)))
        prefix_sq = np.concatenate(([0.0], np.cumsum(freqs ** 2)))

        def sse(i: int, j: int) -> float:
            """Squared error of one bucket covering freqs[i:j]."""
            total = prefix[j] - prefix[i]
            total_sq = prefix_sq[j] - prefix_sq[i]
            return total_sq - total * total / (j - i)

        INF = math.inf
        cost = np.full((buckets + 1, n + 1), INF)
        back = np.zeros((buckets + 1, n + 1), dtype=np.intp)
        cost[0, 0] = 0.0
        for b in range(1, buckets + 1):
            for j in range(b, n + 1):
                best, best_i = INF, b - 1
                for i in range(b - 1, j):
                    candidate = cost[b - 1, i] + sse(i, j)
                    if candidate < best:
                        best, best_i = candidate, i
                cost[b, j] = best
                back[b, j] = best_i
        boundaries: list[int] = []
        j = n
        for b in range(buckets, 0, -1):
            i = int(back[b, j])
            boundaries.append(i)
            j = i
        boundaries.reverse()
        return boundaries, float(cost[buckets, n])
