"""K-Minimum-Values distinct-count sketch.

Section 1 of the paper lists "computing the number of distinct items,
quantiles and frequencies" as the fundamental data-stream statistics;
the paper's own pipeline covers the latter two, and its sorting
machinery is exactly what a KMV sketch needs: hash every element, keep
the ``k`` smallest hash values — which, per window, is the head of the
GPU-sorted order.

Estimation: if ``h_(k)`` is the k-th smallest of ``d`` distinct uniform
hashes in [0, 1), then ``E[h_(k)] = k / (d + 1)``, giving the unbiased
estimator ``d ≈ (k - 1) / h_(k)``.  Relative standard error is about
``1 / sqrt(k - 2)``.  Sketches over different substreams merge by
keeping the k smallest of the union — used by the engine to combine
per-window heads.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ...errors import QueryError, SummaryError
from ..estimators import EstimatorCapabilities, register_estimator

#: 64-bit mixing constants (splitmix64) for the value hash.
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def hash_values(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Hash float32 values to uniform doubles in [0, 1) (vectorised).

    Uses the raw IEEE bit pattern plus a splitmix64 finaliser, so equal
    stream values always collide and distinct values behave uniformly.
    """
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    x = bits.astype(np.uint64) + np.uint64(seed * 0x9E3779B97F4A7C15 & _MASK)
    x ^= x >> np.uint64(30)
    x = (x * np.uint64(_MIX1)) & np.uint64(_MASK)
    x ^= x >> np.uint64(27)
    x = (x * np.uint64(_MIX2)) & np.uint64(_MASK)
    x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


class KMinValues:
    """Mergeable distinct-count sketch keeping the k smallest hashes.

    Parameters
    ----------
    k:
        Sketch size; relative error ~ ``1/sqrt(k-2)``.
    seed:
        Hash seed (sketches must share it to be mergeable).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.distinct import KMinValues
    >>> sk = KMinValues(k=256)
    >>> sk.update(np.arange(10_000, dtype=np.float32))
    >>> 8_000 < sk.estimate() < 12_000
    True
    """

    def __init__(self, k: int = 256, seed: int = 0):
        if k < 3:
            raise SummaryError(f"k must be >= 3, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        # max-heap (negated) of the k smallest hashes seen, deduplicated.
        self._heap: list[float] = []
        self._members: set[float] = set()
        self.count = 0

    def update(self, values: np.ndarray | list[float]) -> None:
        """Absorb stream elements."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        self.count += int(arr.size)
        hashes = np.unique(hash_values(arr, self.seed))
        self._absorb(hashes)

    def update_sorted_hashes(self, ascending_hashes: np.ndarray) -> None:
        """Absorb a pre-sorted hash array (the GPU-sorted window head).

        Only the first ``k`` entries can matter, so callers that sorted
        on the GPU pass just the head of the window.
        """
        arr = np.asarray(ascending_hashes, dtype=np.float64).ravel()
        if np.any(arr[1:] < arr[:-1]):
            raise SummaryError("update_sorted_hashes requires ascending input")
        # Repeated stream values hash identically; only the k smallest
        # *distinct* hashes matter (the pipeline's run-length step
        # deduplicates, mirrored here).
        self._absorb(np.unique(arr)[:self.k])

    # ------------------------------------------------------------------
    # the uniform Estimator protocol
    # ------------------------------------------------------------------
    def prepare_chunk(self, values: np.ndarray) -> np.ndarray:
        """Pipeline pre-window transform: hash raw values, count them.

        The distinct pipeline sorts *hashes* (the GPU orders them like
        any other float texture); the k smallest of each sorted window
        feed the sketch.  Counting happens here because every accepted
        element contributes to ``count`` whether or not its hash
        survives the window head.
        """
        self.count += int(values.size)
        return hash_values(values, self.seed).astype(np.float32)

    def update_batch(self, sorted_window: np.ndarray,
                     histogram=None) -> None:
        """Protocol entry point: absorb one ascending *hash* window."""
        self.update_sorted_hashes(
            np.asarray(sorted_window, dtype=np.float64).ravel())

    def query(self) -> float:
        """Protocol query: the distinct-count estimate."""
        return self.estimate()

    def error_bound(self, confidence_sigmas: float = 2.0) -> float:
        """Relative error bound at the given sigma level."""
        if confidence_sigmas <= 0:
            raise QueryError("confidence_sigmas must be positive")
        return confidence_sigmas * self.relative_standard_error()

    @property
    def processed(self) -> int:
        """Stream elements hashed into the sketch."""
        return self.count

    def _absorb(self, hashes: np.ndarray) -> None:
        for h in hashes.tolist():
            if h in self._members:
                continue
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, -h)
                self._members.add(h)
            elif h < -self._heap[0]:
                evicted = -heapq.heappushpop(self._heap, -h)
                self._members.discard(evicted)
                self._members.add(h)

    def to_state(self) -> dict:
        """Versioned JSON-serializable snapshot of the sketch."""
        return {
            "version": 1,
            "kind": "kmv",
            "k": self.k,
            "seed": self.seed,
            "count": self.count,
            "hashes": sorted(self._members),
        }

    @classmethod
    def from_state(cls, state: dict) -> "KMinValues":
        """Rebuild a sketch from :meth:`to_state` output."""
        if state.get("kind") != "kmv" or state.get("version") != 1:
            raise SummaryError(
                f"not a v1 kmv state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        sketch = cls(int(state["k"]), int(state["seed"]))
        sketch.count = int(state["count"])
        sketch._absorb(np.asarray(state["hashes"], dtype=np.float64))
        return sketch

    def merge(self, other: "KMinValues") -> "KMinValues":
        """Union of two sketches (must share k and seed)."""
        if (self.k, self.seed) != (other.k, other.seed):
            raise SummaryError("can only merge sketches with equal k and seed")
        merged = KMinValues(self.k, self.seed)
        merged.count = self.count + other.count
        union = np.array(sorted(self._members | other._members))
        merged._absorb(union[:self.k])
        return merged

    def estimate(self) -> float:
        """Estimated number of distinct values seen."""
        if not self._heap:
            return 0.0
        if len(self._heap) < self.k:
            # fewer distinct hashes than k: the sketch is exact.
            return float(len(self._heap))
        kth = -self._heap[0]
        if kth <= 0.0:
            # Unreachable for genuine hashes (k >= 3 *distinct* values
            # in [0, 1) cannot all be <= 0), but out-of-domain input
            # fed directly to update_sorted_hashes would divide by
            # zero here; the retained distinct count is the only
            # defensible answer in that degenerate case.
            return float(len(self._heap))
        return (self.k - 1) / kth

    def relative_standard_error(self) -> float:
        """Expected relative error of :meth:`estimate`."""
        return 1.0 / math.sqrt(self.k - 2)

    def __len__(self) -> int:
        return len(self._heap)


class WindowedDistinctCounter:
    """Distinct counting through the paper's sorted-window pipeline.

    Each window is hashed and sorted (on the GPU in the engine: hashing
    is a per-fragment op, sorting is the PBSN pass); the window *head*
    feeds a :class:`KMinValues` sketch.  The per-window work beyond the
    sort is O(k), keeping the sort dominant exactly as in the frequency
    pipeline.
    """

    def __init__(self, k: int = 256, window_size: int = 4096, seed: int = 0):
        if window_size <= 0:
            raise SummaryError(
                f"window_size must be positive, got {window_size}")
        self.sketch = KMinValues(k, seed)
        self.window_size = int(window_size)
        self._pending = np.empty(0, dtype=np.float32)

    @property
    def count(self) -> int:
        """Stream elements absorbed (excluding the pending buffer)."""
        return self.sketch.count

    def update(self, values: np.ndarray | list[float]) -> None:
        """Feed stream elements window by window."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        data = (np.concatenate([self._pending, arr])
                if self._pending.size else arr)
        w = self.window_size
        full = (data.size // w) * w
        for start in range(0, full, w):
            window = data[start:start + w]
            hashes = np.sort(hash_values(window, self.sketch.seed))
            self.sketch.count += int(window.size)
            self.sketch.update_sorted_hashes(hashes)
        self._pending = data[full:].copy()

    def estimate(self) -> float:
        """Estimated distinct values (pending buffer included)."""
        if not self._pending.size:
            return self.sketch.estimate()
        snapshot = KMinValues(self.sketch.k, self.sketch.seed)
        snapshot._heap = list(self.sketch._heap)
        snapshot._members = set(self.sketch._members)
        snapshot.update(self._pending)
        return snapshot.estimate()

    def error_bound(self, confidence_sigmas: float = 2.0) -> float:
        """Relative error bound at the given sigma level."""
        if confidence_sigmas <= 0:
            raise QueryError("confidence_sigmas must be positive")
        return confidence_sigmas * self.sketch.relative_standard_error()


register_estimator(
    "kmv", KMinValues,
    # Randomized sketch: error_bound() is a 2-sigma relative error
    # (~1/sqrt(k-2)); k ~ 1/eps^2 entries bound the compress scan.
    capabilities=EstimatorCapabilities(
        statistic="distinct", metrics=("distinct",), driver="distinct",
        randomized=True, merge_cycles=24.0, compress_cycles=6.0,
        entries_per_inverse_eps=1.0, bound_type="relative-std"),
    builder=lambda eps, window_size, hint: KMinValues(
        max(16, math.ceil(1.0 / (eps * eps)) + 2)))
