"""Distinct-count sketches (the third fundamental stream statistic of
the paper's Section 1)."""

from .fm import FlajoletMartin
from .kmv import KMinValues, WindowedDistinctCounter, hash_values

__all__ = [
    "FlajoletMartin",
    "KMinValues",
    "WindowedDistinctCounter",
    "hash_values",
]
