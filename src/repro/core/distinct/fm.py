"""Flajolet-Martin probabilistic counting (PCSA).

The classic distinct-count baseline referenced by the stream-statistics
literature the paper builds on: ``m`` bitmaps, each recording the
trailing-zero counts of hashed elements; the estimate is
``(m / phi) * 2^(mean lowest-unset-bit)`` with Flajolet & Martin's
correction factor ``phi ~= 0.77351``.

Included as the second distinct-count implementation so the accuracy
benchmarks can compare sketches (KMV is sorting-friendly; PCSA is the
bit-twiddling classic).
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import SummaryError
from .kmv import _MASK, _MIX1, _MIX2

#: Flajolet-Martin correction factor.
PHI = 0.77351

#: Bits per bitmap (enough for 2^32 distinct values).
BITMAP_BITS = 40


def _hash64(values: np.ndarray, seed: int) -> np.ndarray:
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    x = bits.astype(np.uint64) + np.uint64(
        (seed * 0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D) & _MASK)
    x ^= x >> np.uint64(30)
    x = (x * np.uint64(_MIX1)) & np.uint64(_MASK)
    x ^= x >> np.uint64(27)
    x = (x * np.uint64(_MIX2)) & np.uint64(_MASK)
    x ^= x >> np.uint64(31)
    return x


class FlajoletMartin:
    """PCSA distinct-count sketch with ``m`` bitmaps.

    Parameters
    ----------
    bitmaps:
        Number of independent bitmaps; standard error ~ ``0.78/sqrt(m)``.
    seed:
        Hash seed.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.distinct import FlajoletMartin
    >>> fm = FlajoletMartin(bitmaps=64)
    >>> fm.update(np.arange(50_000, dtype=np.float32))
    >>> bool(30_000 < fm.estimate() < 80_000)
    True
    """

    def __init__(self, bitmaps: int = 64, seed: int = 0):
        if bitmaps < 1:
            raise SummaryError(f"bitmaps must be >= 1, got {bitmaps}")
        self.m = int(bitmaps)
        self.seed = int(seed)
        self._bitmaps = np.zeros(self.m, dtype=np.uint64)
        self.count = 0

    def update(self, values: np.ndarray | list[float]) -> None:
        """Absorb stream elements (vectorised)."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        self.count += int(arr.size)
        hashes = _hash64(arr, self.seed)
        buckets = (hashes % np.uint64(self.m)).astype(np.intp)
        remainder = hashes // np.uint64(self.m)
        # trailing-zero count of the remainder, capped at BITMAP_BITS - 1
        tz = np.zeros(arr.size, dtype=np.uint64)
        rem = remainder.copy()
        # elements with remainder 0 get the cap
        zero = rem == 0
        rem[zero] = np.uint64(1) << np.uint64(BITMAP_BITS - 1)
        for _ in range(BITMAP_BITS):
            low = (rem & np.uint64(1)) == 0
            active = low & (tz < BITMAP_BITS - 1)
            if not active.any():
                break
            tz[active] += np.uint64(1)
            rem[active] >>= np.uint64(1)
        np.bitwise_or.at(self._bitmaps, buckets,
                         np.uint64(1) << tz)

    def merge(self, other: "FlajoletMartin") -> "FlajoletMartin":
        """Union of two sketches (bitwise OR of bitmaps)."""
        if (self.m, self.seed) != (other.m, other.seed):
            raise SummaryError(
                "can only merge sketches with equal bitmaps and seed")
        merged = FlajoletMartin(self.m, self.seed)
        merged._bitmaps = self._bitmaps | other._bitmaps
        merged.count = self.count + other.count
        return merged

    def _lowest_unset(self, bitmap: int) -> int:
        bit = 0
        while bitmap & (1 << bit):
            bit += 1
        return bit

    def estimate(self) -> float:
        """Estimated number of distinct values."""
        if not self._bitmaps.any():
            return 0.0
        mean_r = np.mean([self._lowest_unset(int(b)) for b in self._bitmaps])
        return (self.m / PHI) * (2.0 ** mean_r)

    def relative_standard_error(self) -> float:
        """Expected relative error (Flajolet & Martin 1985)."""
        return 0.78 / math.sqrt(self.m)

    def error_bound(self, confidence_sigmas: float = 2.0) -> float:
        """Relative error bound at the requested confidence level."""
        if confidence_sigmas <= 0:
            raise SummaryError(
                f"confidence_sigmas must be > 0, got {confidence_sigmas}")
        return confidence_sigmas * self.relative_standard_error()
