"""The sorting-backend registry: the single construction point for sorters.

Every component that needs a sorting backend — the stream-mining engine,
the sharded service's primary/fallback pair, the CLI, the benchmark
harness — resolves it here by name.  Nothing outside this module
instantiates :class:`~repro.sorting.gpu_sorter.GpuSorter` or
:class:`~repro.sorting.cpu.InstrumentedCpuSorter` directly (enforced by
a test), so adding a backend, or swapping one in for degradation, is a
registry operation rather than a code change at N call sites.

Built-in names:

``gpu`` / ``gpu-pbsn``
    The simulated GPU running the paper's periodic balanced sorting
    network (Section 4.1).  Honours ``device``, ``network`` and
    ``precision`` keyword arguments.
``gpu-bitonic``
    The same device running the prior bitonic baseline (Purcell et al.).
``gpu-16``
    The PBSN path on 16-bit offscreen buffers (Section 5's double
    buffered configuration).
``cpu`` / ``cpu-quicksort``
    The instrumented CPU quicksort baseline.  Honours ``cpu_speedup``
    (1.0 = MSVC build, 1.5 = the paper's Intel build).
``cpu-samplesort``
    The 2026 generation: vectorized splitter-based sample sort
    (numpy sample/searchsorted bucketing, per-bucket ``np.sort``,
    batched across equal-length windows).  Honours ``bucket_size``.
``cpu-radix``
    The 2026 generation: LSD radix sort on canonicalized uint32 bit
    patterns of the float keys (negatives/``-0.0``/NaN handled
    explicitly), whole batches sorted in one combined pass.

Custom backends register a factory::

    >>> from repro.backends import register_sorter, resolve_sorter
    >>> class Reversing:
    ...     name = "reversing"
    ...     def sort_batch(self, windows):
    ...         return [w[::-1] for w in windows]
    >>> register_sorter("reversing", lambda **kw: Reversing(),
    ...                 replace=True)
    >>> resolve_sorter("reversing").name
    'reversing'

Factories receive every keyword argument passed to
:func:`resolve_sorter` and ignore the ones they do not understand.
"""

from __future__ import annotations

from typing import Any, Callable

from .errors import BackendError
from .sorting.cpu import InstrumentedCpuSorter
from .sorting.gpu_sorter import GpuSorter
from .sorting.radix import RadixSorter
from .sorting.samplesort import DEFAULT_BUCKET_SIZE, VectorizedSampleSorter

__all__ = [
    "cpu_fallback_for",
    "register_sorter",
    "registered_backends",
    "resolve_sorter",
]

#: A factory takes arbitrary keyword options and returns a sorter — any
#: object with ``sort_batch(list[np.ndarray]) -> list[np.ndarray]``.
SorterFactory = Callable[..., Any]

_REGISTRY: dict[str, SorterFactory] = {}


def register_sorter(name: str, factory: SorterFactory, *,
                    replace: bool = False) -> None:
    """Register ``factory`` under ``name`` for :func:`resolve_sorter`.

    Raises :class:`BackendError` if the name is taken and ``replace`` is
    false, so accidental shadowing of a built-in is loud.
    """
    if not isinstance(name, str) or not name:
        raise BackendError(f"backend name must be a non-empty string, "
                           f"got {name!r}")
    if not callable(factory):
        raise BackendError(f"factory for {name!r} is not callable")
    if name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {name!r} is already registered "
            "(pass replace=True to override)")
    _REGISTRY[name] = factory


def registered_backends() -> tuple[str, ...]:
    """Sorted names currently resolvable by :func:`resolve_sorter`."""
    return tuple(sorted(_REGISTRY))


def resolve_sorter(backend: str | Any, **options: Any):
    """Resolve ``backend`` to a sorter instance.

    ``backend`` is either a registered name (``"gpu"``, ``"cpu"``, ...)
    or an already-constructed object exposing ``sort_batch``, which is
    returned unchanged — the escape hatch for tests and custom
    pipelines.  Keyword ``options`` (``device``, ``network``,
    ``precision``, ``cpu_speedup``, ...) are forwarded to the factory;
    each factory picks out what it understands.
    """
    if not isinstance(backend, str):
        if hasattr(backend, "sort_batch"):
            return backend
        raise BackendError(
            f"backend object {backend!r} does not implement sort_batch")
    factory = _REGISTRY.get(backend)
    if factory is None:
        raise BackendError(
            f"unknown backend {backend!r}; registered: "
            f"{', '.join(registered_backends())}")
    return factory(**options)


def cpu_fallback_for(sorter, *, cpu_speedup: float = 1.0):
    """The degradation target for ``sorter``, or ``None`` if none exists.

    The service's circuit breaker degrades a faulting shard to a
    baseline sorter with identical answers, so the swap changes only
    the cost profile.  A backend earns a fallback by declaring a
    ``degrades_to`` registry name (the modern CPU sorters name the
    quicksort baseline); the simulated-GPU sorter keeps its historical
    implicit CPU fallback.  A sorter already on the baseline, or a
    custom backend with unknown semantics, has nowhere safe to degrade
    to — the caller must escalate instead.
    """
    target = getattr(sorter, "degrades_to", None)
    if target is None and isinstance(sorter, GpuSorter):
        target = "cpu"
    if target is None or getattr(sorter, "name", None) in (target, "cpu",
                                                           "cpu-quicksort"):
        return None
    return resolve_sorter(target, cpu_speedup=cpu_speedup)


# ----------------------------------------------------------------------
# built-in backends
# ----------------------------------------------------------------------
def _gpu_factory(network: str = "pbsn", precision: int = 32):
    def build(device=None, network=network, precision=precision,
              **_ignored):
        return GpuSorter(device, network=network, precision=precision)
    return build


def _cpu_factory(cpu_speedup: float = 1.0, **_ignored):
    return InstrumentedCpuSorter(speedup=cpu_speedup)


def _samplesort_factory(bucket_size: int = DEFAULT_BUCKET_SIZE, **_ignored):
    return VectorizedSampleSorter(bucket_size=bucket_size)


def _radix_factory(**_ignored):
    return RadixSorter()


register_sorter("gpu", _gpu_factory())
register_sorter("gpu-pbsn", _gpu_factory())
register_sorter("gpu-bitonic", _gpu_factory(network="bitonic"))
register_sorter("gpu-16", _gpu_factory(precision=16))
register_sorter("cpu", _cpu_factory)
register_sorter("cpu-quicksort", _cpu_factory)
register_sorter("cpu-samplesort", _samplesort_factory)
register_sorter("cpu-radix", _radix_factory)
