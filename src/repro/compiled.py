"""Optional compiled tier for the hottest estimator inner loops.

PR 3 vectorized ``GKSummary.insert_sorted``; this module extends that
win to the remaining per-element Python in the estimator layer.  Three
kernels cover the loops that profiling puts at the top:

* :func:`lossy_merge` / :func:`lossy_compress` — lossy counting's
  bucket merge and compress over sorted parallel entry arrays;
* :func:`dgim_append` / :func:`dgim_expire` / :func:`dgim_update_bits`
  — the DGIM/EH bucket cascade over parallel timestamp/size arrays;
* :func:`cm_conservative_update` — Count-Min's conservative-update row
  walk over one window histogram.

Each kernel has an **interpreted twin** (``*_interpreted``) that states
the reference semantics in plain Python; the kernel-golden tests pin
every kernel tuple-identical to its twin over adversarial inputs.  When
``numba`` is importable the kernels are ``@njit``-compiled loops;
otherwise a pure-NumPy vectorized implementation with identical
semantics runs (exact integer arithmetic and exact float32 equality
throughout, so answers are bit-identical either way — only speed
differs).

Activation
----------
The tier is **off** by default.  Estimators sample :func:`compiled_active`
at construction, so the knob never changes the behaviour of a live
summary.  Activate with the ``REPRO_COMPILED`` environment variable
(``1``/``true``/``yes``/``on``; inherited by mp/net worker processes) or
programmatically with :func:`set_compiled` (tests); the obs layer
surfaces the state as a ``repro_compiled_active`` gauge via
:func:`compiled_state`.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "USING_NUMBA",
    "cm_conservative_update",
    "cm_conservative_update_interpreted",
    "compiled_active",
    "compiled_mode",
    "compiled_state",
    "dgim_append",
    "dgim_expire",
    "dgim_update_bits",
    "lossy_compress",
    "lossy_compress_interpreted",
    "lossy_merge",
    "lossy_merge_interpreted",
    "set_compiled",
]

try:  # pragma: no cover - exercised only on the numba CI leg
    from numba import njit

    USING_NUMBA = True
except ImportError:
    USING_NUMBA = False

    def njit(*args, **kwargs):
        """No-numba stand-in: return the function unchanged."""
        if args and callable(args[0]):
            return args[0]

        def passthrough(fn):
            return fn

        return passthrough


_OVERRIDE: bool | None = None
_TRUTHY = frozenset(("1", "true", "yes", "on"))


def compiled_active() -> bool:
    """Whether new estimators should take the compiled inner loops."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_COMPILED", "").strip().lower() in _TRUTHY


def set_compiled(active: bool | None) -> None:
    """Override the ``REPRO_COMPILED`` knob (``None`` = back to env)."""
    global _OVERRIDE
    _OVERRIDE = None if active is None else bool(active)


def compiled_mode() -> str:
    """``"numba"`` when the JIT is available, else ``"numpy"``."""
    return "numba" if USING_NUMBA else "numpy"


def compiled_state() -> dict:
    """Duck-typed sample for the obs gauge (obs imports no layer)."""
    return {"active": compiled_active(), "mode": compiled_mode()}


# ----------------------------------------------------------------------
# lossy counting: bucket merge + compress over sorted entry arrays
# ----------------------------------------------------------------------
def lossy_merge_interpreted(values, counts, deltas, hist_values,
                            hist_counts, bucket):
    """Reference semantics of the lossy-counting bucket merge.

    ``values`` are the sorted (ascending, run-length-unique, finite)
    float32 entry keys with parallel int64 ``counts``/``deltas``;
    ``hist_values``/``hist_counts`` are one window histogram (also
    sorted-unique float32).  Existing entries gain the histogram count;
    new entries are created with ``delta = bucket - 1`` (Manku-Motwani's
    missed-count bound).  Returns new ``(values, counts, deltas)``.
    """
    out_v, out_c, out_d = list(values), [int(c) for c in counts], \
        [int(d) for d in deltas]
    for value, freq in zip(hist_values, hist_counts):
        for i, existing in enumerate(out_v):
            if existing == value:
                out_c[i] += int(freq)
                break
        else:
            insert_at = 0
            while insert_at < len(out_v) and out_v[insert_at] < value:
                insert_at += 1
            out_v.insert(insert_at, value)
            out_c.insert(insert_at, int(freq))
            out_d.insert(insert_at, int(bucket) - 1)
    return (np.asarray(out_v, dtype=np.float32),
            np.asarray(out_c, dtype=np.int64),
            np.asarray(out_d, dtype=np.int64))


def _lossy_merge_numpy(values, counts, deltas, hist_values, hist_counts,
                       bucket):
    hist_counts = hist_counts.astype(np.int64, copy=False)
    if values.size == 0:
        return (hist_values.astype(np.float32, copy=True),
                hist_counts.copy(),
                np.full(hist_values.size, bucket - 1, dtype=np.int64))
    pos = np.searchsorted(values, hist_values)
    clipped = np.minimum(pos, values.size - 1)
    found = (pos < values.size) & (values[clipped] == hist_values)
    counts = counts.copy()
    if found.all():
        # Steady state once the heavy hitters are all tracked: every
        # histogram value hits an existing entry, no insertion needed.
        counts[pos] += hist_counts
        return values, counts, deltas
    counts[pos[found]] += hist_counts[found]
    fresh = ~found
    at = pos[fresh]
    # One shared scatter-merge instead of three np.insert calls: new
    # entry i lands at ``at[i] + i`` (``at`` is nondecreasing because
    # the histogram is sorted), existing entries fill the gaps in order.
    spots = at + np.arange(at.size)
    keep = np.ones(values.size + at.size, dtype=bool)
    keep[spots] = False
    out_v = np.empty(keep.size, dtype=np.float32)
    out_c = np.empty(keep.size, dtype=np.int64)
    out_d = np.empty(keep.size, dtype=np.int64)
    out_v[spots] = hist_values[fresh]
    out_v[keep] = values
    out_c[spots] = hist_counts[fresh]
    out_c[keep] = counts
    out_d[spots] = bucket - 1
    out_d[keep] = deltas
    return out_v, out_c, out_d


def _lossy_merge_loop(values, counts, deltas, hist_values, hist_counts,
                      bucket):  # pragma: no cover - numba leg only
    n, m = values.shape[0], hist_values.shape[0]
    out_v = np.empty(n + m, dtype=np.float32)
    out_c = np.empty(n + m, dtype=np.int64)
    out_d = np.empty(n + m, dtype=np.int64)
    i = j = k = 0
    while i < n and j < m:
        if values[i] == hist_values[j]:
            out_v[k] = values[i]
            out_c[k] = counts[i] + hist_counts[j]
            out_d[k] = deltas[i]
            i += 1
            j += 1
        elif values[i] < hist_values[j]:
            out_v[k] = values[i]
            out_c[k] = counts[i]
            out_d[k] = deltas[i]
            i += 1
        else:
            out_v[k] = hist_values[j]
            out_c[k] = hist_counts[j]
            out_d[k] = bucket - 1
            j += 1
        k += 1
    while i < n:
        out_v[k] = values[i]
        out_c[k] = counts[i]
        out_d[k] = deltas[i]
        i += 1
        k += 1
    while j < m:
        out_v[k] = hist_values[j]
        out_c[k] = hist_counts[j]
        out_d[k] = bucket - 1
        j += 1
        k += 1
    return out_v[:k], out_c[:k], out_d[:k]


if USING_NUMBA:  # pragma: no cover - numba leg only
    lossy_merge = njit(cache=True)(_lossy_merge_loop)
else:
    lossy_merge = _lossy_merge_numpy


def lossy_compress_interpreted(values, counts, deltas, bucket):
    """Reference compress: drop entries with ``count + delta <= bucket``."""
    keep_v, keep_c, keep_d = [], [], []
    for value, count, delta in zip(values, counts, deltas):
        if int(count) + int(delta) > int(bucket):
            keep_v.append(value)
            keep_c.append(int(count))
            keep_d.append(int(delta))
    return (np.asarray(keep_v, dtype=np.float32),
            np.asarray(keep_c, dtype=np.int64),
            np.asarray(keep_d, dtype=np.int64))


def _lossy_compress_numpy(values, counts, deltas, bucket):
    keep = (counts + deltas) > bucket
    if keep.all():
        return values, counts, deltas
    return values[keep], counts[keep], deltas[keep]


if USING_NUMBA:  # pragma: no cover - numba leg only
    @njit(cache=True)
    def lossy_compress(values, counts, deltas, bucket):
        keep = (counts + deltas) > bucket
        return values[keep], counts[keep], deltas[keep]
else:
    lossy_compress = _lossy_compress_numpy


# ----------------------------------------------------------------------
# DGIM: bucket cascade over parallel timestamp/size arrays
# ----------------------------------------------------------------------
# The cascade is a sequential recurrence (each merge changes what the
# next pass sees), so there is no data-parallel formulation: the numba
# build JIT-compiles the loops below, and the fallback runs the same
# loops interpreted — identical semantics, with dgim_update_bits
# amortizing the per-bit Python call overhead across a whole window.
# Arrays hold live buckets in ``[0, count)`` oldest-first (ascending
# timestamps); capacity management stays in the Python wrapper.
def _dgim_expire(ts, sz, count, time, window):
    drop = 0
    while drop < count and ts[drop] <= time - window:
        drop += 1
    if drop:
        for j in range(count - drop):
            ts[j] = ts[j + drop]
            sz[j] = sz[j + drop]
        count -= drop
    return count


def _dgim_append(ts, sz, count, time, max_per_size):
    ts[count] = time
    sz[count] = 1
    count += 1
    size = 1
    while True:
        matching = 0
        oldest = -1
        second = -1
        for j in range(count):
            if sz[j] == size:
                if oldest < 0:
                    oldest = j
                elif second < 0:
                    second = j
                matching += 1
        if matching <= max_per_size:
            return count
        # Merge the two oldest buckets of this size: the merged bucket
        # keeps the second-oldest's timestamp, the oldest is removed.
        sz[second] = size * 2
        for j in range(oldest, count - 1):
            ts[j] = ts[j + 1]
            sz[j] = sz[j + 1]
        count -= 1
        size *= 2


def _dgim_update_bits(ts, sz, count, time, window, max_per_size, bits):
    for i in range(bits.shape[0]):
        time += 1
        count = _dgim_expire(ts, sz, count, time, window)
        if bits[i]:
            count = _dgim_append(ts, sz, count, time, max_per_size)
    return count, time


if USING_NUMBA:  # pragma: no cover - numba leg only
    dgim_expire = njit(cache=True)(_dgim_expire)
    dgim_append = njit(cache=True)(_dgim_append)

    @njit(cache=True)
    def dgim_update_bits(ts, sz, count, time, window, max_per_size, bits):
        for i in range(bits.shape[0]):
            time += 1
            count = dgim_expire(ts, sz, count, time, window)
            if bits[i]:
                count = dgim_append(ts, sz, count, time, max_per_size)
        return count, time
else:
    dgim_expire = _dgim_expire
    dgim_append = _dgim_append
    dgim_update_bits = _dgim_update_bits


# ----------------------------------------------------------------------
# Count-Min: conservative-update row walk
# ----------------------------------------------------------------------
def cm_conservative_update_interpreted(table, columns, freqs):
    """Reference conservative update (Estan & Varghese), in place.

    For each histogram entry ``j`` with frequency ``freqs[j]``, raise
    the ``depth`` counters at ``columns[:, j]`` to at most
    ``min(counters) + freq`` — never beyond, so estimates stay as small
    as possible while never undercounting.  Entries apply sequentially:
    collision order matters, so the walk cannot be data-parallel across
    ``j``.
    """
    depth = table.shape[0]
    rows = np.arange(depth)
    for j in range(len(freqs)):
        cells = columns[:, j]
        raised = int(table[rows, cells].min()) + int(freqs[j])
        table[rows, cells] = np.maximum(table[rows, cells], raised)


def _cm_conservative_update_loop(table, columns, freqs):
    depth = table.shape[0]
    for j in range(freqs.shape[0]):
        low = table[0, columns[0, j]]
        for row in range(1, depth):
            cell = table[row, columns[row, j]]
            if cell < low:
                low = cell
        raised = low + freqs[j]
        for row in range(depth):
            if table[row, columns[row, j]] < raised:
                table[row, columns[row, j]] = raised


if USING_NUMBA:  # pragma: no cover - numba leg only
    cm_conservative_update = njit(cache=True)(_cm_conservative_update_loop)
else:
    cm_conservative_update = _cm_conservative_update_loop
