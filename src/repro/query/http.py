"""Stdlib HTTP control plane for a live query front-end.

``repro serve --query-port`` starts one of these next to the asyncio
service so operators can register/inspect/answer standing queries
against a *running* process — the `repro query register/list/answer`
subcommands are thin clients of these endpoints.  Same philosophy as
:mod:`repro.obs.http`: a daemon-threaded
:class:`~http.server.ThreadingHTTPServer`, no framework, JSON in and
out.

The handlers run on server threads while the front-end lives on the
service's asyncio loop, so every operation crosses via
:func:`asyncio.run_coroutine_threadsafe`; the front-end itself is only
ever touched from the loop, which is what makes the registry/cache
mutations race-free without locks.

Endpoints::

    POST   /queries              body = QuerySpec.to_state() -> {id, ...}
    GET    /queries              -> {queries: [...], metrics: {...}}
    GET    /queries/<id>/answer  [?fresh=1] -> evaluated answer
    DELETE /queries/<id>         -> {ok: true}
    GET    /healthz              -> 200 while the loop is serving
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import QueryError
from .frontend import Answer, QueryFrontEnd

__all__ = [
    "QueryControlServer",
    "answer_query",
    "list_queries",
    "register_query",
    "unregister_query",
]

#: Server-side wait for one front-end coroutine (covers a drain on a
#: loaded pool); clients use their own socket timeouts.
CALL_TIMEOUT = 60.0


def _answer_state(answer: Answer) -> dict:
    value = answer.value
    if isinstance(value, list):  # (value, count) pairs -> JSON arrays
        value = [list(pair) for pair in value]
    return {
        "id": answer.query_id,
        "metric": answer.metric,
        "value": value,
        "error_bound": answer.error_bound,
        "kind": answer.kind,
        "shared": answer.shared,
        "randomized": answer.randomized,
        "tenant": answer.tenant,
    }


class QueryControlServer:
    """Serves one :class:`QueryFrontEnd` over HTTP from a daemon thread.

    Parameters
    ----------
    frontend:
        The live front-end (owned by the asyncio service).
    loop:
        The event loop the front-end runs on; every request is
        marshalled onto it.
    port / host:
        Bind address; port ``0`` picks a free one (read :attr:`port`
        after :meth:`start`).
    """

    def __init__(self, frontend: QueryFrontEnd,
                 loop: asyncio.AbstractEventLoop, port: int = 0,
                 host: str = "127.0.0.1"):
        self.frontend = frontend
        self.loop = loop
        self.requested_port = int(port)
        self.host = host
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def call(self, coro):
        """Run one front-end coroutine on the service loop, blocking."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout=CALL_TIMEOUT)

    def start(self) -> "QueryControlServer":
        if self._server is not None:
            return self
        server = ThreadingHTTPServer((self.host, self.requested_port),
                                     _handler_for(self))
        server.daemon_threads = True
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever,
                                        name="query-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def __enter__(self) -> "QueryControlServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _handler_for(owner: QueryControlServer):
    """Build a request-handler class bound to one control server."""

    class Handler(BaseHTTPRequestHandler):
        def _send(self, status: int, payload: dict) -> None:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, exc: Exception) -> None:
            status = 400 if isinstance(exc, QueryError) else 500
            self._send(status, {"error": str(exc)})

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise QueryError("request body must be a JSON object")
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            if not isinstance(payload, dict):
                raise QueryError("request body must be a JSON object")
            return payload

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            if path != "/queries":
                self._send(404, {"error": "POST /queries only"})
                return
            try:
                spec = self._read_json()
                query_id = owner.call(owner.frontend.register(spec))
                state = owner.frontend.get(query_id).to_state()
                self._send(201, state)
            except Exception as exc:
                self._fail(exc)

        def do_GET(self) -> None:  # noqa: N802
            path, _, raw_params = self.path.partition("?")
            try:
                if path == "/queries":
                    metrics = owner.frontend.metrics
                    self._send(200, {
                        "queries": [q.to_state()
                                    for q in owner.frontend.queries()],
                        "metrics": {
                            "registered": metrics.registered,
                            "physical_sketches":
                                metrics.physical_sketches,
                            "shared_ratio": metrics.shared_ratio,
                        },
                    })
                elif path == "/healthz":
                    self._send(200, {"status": "ok"})
                elif path.startswith("/queries/") and \
                        path.endswith("/answer"):
                    query_id = path[len("/queries/"):-len("/answer")]
                    fresh = "fresh=1" in raw_params.split("&")
                    answer = owner.call(
                        owner.frontend.answer(query_id, fresh=fresh))
                    self._send(200, _answer_state(answer))
                else:
                    self._send(404, {"error": "unknown path"})
            except Exception as exc:
                self._fail(exc)

        def do_DELETE(self) -> None:  # noqa: N802
            path = self.path.split("?", 1)[0]
            if not path.startswith("/queries/"):
                self._send(404, {"error": "DELETE /queries/<id> only"})
                return
            query_id = path[len("/queries/"):]
            try:
                owner.call(owner.frontend.unregister(query_id))
                self._send(200, {"ok": True, "id": query_id})
            except Exception as exc:
                self._fail(exc)

        def log_message(self, *args) -> None:
            """Control calls are interactive; keep stderr quiet anyway."""

    return Handler


# ----------------------------------------------------------------------
# clients (the `repro query ...` subcommands)
# ----------------------------------------------------------------------
def _request(url: str, method: str = "GET", payload: dict | None = None,
             timeout: float = CALL_TIMEOUT) -> dict:
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error")
        except Exception:
            detail = None
        raise QueryError(detail or f"{exc.code} from {url}") from exc


def register_query(base_url: str, spec: dict) -> dict:
    """POST one spec state; returns the registration state (id, plan)."""
    return _request(f"{base_url}/queries", "POST", spec)


def list_queries(base_url: str) -> dict:
    """GET the live registrations + headline sharing metrics."""
    return _request(f"{base_url}/queries")


def answer_query(base_url: str, query_id: str, *,
                 fresh: bool = False) -> dict:
    """GET one evaluated answer."""
    suffix = "?fresh=1" if fresh else ""
    return _request(f"{base_url}/queries/{query_id}/answer{suffix}")


def unregister_query(base_url: str, query_id: str) -> dict:
    """DELETE one registration."""
    return _request(f"{base_url}/queries/{query_id}", "DELETE")
