"""Refcounted physical-sketch cache with eps-dominance plan rewriting.

The cache owns the mapping from canonical :class:`SketchKey`\\ s to live
physical sketches (executor services, built by the front-end's
factory).  Its one non-trivial decision is *acquire*: a plan for key
``(statistic, key, window, class)`` is served by

1. the exact key, if live;
2. else the **coarsest live dominating** key — same statistic/key/
   window with a finer (smaller) eps class.  Coarsest-first matters:
   among sketches that can all serve the query, the one closest to the
   requested grade is the cheapest to keep hot, and finer sketches stay
   available for the finer queries that actually need them;
3. else a fresh sketch built at the plan's own class.

Case 2 rewrites the plan (:meth:`QueryPlan.rewritten`) so the logical
query's reported ``error_bound`` is the *actual* class it rides on —
always <= the eps it requested, never looser.

Lifecycle is purely refcounted: every registered query holds one
reference to its handle; releasing the last reference closes the
underlying service and drops the key, which is what makes "unregister
all queries of a group frees its sketch" an invariant the metrics gauge
(`repro_query_physical_sketches`) can witness going back down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import QueryError
from .planner import QueryPlan
from .spec import SketchKey, dominates

__all__ = ["SketchCache", "SketchHandle"]


@dataclass
class SketchHandle:
    """One live physical sketch and its reference count.

    ``service`` speaks the :class:`~repro.service.async_service.
    StreamService` coroutine surface (whatever executor built it);
    ``eps`` is the class grade the sketch actually runs at.
    """

    key: SketchKey
    kind: str
    eps: float
    service: object
    refcount: int = 0
    served_specs: int = field(default=0)

    @property
    def statistic(self) -> str:
        return self.key.statistic

    @property
    def stream_key(self) -> str:
        return self.key.key


class SketchCache:
    """Canonical-key -> :class:`SketchHandle` with dominance lookup."""

    def __init__(self):
        self._handles: dict[SketchKey, SketchHandle] = {}
        #: Sketches whose last reference was released since creation
        #: (monotonic; feeds the `repro_query_sketches_released` counter).
        self.released = 0

    def __len__(self) -> int:
        return len(self._handles)

    def __contains__(self, key: SketchKey) -> bool:
        return key in self._handles

    def handles(self) -> list[SketchHandle]:
        """Live handles, stable order (insertion)."""
        return list(self._handles.values())

    def get(self, key: SketchKey) -> SketchHandle | None:
        return self._handles.get(key)

    def insert(self, handle: SketchHandle) -> SketchHandle:
        """Adopt an externally built sketch under its canonical key.

        Used by the front-end's :meth:`~repro.query.frontend.
        QueryFrontEnd.adopt` to attach standing queries to a service
        something else already owns (e.g. the serve runner's pool).
        """
        if handle.key in self._handles:
            raise QueryError(f"sketch {handle.key} already live")
        self._handles[handle.key] = handle
        return handle

    def find_dominating(self, key: SketchKey) -> SketchHandle | None:
        """The coarsest live sketch that can serve ``key`` (if any).

        The exact key wins when live; otherwise ties on eps class break
        by insertion order, so repeated lookups are deterministic.
        """
        exact = self._handles.get(key)
        if exact is not None:
            return exact
        best = None
        for handle in self._handles.values():
            if not dominates(handle.key, key):
                continue
            if best is None or handle.key.eps_class > best.key.eps_class:
                best = handle
        return best

    def acquire(self, plan: QueryPlan, build) -> tuple[SketchHandle,
                                                       QueryPlan]:
        """Serve ``plan`` from a live sketch or build one via ``build``.

        ``build(plan) -> service`` runs only on a miss.  Returns the
        handle (refcount already bumped) and the possibly-rewritten
        plan whose ``eps`` reflects the sketch actually serving it.
        """
        handle = self.find_dominating(plan.sketch_key)
        if handle is not None:
            handle.refcount += 1
            handle.served_specs += 1
            if handle.key == plan.sketch_key:
                final = QueryPlan(plan.spec, plan.sketch_key, handle.kind,
                                  handle.eps, plan.cost_per_element,
                                  shared=handle.served_specs > 1)
            else:
                final = plan.rewritten(handle.key)
            return handle, final
        service = build(plan)
        handle = SketchHandle(plan.sketch_key, plan.kind,
                              plan.sketch_key.eps_class, service,
                              refcount=1, served_specs=1)
        self._handles[plan.sketch_key] = handle
        return handle, plan

    def release(self, handle: SketchHandle) -> bool:
        """Drop one reference; returns True when the sketch was freed.

        The caller (front-end) is responsible for stopping the freed
        handle's service — the cache tracks ownership, not asyncio.
        """
        live = self._handles.get(handle.key)
        if live is not handle:
            raise QueryError(f"handle for {handle.key} is not live")
        if handle.refcount <= 0:
            raise QueryError(f"handle for {handle.key} already at zero")
        handle.refcount -= 1
        if handle.refcount == 0:
            del self._handles[handle.key]
            self.released += 1
            return True
        return False

    def for_stream(self, stream_key: str) -> list[SketchHandle]:
        """Every live sketch fed by stream ``stream_key`` (fan-out set)."""
        return [h for h in self._handles.values()
                if h.key.key == stream_key]
