"""Cost-aware planning: spec -> cheapest capable estimator kind.

The planner answers one question per registered spec: *which physical
sketch should serve it, and what does that sketch cost per element?*
Candidates come from the :mod:`repro.core.estimators` capability
registry — a kind is eligible when it advertises the spec's metric,
drives the spec's statistic, and is an actual pipeline driver rather
than a building block (``driver is not None``).  Cost comes from the
same closed-form timing model the figure harnesses use
(:func:`repro.bench.models.streaming_modelled_time`), evaluated at the
spec's eps class with the per-kind merge/compress coefficients each
capability record declares — so a new estimator family competes on
modelled numbers the moment it registers, without the planner changing.

Planning is two-stage: :meth:`Planner.plan` picks the kind and the
canonical :class:`~repro.query.spec.SketchKey`; the cache
(:mod:`repro.query.cache`) may then *rewrite* the plan onto an existing
finer-grade sketch instead of building a new one (eps-dominance), which
only ever tightens the query's reported bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.estimators import (EstimatorCapabilities, estimator_capabilities,
                               registered_capabilities)
from ..errors import QueryError
from .spec import QuerySpec, SketchKey, canonical_key

__all__ = [
    "Planner",
    "QueryPlan",
    "modelled_cost_per_element",
]

#: Stream length the per-element cost is amortised over.  Any fixed
#: value works for *ranking* kinds (per-element cost is flat past a few
#: windows); this one matches the figure harnesses' smallest paper-scale
#: point.
_NOMINAL_ELEMENTS = 1_000_000


def modelled_cost_per_element(kind: str, eps: float,
                              backend: str = "cpu") -> float:
    """Modelled seconds per ingested element for ``kind`` at ``eps``.

    Sums the :func:`~repro.bench.models.streaming_modelled_time`
    per-operation breakdown over a nominal stream and divides by its
    length.  The cpu backend uses the calibrated Intel sort model
    (:data:`repro.gpu.timing.CPU_MODEL_INTEL`), mirroring
    ``bench/harness.py``'s Figure 5 series.
    """
    from ..bench.models import streaming_modelled_time
    from ..gpu.timing import CPU_MODEL_INTEL

    caps = estimator_capabilities(kind)
    window = max(1, math.ceil(1.0 / eps))
    summary_size = max(1, math.ceil(caps.entries_per_inverse_eps / eps))
    # The closed-form model knows the paper's two hardware classes;
    # registry names (gpu-16, cpu-radix, ...) snap to their class.
    model_backend = "gpu" if str(backend).startswith("gpu") else "cpu"
    times = streaming_modelled_time(
        _NOMINAL_ELEMENTS, window, model_backend,
        cpu_time_fn=(CPU_MODEL_INTEL.time if model_backend == "cpu"
                     else None),
        merge_cycles=caps.merge_cycles,
        compress_cycles=caps.compress_cycles,
        summary_size=summary_size)
    return sum(times.values()) / _NOMINAL_ELEMENTS


@dataclass(frozen=True)
class QueryPlan:
    """The planner's verdict for one spec.

    ``sketch_key`` is the canonical group the spec snapped to;
    ``eps`` is that key's class eps (the bound the physical sketch is
    built at — never coarser than the spec asked for); ``shared`` is
    filled in by the cache when the plan lands on an already-live
    sketch instead of building one.
    """

    spec: QuerySpec
    sketch_key: SketchKey
    kind: str
    eps: float
    cost_per_element: float
    shared: bool = False

    def rewritten(self, key: SketchKey) -> "QueryPlan":
        """This plan re-targeted onto an existing dominating sketch."""
        return QueryPlan(self.spec, key, self.kind, key.eps_class,
                         self.cost_per_element, shared=True)


class Planner:
    """Maps specs to the cheapest capable registered estimator kind.

    Parameters
    ----------
    backend:
        Sorting backend the physical pools will run (feeds the cost
        model — the gpu path amortises four windows per sort pass).
    """

    def __init__(self, backend: str = "cpu"):
        self.backend = backend
        # (kind, eps_class) -> modelled cost; planning 1k specs over a
        # handful of classes must not re-run the closed form each time.
        self._cost_cache: dict[tuple[str, float], float] = {}

    def candidates(self, spec: QuerySpec) -> list[str]:
        """Registered kinds able to serve ``spec``, sorted by name.

        A kind qualifies when it drives the spec's statistic, lists the
        spec's metric, is a real pipeline driver (``driver`` set — the
        bare GK summary registers as a checkpoint kind but only ever
        lives inside the exponential histogram), and merges losslessly
        when the spec will run on a sharded pool (history mode).
        """
        out = []
        for kind, caps in registered_capabilities().items():
            if caps.statistic != spec.statistic:
                continue
            if spec.metric not in caps.metrics:
                continue
            if caps.driver is None:
                continue
            if spec.window is None and not caps.mergeable:
                continue
            out.append(kind)
        return out

    def cost(self, kind: str, eps: float) -> float:
        """Cached modelled per-element cost of ``kind`` at ``eps``."""
        cache_key = (kind, eps)
        if cache_key not in self._cost_cache:
            self._cost_cache[cache_key] = modelled_cost_per_element(
                kind, eps, self.backend)
        return self._cost_cache[cache_key]

    def plan(self, spec: QuerySpec) -> QueryPlan:
        """The cheapest capable kind for ``spec`` at its canonical key."""
        key = canonical_key(spec)
        kinds = self.candidates(spec)
        if not kinds:
            raise QueryError(
                f"no registered estimator kind can answer "
                f"{spec.metric!r} over statistic {spec.statistic!r}")
        best = min(kinds, key=lambda kind: (self.cost(kind, key.eps_class),
                                            kind))
        return QueryPlan(spec, key, best, key.eps_class,
                         self.cost(best, key.eps_class))

    def capabilities(self, kind: str) -> EstimatorCapabilities:
        """Capability record lookup (convenience passthrough)."""
        return estimator_capabilities(kind)
