"""Continuous-query front-end: standing queries over one ingest stream.

The paper frames its sketches as primitives for *continuous queries
over data streams*; this package is the layer that makes the framing
literal.  Clients register declarative :class:`QuerySpec`\\ s ("the p99
of key ``latency`` at eps 0.01 for tenant ``eu``", "the top-20 values
of key ``url``") against a live front-end; a cost-aware
:class:`Planner` maps each spec to the cheapest registered estimator
kind via the :mod:`repro.core.estimators` capability registry and the
:mod:`repro.bench.models` timing model; and a refcounted
:class:`SketchCache` canonicalizes compatible specs — same statistic,
key, and window, eps-dominance across error classes — so N standing
queries fan in to M << N physical sketches over one physical pass per
sketch.

Components:

* :mod:`repro.query.spec` — :class:`QuerySpec`, the eps-class ladder,
  canonical :class:`SketchKey`\\ s, and the dominance partial order;
* :mod:`repro.query.planner` — capability lookup + modelled
  per-element cost, producing :class:`QueryPlan`\\ s that either build
  a new sketch or rewrite onto a dominating existing one;
* :mod:`repro.query.cache` — the refcounted physical-sketch cache
  (unregistering the last query of a group releases its sketch);
* :mod:`repro.query.frontend` — :class:`QueryFrontEnd`, the async
  registration/ingest/answer surface over executor-built pools, plus
  :class:`QueryMetrics` (exported by :mod:`repro.obs.sources` as
  ``repro_query_*`` series including the shared-ratio gauge);
* :mod:`repro.query.factory` — the one construction seam for miners
  and executor services (the CLI, the serve runner, and the examples
  all build through it; the AST layering test bans direct
  construction at those call sites);
* :mod:`repro.query.http` — the stdlib HTTP control plane behind
  ``repro serve --query-port`` and the ``repro query
  register/list/answer`` client commands.

Layering: ``query`` sits above ``core``, ``service``, ``bench``, and
``obs``; nothing below it may import it (enforced by
``tools/check_layers.py``).
"""

from .cache import SketchCache, SketchHandle
from .factory import build_miner, build_service
from .frontend import Answer, QueryFrontEnd, QueryMetrics, RegisteredQuery
from .http import (QueryControlServer, answer_query, list_queries,
                   register_query, unregister_query)
from .planner import Planner, QueryPlan, modelled_cost_per_element
from .spec import (EPS_LADDER, QuerySpec, SketchKey, canonical_key,
                   dominates, eps_class)

__all__ = [
    "Answer",
    "EPS_LADDER",
    "Planner",
    "QueryControlServer",
    "QueryFrontEnd",
    "QueryMetrics",
    "QueryPlan",
    "QuerySpec",
    "RegisteredQuery",
    "SketchCache",
    "SketchHandle",
    "SketchKey",
    "answer_query",
    "build_miner",
    "build_service",
    "canonical_key",
    "dominates",
    "eps_class",
    "list_queries",
    "modelled_cost_per_element",
    "register_query",
    "unregister_query",
]
