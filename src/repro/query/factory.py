"""The one construction seam for miners and executor services.

Before this module existed the serve runner, the CLI, and the examples
each had a near-identical block instantiating :class:`StreamMiner` /
executor services by hand; three copies of the same defaults is how
drift starts.  They now all build here (the AST test in
``tests/test_layering.py`` bans direct construction at those call
sites), and the continuous-query front-end uses the same two functions
to build the physical sketches its cache manages — so "how does a
sketch come to exist" has exactly one answer in the codebase.

Imports of the service layer happen inside the functions: the query
package is imported by ``repro.service.runner`` (lazily) and keeping
the module import light avoids dragging the whole executor stack in
for callers that only want :func:`build_miner`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ServiceError

__all__ = ["SlidingService", "build_miner", "build_service",
           "build_sliding_service"]


def build_miner(statistic: str, *, eps: float, backend: str = "cpu",
                mode: str = "history", window_size: int | None = None,
                sliding_window: int | None = None, variable: bool = False,
                **kwargs):
    """Construct a single :class:`~repro.core.engine.StreamMiner`.

    Thin by design — the value is the choke point, not cleverness.
    Extra keyword arguments (``device``, ``cpu_speedup``,
    ``stream_length_hint``) pass through.
    """
    from ..core.engine import StreamMiner
    return StreamMiner(statistic, eps=eps, backend=backend, mode=mode,
                       window_size=window_size,
                       sliding_window=sliding_window, variable=variable,
                       **kwargs)


def build_service(executor: str, miner_kwargs: dict,
                  service_kwargs: dict | None = None):
    """Construct an (unstarted) executor service over a shard pool.

    Resolves ``executor`` through the registry in
    :mod:`repro.service.executors` — the same seam ``repro serve
    --executor`` uses — so every service in the process is built the
    same way regardless of who asked.
    """
    from ..service.executors import resolve_executor
    factory = resolve_executor(executor)
    return factory(dict(miner_kwargs), dict(service_kwargs or {}))


class SlidingService:
    """A single sliding-window miner behind the service coroutine surface.

    Sliding estimators are order-sensitive, so they cannot ride the
    sharded pools (splitting the stream would scramble window
    boundaries); a windowed :class:`~repro.query.spec.QuerySpec` gets
    this dedicated single-miner adapter instead.  The surface matches
    :class:`~repro.service.executors.InlineService` so the front-end
    treats both uniformly.
    """

    def __init__(self, miner):
        self.miner = miner
        self._started = False

    async def start(self) -> None:
        if self._started:
            raise ServiceError("service already started")
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        if not self._started:
            return
        if drain:
            self.miner.flush()
        self._started = False

    async def ingest(self, chunk) -> int:
        if not self._started:
            raise ServiceError("service not started")
        arr = np.asarray(chunk, dtype=np.float32).ravel()
        self.miner.update(arr)
        return int(arr.size)

    async def drain(self, flush: bool = True) -> None:
        if flush:
            self.miner.flush()

    async def quantile(self, phi: float, *, fresh: bool = False) -> float:
        if fresh:
            self.miner.flush()
        return self.miner.quantile(phi)

    async def frequent_items(self, support: float, *,
                             fresh: bool = False) -> list[tuple[float, int]]:
        if fresh:
            self.miner.flush()
        return self.miner.frequent_items(support)

    async def estimate(self, value: float) -> int:
        return self.miner.estimate(value)

    async def distinct(self, *, fresh: bool = False) -> float:
        if fresh:
            self.miner.flush()
        return self.miner.distinct()

    async def answer(self, metric: str, *, fresh: bool = False, **params):
        """Metric-keyed query routing (the continuous-query seam).

        A single :class:`~repro.core.engine.StreamMiner` exposes the
        same typed query names and ``eps`` the pools do, so the shared
        :func:`~repro.service.sharded.dispatch_query` translation
        applies unchanged.
        """
        from ..service.sharded import dispatch_query
        if fresh:
            self.miner.flush()
        return dispatch_query(self.miner, metric, params)


def build_sliding_service(statistic: str, *, eps: float, window: int,
                          backend: str = "cpu") -> SlidingService:
    """A dedicated sliding-window service for one windowed sketch key."""
    return SlidingService(build_miner(statistic, eps=eps, backend=backend,
                                      mode="sliding",
                                      sliding_window=int(window)))
