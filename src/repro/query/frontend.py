"""The standing-query front-end: N logical queries, M << N sketches.

:class:`QueryFrontEnd` is the piece clients actually talk to.  It owns

* a :class:`~repro.query.planner.Planner` (spec -> cheapest capable
  estimator kind, modelled cost),
* a :class:`~repro.query.cache.SketchCache` (canonical key -> live
  refcounted physical sketch, with eps-dominance plan rewriting),
* the registry of live :class:`RegisteredQuery` handles, and
* :class:`QueryMetrics`, the counters the obs layer exports as
  ``repro_query_*`` (including the ``repro_query_shared_ratio`` gauge
  — the fraction of logical queries riding a sketch they share).

Data flow: producers push chunks tagged with a stream ``key``
(:meth:`ingest`); the front-end fans each chunk out to every physical
sketch that key feeds — that is the "one physical pass per sketch"
invariant: a chunk is sorted/summarised once per *sketch*, not once
per *query*.  Answers (:meth:`answer`) dispatch on the spec's metric
against the sketch's executor service, and each answer carries the
``error_bound`` of the sketch the query was planned onto — the
(equal-or-finer) eps class, never looser than the spec requested.

Error accounting is untouched: sharded pools keep their eps/2 + eps/2
merge-on-query argument internally (the front-end builds them *at* the
class eps and never reaches past the service surface), so an answer
from a shared sketch satisfies the class bound, which implies every
sharing query's requested bound.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

from ..errors import QueryError
from .cache import SketchCache, SketchHandle
from .factory import build_service, build_sliding_service
from .planner import Planner, QueryPlan
from .spec import QuerySpec

__all__ = ["Answer", "QueryFrontEnd", "QueryMetrics", "RegisteredQuery"]


@dataclass
class QueryMetrics:
    """Front-end counters, exported by :mod:`repro.obs.sources`.

    ``registered`` / ``physical_sketches`` are live gauges; the rest
    are monotonic counters.  ``shared_ratio`` is the headline number:
    1 - sketches/queries, i.e. the fraction of standing queries served
    without a sketch of their own (0 when nothing is registered).
    """

    registered: int = 0
    physical_sketches: int = 0
    registrations: int = 0
    plans_built: int = 0
    plans_shared: int = 0
    sketches_released: int = 0
    answers: int = 0
    ingested_chunks: int = 0
    fanout_ingests: int = 0
    plan_seconds: float = 0.0

    @property
    def shared_ratio(self) -> float:
        if self.registered <= 0:
            return 0.0
        return 1.0 - (self.physical_sketches / self.registered)


@dataclass(frozen=True)
class Answer:
    """One evaluated standing query.

    ``error_bound`` is the grade of the physical sketch that served it
    (<= the spec's requested eps); ``randomized`` marks bounds that are
    2-sigma relative errors rather than deterministic guarantees (KMV).
    """

    query_id: str
    metric: str
    value: object
    error_bound: float
    kind: str
    shared: bool
    randomized: bool
    tenant: str


@dataclass
class RegisteredQuery:
    """A live registration: the spec, its plan, and the sketch it rides."""

    query_id: str
    spec: QuerySpec
    plan: QueryPlan
    handle: SketchHandle

    def error_bound(self) -> float:
        """The bound this query's answers actually satisfy.

        The eps class of the physical sketch serving it — by
        construction <= ``spec.eps`` (sharing may tighten, never
        loosen; pinned by the property suite).
        """
        return float(self.handle.eps)

    def to_state(self) -> dict:
        return {
            "id": self.query_id,
            "spec": self.spec.to_state(),
            "kind": self.handle.kind,
            "error_bound": self.error_bound(),
            "shared": bool(self.plan.shared),
            "sketch": {
                "statistic": self.handle.key.statistic,
                "key": self.handle.key.key,
                "window": self.handle.key.window,
                "eps_class": self.handle.key.eps_class,
                "refcount": int(self.handle.refcount),
            },
        }


class QueryFrontEnd:
    """Standing-query registration, shared ingest, and answers.

    Parameters
    ----------
    executor:
        Executor-registry name the physical pools run under
        (``inline`` by default — the front-end itself adds no
        concurrency requirement).
    backend:
        Sorting backend for every pool, and the planner's cost-model
        backend.
    num_shards:
        Shards per physical pool (history-mode sketches; windowed
        sketches are single-miner by construction).
    planner:
        Override the :class:`Planner` (tests inject canned cost models).
    miner_kwargs / service_kwargs:
        Extra construction arguments forwarded to every pool built
        through :func:`repro.query.factory.build_service`.
    """

    def __init__(self, *, executor: str = "inline", backend: str = "cpu",
                 num_shards: int = 2, planner: Planner | None = None,
                 miner_kwargs: dict | None = None,
                 service_kwargs: dict | None = None):
        self.executor = executor
        self.backend = backend
        self.num_shards = int(num_shards)
        self.planner = planner if planner is not None else Planner(backend)
        self.cache = SketchCache()
        self.metrics = QueryMetrics()
        self._queries: dict[str, RegisteredQuery] = {}
        self._ids = itertools.count(1)
        self._miner_kwargs = dict(miner_kwargs or {})
        self._service_kwargs = dict(service_kwargs or {})
        self._adopted: list[SketchHandle] = []
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "QueryFrontEnd":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        """Stop every owned physical sketch, forget all registrations.

        Adopted services (see :meth:`adopt`) are left running — their
        owner stops them.
        """
        if self._closed:
            return
        self._closed = True
        adopted = {id(handle) for handle in self._adopted}
        for handle in self.cache.handles():
            if id(handle) not in adopted:
                await handle.service.stop(drain=False)
        self._queries.clear()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _build(self, plan: QueryPlan):
        key = plan.sketch_key
        if key.window is not None:
            return build_sliding_service(key.statistic, eps=plan.eps,
                                         window=key.window,
                                         backend=self.backend)
        miner_kwargs = dict(self._miner_kwargs)
        miner_kwargs.update(statistic=key.statistic, eps=plan.eps,
                            num_shards=self.num_shards,
                            backend=self.backend,
                            kind=plan.kind)
        return build_service(self.executor, miner_kwargs,
                             self._service_kwargs)

    def adopt(self, service, *, statistic: str, eps: float,
              key: str = "default", window: int | None = None,
              kind: str | None = None) -> SketchHandle:
        """Attach the front-end to a service something else owns.

        The service enters the cache as a live sketch at its exact
        ``eps`` (which acts as the key's class — dominance is numeric,
        so ladder membership is not required): compatible specs
        registered afterwards share it instead of building their own
        pool.  The frontend holds one adoption reference, so the sketch
        survives all its queries unregistering and is *not* stopped by
        :meth:`close` — whoever built it keeps its lifecycle.

        ``kind`` defaults to the default registry kind for
        ``statistic`` — the one the planner's incumbent costing picks.
        """
        if kind is None:
            from ..core.estimators import default_kind_for
            kind = default_kind_for(statistic)
        from .spec import SketchKey
        handle = SketchHandle(
            SketchKey(statistic, key,
                      None if window is None else int(window), float(eps)),
            kind, float(eps), service, refcount=1, served_specs=0)
        self.cache.insert(handle)
        self._adopted.append(handle)
        self.metrics.physical_sketches += 1
        return handle

    async def register(self, spec: QuerySpec | dict) -> str:
        """Plan, acquire-or-build the backing sketch, return a query id."""
        if self._closed:
            raise QueryError("front-end is closed")
        if isinstance(spec, dict):
            spec = QuerySpec.from_state(spec)
        began = time.perf_counter()
        plan = self.planner.plan(spec)
        built: list[object] = []

        def build(p: QueryPlan):
            service = self._build(p)
            built.append(service)
            return service

        handle, final = self.cache.acquire(plan, build)
        if built:
            await handle.service.start()
            self.metrics.plans_built += 1
            self.metrics.physical_sketches += 1
        else:
            self.metrics.plans_shared += 1
        query_id = f"q-{next(self._ids)}"
        self._queries[query_id] = RegisteredQuery(query_id, spec, final,
                                                  handle)
        self.metrics.registered += 1
        self.metrics.registrations += 1
        self.metrics.plan_seconds += time.perf_counter() - began
        return query_id

    async def unregister(self, query_id: str) -> None:
        """Drop one registration; frees its sketch at refcount zero."""
        query = self._queries.pop(query_id, None)
        if query is None:
            raise QueryError(f"no registered query {query_id!r}")
        freed = self.cache.release(query.handle)
        self.metrics.registered -= 1
        if freed:
            await query.handle.service.stop(drain=False)
            self.metrics.physical_sketches -= 1
            self.metrics.sketches_released += 1

    def get(self, query_id: str) -> RegisteredQuery:
        query = self._queries.get(query_id)
        if query is None:
            raise QueryError(f"no registered query {query_id!r}")
        return query

    def queries(self) -> list[RegisteredQuery]:
        """Live registrations in registration order."""
        return list(self._queries.values())

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    async def ingest(self, chunk, key: str = "default") -> int:
        """Fan one chunk of stream ``key`` out to its physical sketches.

        Returns the number of sketches fed; a key no standing query
        watches costs nothing (the chunk is dropped, not buffered).
        """
        if self._closed:
            raise QueryError("front-end is closed")
        handles = self.cache.for_stream(key)
        for handle in handles:
            await handle.service.ingest(chunk)
        self.metrics.ingested_chunks += 1
        self.metrics.fanout_ingests += len(handles)
        return len(handles)

    async def drain(self) -> None:
        """Settle every physical sketch (read-your-writes barrier)."""
        for handle in self.cache.handles():
            await handle.service.drain()

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    @staticmethod
    def _answer_params(spec: QuerySpec) -> dict:
        """The metric-specific arguments ``service.answer`` dispatches on."""
        if spec.metric == "quantile":
            return {"phi": spec.phi}
        if spec.metric == "heavy_hitters":
            return {"support": spec.support}
        if spec.metric == "top_k":
            return {"k": spec.k}
        if spec.metric == "estimate":
            return {"value": spec.value}
        return {}

    async def answer(self, query_id: str, *, fresh: bool = False) -> Answer:
        """Evaluate one standing query against its backing sketch.

        Routes through the executor services' uniform
        ``answer(metric, **params)`` seam — the front-end never
        branches on pool or executor type.
        """
        query = self.get(query_id)
        spec, handle = query.spec, query.handle
        value = await handle.service.answer(spec.metric, fresh=fresh,
                                            **self._answer_params(spec))
        self.metrics.answers += 1
        caps = self.planner.capabilities(handle.kind)
        return Answer(query_id, spec.metric, value, query.error_bound(),
                      handle.kind, bool(query.plan.shared),
                      bool(caps.randomized), spec.tenant)

    async def answer_all(self, *, fresh: bool = False) -> dict[str, Answer]:
        """Evaluate every live query (drains once, not per query)."""
        if fresh:
            await self.drain()
        return {query_id: await self.answer(query_id)
                for query_id in list(self._queries)}
