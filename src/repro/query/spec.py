"""Declarative standing queries and the sketch-sharing canonical form.

A :class:`QuerySpec` says *what* a client wants to watch — "the p99 of
``latency`` within eps 0.01", "the top 20 values of ``url`` for tenant
``eu``" — and nothing about *how*.  The how is the planner's job
(:mod:`repro.query.planner`); this module defines the vocabulary both
sides speak and, crucially, the **canonicalization** that lets many
logical queries share one physical sketch:

* every spec folds its accuracy demand into one number,
  :attr:`QuerySpec.required_eps` (top-k at ``k`` becomes
  ``min(eps, 1/(2k))`` — a count error under ``N/(2k)`` cannot reorder
  two items whose true counts differ by ``N/k``, so an eps-grade sketch
  that fine serves the top-k);
* the required eps snaps *down* to a 1-2-5 ladder class
  (:func:`eps_class`), so "eps 0.011" and "eps 0.018" land on the same
  0.01-grade sketch instead of two near-identical ones;
* the resulting :class:`SketchKey` ``(statistic, key, window,
  eps_class)`` names the physical sketch group, and
  :func:`dominates` is the partial order of *serveability*: a sketch
  at a finer (smaller) class answers any query of a coarser class over
  the same key and window.

Because a class is always ``<=`` the eps it was snapped from, sharing
can only ever *tighten* a query's reported bound relative to what it
asked for — the property suite in ``tests/query/test_spec.py`` pins
this and the partial-order laws down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from ..core.estimators import QUERY_METRICS
from ..errors import QueryError

__all__ = [
    "EPS_LADDER",
    "QuerySpec",
    "SketchKey",
    "canonical_key",
    "dominates",
    "eps_class",
]

#: Statistic each query metric is driven by.
_METRIC_STATISTIC = {
    "quantile": "quantile",
    "heavy_hitters": "frequency",
    "top_k": "frequency",
    "estimate": "frequency",
    "distinct": "distinct",
}

#: The 1-2-5 decade grid eps classes snap to, finest last.  Coarser than
#: 0.5 is vacuous (error bounds are fractions of N); finer than 1e-5
#: would make a *shared* sketch pathologically large, so specs below the
#: floor keep their exact eps as a singleton class.
EPS_LADDER = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(0, -6, -1)
    for mantissa in (5.0, 2.0, 1.0)
    if mantissa * 10.0 ** exponent <= 0.5
)


def eps_class(eps: float) -> float:
    """The coarsest ladder class satisfying ``eps`` (largest value <= eps).

    Snapping *down* means the physical sketch is at least as accurate
    as every query it serves; below the ladder floor the exact eps is
    its own class (no sharing across such ultra-fine specs, but no
    silent loosening either).
    """
    if not 0.0 < eps < 1.0:
        raise QueryError(f"eps must be in (0, 1), got {eps}")
    for grade in EPS_LADDER:
        if grade <= eps:
            return grade
    return float(eps)


class SketchKey(NamedTuple):
    """Canonical name of one physical sketch group.

    Two specs with equal keys are served by the same sketch; a spec is
    also served by any *finer* key (see :func:`dominates`).
    """

    statistic: str
    key: str
    window: int | None
    eps_class: float


def dominates(a: SketchKey, b: SketchKey) -> bool:
    """True when a sketch at key ``a`` can serve queries planned at ``b``.

    Requires the same statistic, stream key, and window; then a finer
    (smaller-or-equal) eps class serves any coarser demand.  This is a
    partial order: reflexive, antisymmetric, transitive — and
    incomparable across different keys/windows/statistics.
    """
    return (a.statistic == b.statistic and a.key == b.key
            and a.window == b.window and a.eps_class <= b.eps_class)


@dataclass(frozen=True)
class QuerySpec:
    """One standing query against the ingest stream.

    Parameters
    ----------
    metric:
        What to watch — one of ``"quantile"``, ``"heavy_hitters"``,
        ``"top_k"``, ``"estimate"``, ``"distinct"``
        (:data:`repro.core.estimators.QUERY_METRICS`).
    key:
        Name of the ingest stream the query reads (the group-by key a
        producer tags its chunks with).
    eps:
        Requested approximation fraction.  The answer's reported
        ``error_bound`` is the (finer or equal) class of the sketch the
        query was planned onto, never worse than this.
    phi:
        Quantile rank in [0, 1] (``metric="quantile"`` only).
    support:
        Heavy-hitter support threshold in (0, 1]
        (``metric="heavy_hitters"`` only); must exceed ``eps`` or the
        guarantee ``(support - eps) * N`` is vacuous.
    k:
        Result size (``metric="top_k"`` only).
    value:
        The tracked value (``metric="estimate"`` only).
    window:
        ``None`` for full-history queries (the only mode the sharded
        pools run); an integer names a sliding window of that width and
        shares sketches only with equal-window specs.
    tenant:
        Namespace label carried through listings and metrics; two
        tenants' compatible specs still share a sketch (the stream is
        shared — isolation here is accounting, not data).
    """

    metric: str
    key: str = "default"
    eps: float = 0.01
    phi: float | None = None
    support: float | None = None
    k: int | None = None
    value: float | None = None
    window: int | None = None
    tenant: str = "default"

    def __post_init__(self):
        if self.metric not in QUERY_METRICS:
            raise QueryError(
                f"unknown query metric {self.metric!r}; known: "
                f"{', '.join(QUERY_METRICS)}")
        if not 0.0 < self.eps < 1.0:
            raise QueryError(f"eps must be in (0, 1), got {self.eps}")
        if not self.key:
            raise QueryError("key must be a non-empty stream name")
        if self.window is not None and int(self.window) < 1:
            raise QueryError(f"window must be >= 1, got {self.window}")
        if self.metric == "quantile":
            if self.phi is None or not 0.0 <= self.phi <= 1.0:
                raise QueryError(
                    f"quantile queries need phi in [0, 1], got {self.phi}")
        elif self.metric == "heavy_hitters":
            if self.support is None or not 0.0 < self.support <= 1.0:
                raise QueryError(
                    "heavy-hitter queries need support in (0, 1], got "
                    f"{self.support}")
            if self.support < self.eps:
                raise QueryError(
                    f"support {self.support} below eps {self.eps}: the "
                    "guarantee threshold (support - eps) N is vacuous")
        elif self.metric == "top_k":
            if self.k is None or int(self.k) < 1:
                raise QueryError(f"top-k queries need k >= 1, got {self.k}")
        elif self.metric == "estimate":
            if self.value is None:
                raise QueryError("estimate queries need the tracked value")

    @property
    def statistic(self) -> str:
        """The pipeline statistic that can answer this metric."""
        return _METRIC_STATISTIC[self.metric]

    @property
    def required_eps(self) -> float:
        """The accuracy the backing sketch must actually provide.

        Top-k folds its ordering demand into the eps grade: with count
        error under ``N / (2k)`` no item outside the true top ``2k`` can
        displace a true top-k item, so ``min(eps, 1/(2k))`` is the
        single number the planner and cache need.  This is exactly the
        ISSUE's dominance rule — a sketch provisioned for ``k`` serves
        any ``k' <= k`` because ``1/(2k) <= 1/(2k')``.
        """
        if self.metric == "top_k":
            return min(self.eps, 1.0 / (2.0 * int(self.k)))
        return self.eps

    def to_state(self) -> dict:
        """JSON-serializable form (the HTTP control plane's wire spec)."""
        return {
            "version": 1,
            "metric": self.metric,
            "key": self.key,
            "eps": self.eps,
            "phi": self.phi,
            "support": self.support,
            "k": self.k,
            "value": self.value,
            "window": self.window,
            "tenant": self.tenant,
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuerySpec":
        if state.get("version") != 1:
            raise QueryError(
                f"not a v1 query spec: version {state.get('version')!r}")
        known = {f for f in cls.__dataclass_fields__}
        extra = set(state) - known - {"version"}
        if extra:
            raise QueryError(f"unknown query spec fields {sorted(extra)!r}")
        kwargs = {name: state[name] for name in known if name in state}
        if "metric" not in kwargs:
            raise QueryError("query spec needs a metric")
        if kwargs.get("k") is not None:
            kwargs["k"] = int(kwargs["k"])
        if kwargs.get("window") is not None:
            kwargs["window"] = int(kwargs["window"])
        return cls(**kwargs)


def canonical_key(spec: QuerySpec) -> SketchKey:
    """The :class:`SketchKey` this spec's demand snaps to."""
    return SketchKey(spec.statistic, spec.key,
                     None if spec.window is None else int(spec.window),
                     eps_class(spec.required_eps))
