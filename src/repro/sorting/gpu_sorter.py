"""End-to-end GPU sorting facade (Sections 4.1 and 4.4).

:class:`GpuSorter` implements the complete co-processor pipeline the
paper uses inside its streaming algorithms:

1. split the input into four sub-sequences and pack them into the RGBA
   channels of one power-of-two 2D texture, padding with ``+inf``;
2. upload the texture over the bus (billed);
3. run the sorting network (PBSN by default, the prior bitonic baseline
   for comparison) over all four channels in parallel;
4. read the sorted texture back over the bus (billed);
5. merge the four sorted runs on the CPU (Section 4.4's O(n) merge).

The facade records exact perf counters per sort and exposes modelled
GeForce-6800 timing for the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from ..errors import SortError
from ..gpu.counters import PerfCounters
from ..gpu.device import GpuDevice
from ..gpu.texture import CHANNELS, texture_dims_for
from ..gpu.timing import BitonicFragmentProgramModel, GpuTimeBreakdown
from .bitonic import INSTRUCTIONS_PER_PIXEL, bitonic_sort_texture
from .merge import merge_sorted_runs
from .networks import next_power_of_two
from .pbsn import pbsn_sort_texture

#: Sentinel used to pad channels up to the texture size.  Padding sorts to
#: the end of each ascending run and is stripped before the merge.
PAD_VALUE = np.float32(np.inf)


def pack_channels(values: np.ndarray, width: int, height: int) -> np.ndarray:
    """Pack ``values`` into an ``(H, W, 4)`` array, one run per channel.

    The input is split into four contiguous sub-sequences of
    ``ceil(n / 4)`` values (the last may be shorter); each fills one
    channel in row-major order, padded with :data:`PAD_VALUE`.
    """
    per_channel = width * height
    arr = np.asarray(values, dtype=np.float32).ravel()
    if arr.size > per_channel * CHANNELS:
        raise SortError(
            f"{arr.size} values do not fit four {width}x{height} channels")
    packed = np.full((per_channel, CHANNELS), PAD_VALUE, dtype=np.float32)
    chunk = -(-arr.size // CHANNELS)  # ceil division
    for channel in range(CHANNELS):
        part = arr[channel * chunk:(channel + 1) * chunk]
        packed[:part.size, channel] = part
    return packed.reshape(height, width, CHANNELS)


def unpack_channels(texture_data: np.ndarray, counts: list[int]) -> list[np.ndarray]:
    """Extract the four sorted runs, stripping each channel's padding."""
    height, width, channels = texture_data.shape
    flat = texture_data.reshape(height * width, channels)
    return [np.array(flat[:counts[c], c]) for c in range(channels)]


class GpuSorter:
    """Sorts host arrays on the simulated GPU co-processor.

    Parameters
    ----------
    device:
        Device to run on; a fresh :class:`GpuDevice` is created if omitted.
    network:
        ``"pbsn"`` (the paper's algorithm) or ``"bitonic"`` (the prior
        GPU baseline of Purcell et al.).

    Attributes
    ----------
    last_counters:
        Exact op counts of the most recent :meth:`sort`.
    last_n:
        Input size of the most recent :meth:`sort`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sorting import GpuSorter
    >>> sorter = GpuSorter()
    >>> out = sorter.sort(np.array([3.0, 1.0, 2.0], dtype=np.float32))
    >>> out.tolist()
    [1.0, 2.0, 3.0]
    """

    def __init__(self, device: GpuDevice | None = None, network: str = "pbsn",
                 precision: int = 32):
        if network not in ("pbsn", "bitonic"):
            raise SortError(f"unknown network {network!r}")
        if precision not in (16, 32):
            raise SortError(f"precision must be 16 or 32, got {precision}")
        self.device = device if device is not None else GpuDevice()
        self.network = network
        #: The paper's implementation used "double buffered 16-bit
        #: offscreen buffers" on a 16-bit input stream (Section 5).
        #: precision=16 quantises values to float16 (the functional
        #: effect of the narrower buffers) and halves every byte count
        #: in the modelled memory/bus terms.
        self.precision = precision
        self.last_counters: PerfCounters = PerfCounters()
        self.last_n = 0
        self._bitonic_model = BitonicFragmentProgramModel(
            self.device.spec, INSTRUCTIONS_PER_PIXEL)

    def _quantize(self, arr: np.ndarray) -> np.ndarray:
        if self.precision == 16:
            return arr.astype(np.float16).astype(np.float32)
        return arr

    @property
    def name(self) -> str:
        """Backend label used by benchmark reports."""
        return f"gpu-{self.network}"

    def sort(self, values: np.ndarray) -> np.ndarray:
        """Sort ``values`` ascending through the full GPU pipeline.

        Only finite float32-representable inputs are supported (the
        padding sentinel is ``+inf``; the paper's streams are 32-bit
        reals).  Raises :class:`SortError` otherwise.
        """
        arr = np.asarray(values, dtype=np.float32).ravel()
        self.last_n = int(arr.size)
        if arr.size == 0:
            self.last_counters = PerfCounters()
            return arr.copy()
        if not np.all(np.isfinite(arr)):
            raise SortError("GPU sorter requires finite values "
                            "(padding uses +inf sentinels)")
        arr = self._quantize(arr)

        chunk = -(-arr.size // CHANNELS)
        counts = [max(0, min(chunk, arr.size - c * chunk)) for c in range(CHANNELS)]
        per_channel = next_power_of_two(max(chunk, 1))
        width, height = texture_dims_for(per_channel,
                                         self.device.spec.max_texture_dim)

        before = self.device.counters.snapshot()
        packed = pack_channels(arr, width, height)
        tex = self.device.upload_texture(packed)
        try:
            self.device.bind_framebuffer(width, height)
            if self.network == "pbsn":
                pbsn_sort_texture(self.device, tex)
            else:
                bitonic_sort_texture(self.device, tex)
            sorted_data = self.device.readback_texture(tex)
        finally:
            self.device.delete_texture(tex)
            self.device.framebuffer = None
        self.last_counters = self.device.counters.delta(before)

        runs = unpack_channels(sorted_data, counts)
        return merge_sorted_runs([run for run in runs if run.size])

    def sort_batch(self, windows: list[np.ndarray]) -> list[np.ndarray]:
        """Sort up to four windows simultaneously, one per RGBA channel.

        This is Section 4.1's streaming scheme: "we buffer four windows of
        data values and represent each of the windows in a color component
        of the 2D texture.  Each window of data value is sorted in
        parallel."  Unlike :meth:`sort`, no CPU merge is needed — each
        channel comes back as an independently sorted window.

        Returns the sorted windows in input order.
        """
        if not 1 <= len(windows) <= CHANNELS:
            raise SortError(
                f"sort_batch takes 1 to {CHANNELS} windows, got {len(windows)}")
        arrays = [np.asarray(w, dtype=np.float32).ravel() for w in windows]
        for arr in arrays:
            if arr.size and not np.all(np.isfinite(arr)):
                raise SortError("GPU sorter requires finite values "
                                "(padding uses +inf sentinels)")
        arrays = [self._quantize(arr) for arr in arrays]
        longest = max((arr.size for arr in arrays), default=0)
        if longest == 0:
            self.last_counters = PerfCounters()
            return [arr.copy() for arr in arrays]
        self.last_n = sum(int(arr.size) for arr in arrays)
        per_channel = next_power_of_two(longest)
        width, height = texture_dims_for(per_channel,
                                         self.device.spec.max_texture_dim)
        packed = np.full((width * height, CHANNELS), PAD_VALUE,
                         dtype=np.float32)
        for channel, arr in enumerate(arrays):
            packed[:arr.size, channel] = arr
        packed = packed.reshape(height, width, CHANNELS)

        before = self.device.counters.snapshot()
        tex = self.device.upload_texture(packed)
        try:
            self.device.bind_framebuffer(width, height)
            if self.network == "pbsn":
                pbsn_sort_texture(self.device, tex)
            else:
                bitonic_sort_texture(self.device, tex)
            sorted_data = self.device.readback_texture(tex)
        finally:
            self.device.delete_texture(tex)
            self.device.framebuffer = None
        self.last_counters = self.device.counters.delta(before)
        counts = [arr.size for arr in arrays]
        counts += [0] * (CHANNELS - len(counts))
        return unpack_channels(sorted_data, counts)[:len(arrays)]

    def modelled_time(self, counters: PerfCounters | None = None) -> GpuTimeBreakdown:
        """Modelled GeForce-6800 time of the last sort (or of ``counters``).

        For the bitonic baseline, compute time follows the
        fragment-program instruction model rather than blend cycles.
        """
        counters = counters if counters is not None else self.last_counters
        if self.precision == 16:
            halved = counters.snapshot()
            halved.bytes_read //= 2
            halved.bytes_written //= 2
            halved.bytes_uploaded //= 2
            halved.bytes_readback //= 2
            counters = halved
        breakdown = self.device.cost_model.breakdown(counters)
        if self.network == "bitonic" and self.last_n:
            # Purcell et al. sort one value per pixel (no RGBA packing);
            # our functional simulation vectorises across channels for
            # speed, but the baseline is billed as published: a full-size
            # single-channel texture at 53 instructions per pixel.
            total = self._bitonic_model.time(next_power_of_two(self.last_n))
            return GpuTimeBreakdown(
                setup=self.device.spec.setup_overhead_s,
                pass_overhead=counters.passes * self.device.spec.pass_overhead_s,
                compute=max(0.0, total - self.device.spec.setup_overhead_s
                            - counters.passes * self.device.spec.pass_overhead_s),
                memory=breakdown.memory,
                transfer=breakdown.transfer,
            )
        return breakdown
