"""Order-preserving integer keys for float32 values.

The modern CPU backends (``cpu-radix``, ``cpu-samplesort``) sort float32
streams by their bit patterns.  IEEE-754 floats do not order like their
raw bits: negative values have the sign bit set (so they compare *above*
positives as unsigned integers) and order *descending* as their
magnitude bits grow.  The classic fix (Herf's "radix tricks") is a
bijective transform:

* negative values: flip **all** bits (``~bits``) — reverses their order
  and clears the sign bit below every non-negative key;
* non-negative values: set the sign bit (``bits | 0x80000000``).

Under this transform unsigned integer order equals IEEE total order
with ``-0.0`` strictly before ``+0.0`` (keys ``0x7FFFFFFF`` and
``0x80000000``), and ``±inf`` order naturally.  NaNs do **not** — a
negative-sign NaN's flipped key would sort below every real number
while ``np.sort`` places every NaN at the end — so callers must split
NaNs out first with :func:`split_trailing_nans` and re-append them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["float32_sort_keys", "keys_to_float32", "split_trailing_nans"]

_SIGN = np.uint32(0x80000000)


def float32_sort_keys(values: np.ndarray) -> np.ndarray:
    """Bijective uint32 keys whose unsigned order is float total order.

    ``values`` must be float32 and NaN-free (see module docstring).
    """
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    negative = bits >= _SIGN
    return np.where(negative, ~bits, bits | _SIGN)


def keys_to_float32(keys: np.ndarray) -> np.ndarray:
    """Invert :func:`float32_sort_keys` (exact bit round-trip)."""
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    was_negative = keys < _SIGN
    bits = np.where(was_negative, ~keys, keys & ~_SIGN)
    return bits.view(np.float32)


def split_trailing_nans(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(finite_or_inf, nans)`` partition, both preserving input order.

    ``np.sort`` moves every NaN (either sign bit, any payload) to the
    end of the array; extracting them up front lets the key-based
    sorters match that contract while keeping payload bits intact.
    """
    arr = np.ascontiguousarray(values, dtype=np.float32).ravel()
    nan_mask = np.isnan(arr)
    if not nan_mask.any():
        return arr, arr[:0]
    return arr[~nan_mask], arr[nan_mask]
