"""Selection queries: k-th largest / smallest on the co-processor.

Section 2.2 cites Govindaraju et al. [20], whose GPU database operators
include "kth largest numbers"; and a quantile query over a *single*
window is exactly a selection.  This module provides both routes:

* :func:`gpu_kth_smallest` — sort the window on the GPU (one PBSN pass
  over all four channels) and read off any set of order statistics for
  free afterwards; the right choice when several k are needed, which is
  the histogram pipeline's situation;
* :func:`quickselect` — the classic expected-linear-time CPU algorithm,
  instrumented like the quicksort baseline, as the comparison point for
  a single k.
"""

from __future__ import annotations

import numpy as np

from ..errors import SortError
from .cpu import SortStats
from .gpu_sorter import GpuSorter


def _validate_k(n: int, k: int) -> None:
    if not 1 <= k <= n:
        raise SortError(f"k must be in [1, {n}], got {k}")


def gpu_kth_smallest(values: np.ndarray, k: int | list[int],
                     sorter: GpuSorter | None = None) -> float | list[float]:
    """The k-th smallest value(s) via a GPU sort.

    ``k`` is 1-based; pass a list to extract several order statistics
    from the same sorted pass.
    """
    arr = np.asarray(values, dtype=np.float32).ravel()
    ks = [k] if isinstance(k, int) else list(k)
    if arr.size == 0:
        raise SortError("selection on an empty array")
    for kk in ks:
        _validate_k(arr.size, kk)
    if sorter is None:
        # Imported lazily: repro.backends imports this package to define
        # the built-in factories, so a module-level import would cycle.
        from ..backends import resolve_sorter
        sorter = resolve_sorter("gpu")
    ordered = sorter.sort(arr)
    results = [float(ordered[kk - 1]) for kk in ks]
    return results[0] if isinstance(k, int) else results


def gpu_kth_largest(values: np.ndarray, k: int | list[int],
                    sorter: GpuSorter | None = None) -> float | list[float]:
    """The k-th largest value(s) via a GPU sort (1-based)."""
    arr = np.asarray(values, dtype=np.float32).ravel()
    ks = [k] if isinstance(k, int) else list(k)
    if arr.size == 0:
        raise SortError("selection on an empty array")
    for kk in ks:
        _validate_k(arr.size, kk)
    mapped = [arr.size - kk + 1 for kk in ks]
    out = gpu_kth_smallest(arr, mapped, sorter)
    return out[0] if isinstance(k, int) else out


def quickselect(values: np.ndarray, k: int,
                stats: SortStats | None = None,
                seed: int | None = 0) -> float:
    """The k-th smallest value by expected-linear-time quickselect.

    1-based ``k``; counts comparisons into ``stats`` like the quicksort
    baseline so selection-vs-sort trade-offs can be quantified.
    """
    arr = np.array(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise SortError("selection on an empty array")
    _validate_k(arr.size, k)
    if stats is None:
        stats = SortStats()
    rng = np.random.default_rng(seed)
    lo, hi = 0, arr.size - 1
    target = k - 1
    while True:
        if lo == hi:
            return float(arr[lo])
        pivot_idx = int(rng.integers(lo, hi + 1))
        arr[pivot_idx], arr[hi] = arr[hi], arr[pivot_idx]
        pivot = arr[hi]
        store = lo
        for i in range(lo, hi):
            stats.comparisons += 1
            if arr[i] < pivot:
                arr[i], arr[store] = arr[store], arr[i]
                stats.swaps += 1
                store += 1
        arr[store], arr[hi] = arr[hi], arr[store]
        stats.partitions += 1
        if store == target:
            return float(arr[store])
        if store < target:
            lo = store + 1
        else:
            hi = store - 1
