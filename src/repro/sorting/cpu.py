"""CPU sorting baselines.

The paper compares against two Quicksort builds on a 3.4 GHz Pentium IV:
the MSVC ``qsort`` and the Intel compiler's Hyper-Threaded quicksort.
This module provides

* :func:`quicksort` — an instrumented, pure-Python quicksort (median-of-
  three, small-partition insertion sort) that counts comparisons exactly;
  used by tests and by the op-count-driven cost models;
* :func:`optimized_sort` — NumPy's introsort, standing in for "a well
  optimised compiler build" when benches need real wall-clock numbers;
* :class:`InstrumentedCpuSorter` — a facade matching the GPU sorter's
  interface so the stream-mining engine can swap backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SortError
from ..gpu.presets import PENTIUM_IV_3_4GHZ, CpuSpec
from ..gpu.timing import CpuSortCostModel

#: Partitions at or below this size are finished with insertion sort.
INSERTION_CUTOFF = 16


@dataclass
class SortStats:
    """Operation counts collected by the instrumented quicksort."""

    comparisons: int = 0
    swaps: int = 0
    max_depth: int = 0
    partitions: int = 0

    def merge(self, other: "SortStats") -> None:
        """Accumulate counts from ``other``."""
        self.comparisons += other.comparisons
        self.swaps += other.swaps
        self.max_depth = max(self.max_depth, other.max_depth)
        self.partitions += other.partitions


def _insertion_sort(arr: np.ndarray, lo: int, hi: int, stats: SortStats) -> None:
    for i in range(lo + 1, hi + 1):
        key = arr[i]
        j = i - 1
        while j >= lo:
            stats.comparisons += 1
            if arr[j] <= key:
                break
            arr[j + 1] = arr[j]
            stats.swaps += 1
            j -= 1
        arr[j + 1] = key


def _median_of_three(arr: np.ndarray, lo: int, hi: int, stats: SortStats) -> None:
    """Arrange arr[lo] <= arr[mid] <= arr[hi]; the pivot is arr[mid].

    The endpoints double as sentinels for the Hoare partition scan.
    """
    mid = (lo + hi) // 2
    stats.comparisons += 1
    if arr[mid] < arr[lo]:
        arr[lo], arr[mid] = arr[mid], arr[lo]
        stats.swaps += 1
    stats.comparisons += 1
    if arr[hi] < arr[lo]:
        arr[lo], arr[hi] = arr[hi], arr[lo]
        stats.swaps += 1
    stats.comparisons += 1
    if arr[hi] < arr[mid]:
        arr[mid], arr[hi] = arr[hi], arr[mid]
        stats.swaps += 1


def quicksort(values: np.ndarray | list[float],
              stats: SortStats | None = None) -> np.ndarray:
    """Sort ``values`` ascending with an instrumented quicksort.

    Returns a new array; the input is not modified.  Pass a
    :class:`SortStats` to receive exact comparison/swap counts.

    The implementation mirrors a tuned libc ``qsort``: median-of-three
    pivoting, explicit stack (no recursion limit issues), insertion sort
    below :data:`INSERTION_CUTOFF`.
    """
    arr = np.array(values, dtype=np.float64).ravel()
    if stats is None:
        stats = SortStats()
    n = arr.size
    if n < 2:
        return arr
    stack: list[tuple[int, int, int]] = [(0, n - 1, 1)]
    while stack:
        lo, hi, depth = stack.pop()
        stats.max_depth = max(stats.max_depth, depth)
        if hi - lo < INSERTION_CUTOFF:
            _insertion_sort(arr, lo, hi, stats)
            continue
        _median_of_three(arr, lo, hi, stats)
        mid = (lo + hi) // 2
        pivot = arr[mid]
        # Hoare partition between the sentinels.
        i, j = lo, hi
        while True:
            i += 1
            while True:
                stats.comparisons += 1
                if arr[i] >= pivot:
                    break
                i += 1
            j -= 1
            while True:
                stats.comparisons += 1
                if arr[j] <= pivot:
                    break
                j -= 1
            if i >= j:
                break
            arr[i], arr[j] = arr[j], arr[i]
            stats.swaps += 1
        stats.partitions += 1
        stack.append((lo, j, depth + 1))
        stack.append((j + 1, hi, depth + 1))
    return arr


def optimized_sort(values: np.ndarray) -> np.ndarray:
    """The 'optimised compiler' baseline: NumPy's introsort.

    Used where wall-clock numbers are wanted; op counts come from
    :func:`quicksort` / the analytic models instead.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise SortError(f"expected a 1-D array, got shape {arr.shape}")
    return np.sort(arr, kind="quicksort")


class InstrumentedCpuSorter:
    """CPU sorting backend with the same interface as the GPU sorter.

    Parameters
    ----------
    spec:
        CPU description for the time model.
    speedup:
        Constant-factor speedup over the MSVC baseline (the paper's Intel
        Hyper-Threaded build is ~1.9x).

    Attributes
    ----------
    last_n:
        Size of the most recent sort.
    total_elements:
        Elements sorted since construction (for modelled totals).
    """

    name = "cpu-quicksort"

    def __init__(self, spec: CpuSpec = PENTIUM_IV_3_4GHZ, speedup: float = 1.0):
        self.cost_model = CpuSortCostModel(spec, speedup)
        self.last_n = 0
        self.total_elements = 0

    def sort(self, values: np.ndarray) -> np.ndarray:
        """Sort ascending, recording sizes for the time model."""
        arr = np.asarray(values, dtype=np.float32)
        if arr.ndim != 1:
            raise SortError(f"expected a 1-D array, got shape {arr.shape}")
        self.last_n = int(arr.size)
        self.total_elements += self.last_n
        return np.sort(arr, kind="quicksort")

    def sort_batch(self, windows: list[np.ndarray]) -> list[np.ndarray]:
        """Sort several windows sequentially (the CPU has no channel trick)."""
        results = []
        total = 0
        for window in windows:
            results.append(self.sort(window))
            total += self.last_n
        self.last_n = total
        return results

    def modelled_time(self, n: int | None = None) -> float:
        """Modelled Pentium-IV seconds for a sort of ``n`` (default: last) keys."""
        return self.cost_model.time(self.last_n if n is None else n)
