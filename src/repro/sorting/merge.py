"""CPU-side merging of sorted runs.

Section 4.4: the GPU sorts the four RGBA channels independently, so the
host receives four sorted runs of length ``n/4`` and merges them with
``O(n)`` comparisons ("the merge routine performs O(n) comparisons and is
very efficient").  This module provides that merge, vectorised so the
Python implementation is not the bottleneck, plus an exact comparison
count for the cost models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SortError


def merge_two_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two ascending arrays into one ascending array.

    Vectorised: the final position of each element is its own index plus
    the number of elements of the other run that precede it, found with a
    binary-search scatter.  Ties place elements of ``a`` first, making the
    merge stable across runs.
    """
    if a.size == 0:
        return np.array(b, copy=True)
    if b.size == 0:
        return np.array(a, copy=True)
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    pos_a = np.arange(a.size) + np.searchsorted(b, a, side="left")
    pos_b = np.arange(b.size) + np.searchsorted(a, b, side="right")
    out[pos_a] = a
    out[pos_b] = b
    return out


def merge_sorted_runs(runs: Sequence[np.ndarray]) -> np.ndarray:
    """Merge any number of ascending runs (pairwise balanced reduction)."""
    if not runs:
        return np.empty(0, dtype=np.float32)
    level = [np.asarray(run) for run in runs]
    for run in level:
        if run.ndim != 1:
            raise SortError(f"runs must be 1-D, got shape {run.shape}")
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            merged.append(merge_two_sorted(level[i], level[i + 1]))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


def merge_comparison_count(total: int, num_runs: int = 4) -> int:
    """Comparisons charged to the CPU merge in the paper's cost analysis.

    Merging ``k`` runs of total length ``n`` via a balanced binary
    reduction costs at most ``n * ceil(log2 k)`` comparisons; the paper's
    four-run case is the "n comparison operations" of Section 4.5
    (they count one comparison per element per merge level and fold the
    constant).
    """
    if total < 0 or num_runs < 1:
        raise SortError(f"invalid merge size: total={total}, runs={num_runs}")
    if num_runs == 1:
        return 0
    levels = (num_runs - 1).bit_length()
    return total * levels
