"""Vectorized splitter-based sample sort (``cpu-samplesort``).

The CPU translation of "GPU Sample Sort" (see PAPERS.md): draw a
deterministic strided sample, sort it, pick evenly spaced splitters,
bucket every element with one ``np.searchsorted``, group the buckets
with one stable ``argsort`` over the bucket ids, then finish each
bucket with an in-place ``np.sort`` on its contiguous slice.  All the
data-parallel phases are single NumPy calls; only the per-bucket
finishing loop is Python, over ``O(n / bucket_size)`` buckets.

NaNs are split out first (``np.searchsorted`` against NaN splitters is
undefined) and re-appended, matching ``np.sort``'s NaN-at-the-end
contract; ``±inf`` bucket normally.

Batching: equal-length windows are stacked into one matrix and sorted
with a single ``np.sort(axis=1)`` call — each row is an independent
bucket, which is the sample-sort recursion collapsed to the case where
window membership is the splitter.
"""

from __future__ import annotations

import numpy as np

from ..errors import SortError
from .floatkeys import split_trailing_nans

__all__ = ["VectorizedSampleSorter", "sample_sort"]

#: Target elements per bucket; below twice this, plain np.sort wins.
DEFAULT_BUCKET_SIZE = 8192

#: Sample this many candidates per splitter so skewed inputs still get
#: balanced buckets (the sample-sort oversampling factor).
_OVERSAMPLE = 8

#: Bucket-count ceiling: keeps the Python finishing loop short and the
#: splitter sample cheap even on very large inputs.
_MAX_BUCKETS = 1024


def sample_sort(values: np.ndarray,
                bucket_size: int = DEFAULT_BUCKET_SIZE) -> np.ndarray:
    """Sort a 1-D float32 array ascending by splitter-based bucketing."""
    arr = np.ascontiguousarray(values, dtype=np.float32).ravel()
    if arr.size <= 2 * bucket_size:
        return np.sort(arr)
    finite, nans = split_trailing_nans(arr)
    n = finite.size
    if n <= 2 * bucket_size:
        out = np.sort(finite)
    else:
        buckets = int(min(_MAX_BUCKETS, max(2, n // bucket_size)))
        step = max(1, n // (buckets * _OVERSAMPLE))
        sample = np.sort(finite[::step])
        picks = (np.arange(1, buckets) * sample.size) // buckets
        splitters = sample[picks]
        ids = np.searchsorted(splitters, finite, side="right")
        order = np.argsort(ids.astype(np.uint16), kind="stable")
        out = finite[order]
        counts = np.bincount(ids, minlength=buckets)
        stops = np.cumsum(counts)
        start = 0
        for stop in stops:
            out[start:stop].sort()
            start = int(stop)
    if nans.size:
        out = np.concatenate([out, nans])
    return out


class VectorizedSampleSorter:
    """CPU sample-sort backend with the engine's sorter interface.

    Attributes
    ----------
    last_n:
        Size of the most recent sort (batch total after ``sort_batch``).
    total_elements:
        Elements sorted since construction.
    """

    name = "cpu-samplesort"
    #: Degradation target used by :func:`repro.backends.cpu_fallback_for`.
    degrades_to = "cpu"

    def __init__(self, bucket_size: int = DEFAULT_BUCKET_SIZE):
        if bucket_size < 1:
            raise SortError(f"bucket_size must be >= 1, got {bucket_size}")
        self.bucket_size = int(bucket_size)
        self.last_n = 0
        self.total_elements = 0

    def sort(self, values: np.ndarray) -> np.ndarray:
        """Sort one window ascending, recording sizes."""
        arr = np.asarray(values, dtype=np.float32)
        if arr.ndim != 1:
            raise SortError(f"expected a 1-D array, got shape {arr.shape}")
        self.last_n = int(arr.size)
        self.total_elements += self.last_n
        return sample_sort(arr, self.bucket_size)

    def sort_batch(self, windows: list[np.ndarray]) -> list[np.ndarray]:
        """Sort several windows, batched into one call when same-length."""
        arrays = []
        for window in windows:
            arr = np.asarray(window, dtype=np.float32)
            if arr.ndim != 1:
                raise SortError(
                    f"expected 1-D windows, got shape {arr.shape}")
            arrays.append(arr.ravel())
        total = sum(int(a.size) for a in arrays)
        lengths = {int(a.size) for a in arrays}
        if len(arrays) > 1 and len(lengths) == 1 and total:
            stacked = np.sort(np.stack(arrays), axis=1)
            self.last_n = total
            self.total_elements += total
            return [stacked[i] for i in range(len(arrays))]
        results = [self.sort(a) for a in arrays]
        self.last_n = total
        return results
