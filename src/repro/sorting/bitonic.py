"""Prior-work GPU baseline: fragment-program bitonic sort (Purcell et al.).

Section 2.3 / 4.5 of the paper: earlier GPU sorters implemented Batcher's
bitonic network as a *fragment program* — every pixel computes its
partner index, fetches both values, decides the comparison direction and
writes the result.  The paper counts "at least 53 instructions per
pixel" per comparator stage for that implementation, versus the 6-7
cycles a blend takes — the source of its near-order-of-magnitude
GPU-vs-GPU advantage.

This module reproduces the baseline *as a real fragment program*: each
comparator stage compiles to :class:`~repro.gpu.shader.FragmentProgram`
(address arithmetic with FLR/FRC because the period hardware had no
integer ops, dependent texture fetches, arithmetic select) and executes
through the shader interpreter, which tallies the exact per-pixel
instruction count.  Our idealised ISA needs ~25 instructions per pixel;
Purcell et al.'s NV30-era shader needed >= 53 (float-precision
workarounds, RECT addressing, pack/unpack), which is what the published
cost model bills.  The ablation benchmark reports both.
"""

from __future__ import annotations

from ..errors import SortError
from ..gpu.device import GpuDevice
from ..gpu.shader import FragmentProgram, run_fragment_program
from ..gpu.texture import Texture2D
from .networks import is_power_of_two

#: Instruction count per pixel billed for the *published* baseline
#: (Section 4.5: "performs at least 53 instructions per pixel").
INSTRUCTIONS_PER_PIXEL = 53


def _emit_bit_extract(prog: FragmentProgram, dst: str, src: str,
                      stride_const: str) -> None:
    """dst := bit of ``src`` selected by the power-of-two stride.

    Period fragment ISAs have no integer ops; the standard trick is
    ``frac(floor(i / 2^b) / 2) * 2``.
    """
    prog.emit("MUL", dst, src, stride_const)   # i / 2^b
    prog.emit("FLR", dst, dst)
    prog.emit("MUL", dst, dst, "c_half")
    prog.emit("FRC", dst, dst)
    prog.emit("MUL", dst, dst, "c_two")        # 0.0 or 1.0


def build_bitonic_stage_program(width: int, j: int, k: int) -> FragmentProgram:
    """Compile one bitonic comparator stage ``(k, j)`` to a shader.

    Every pixel holding linear value index ``i = y * width + x``:

    * partner index ``i ^ j`` (via bit arithmetic in floats),
    * direction: ascending iff ``i & k == 0``,
    * output ``min``/``max`` of own and partner values accordingly.
    """
    prog = FragmentProgram()
    prog.constant("c_w", float(width))
    prog.constant("c_inv_w", 1.0 / width)
    prog.constant("c_neg_w", -float(width))
    prog.constant("c_half", 0.5)
    prog.constant("c_two", 2.0)
    prog.constant("c_j", float(j))
    prog.constant("c_neg2j", -2.0 * j)
    prog.constant("c_inv_j", 1.0 / j)
    prog.constant("c_inv_k", 1.0 / k)
    prog.constant("c_neg_one", -1.0)
    prog.constant("c_neg_half", -0.5)

    # i = y * W + x
    prog.emit("MAD", "idx", "pos_y", "c_w", "pos_x")
    # partner = i ^ j  ==  i + j - 2*j*bit_j(i)
    _emit_bit_extract(prog, "bit_j", "idx", "c_inv_j")
    prog.emit("ADD", "tmp", "idx", "c_j")
    prog.emit("MAD", "partner", "bit_j", "c_neg2j", "tmp")
    # direction: bit_k(i) = 1 -> descending block
    _emit_bit_extract(prog, "bit_k", "idx", "c_inv_k")
    # partner texel coordinates
    prog.emit("MUL", "prow", "partner", "c_inv_w")
    prog.emit("FLR", "prow", "prow")
    prog.emit("MAD", "pcol", "prow", "c_neg_w", "partner")
    # dependent fetches: own value and partner value
    prog.emit("TEX", "own", "pos_x", "pos_y")
    prog.emit("TEX", "pval", "pcol", "prow")
    # select: take_min = (i < partner) XOR bit_k
    prog.emit("SLT", "t_lo", "idx", "partner")
    prog.emit("MAD", "t_diff", "bit_k", "c_neg_one", "t_lo")
    prog.emit("MUL", "t_sel", "t_diff", "t_diff")
    prog.emit("MIN", "v_min", "own", "pval")
    prog.emit("MAX", "v_max", "own", "pval")
    # conditional select (no arithmetic on the values themselves, which
    # must tolerate +inf padding): sel - 0.5 < 0 picks the maximum.
    prog.emit("ADD", "t_sign", "t_sel", "c_neg_half")
    prog.emit("CMP", "output", "t_sign", "v_max", "v_min")
    return prog


def bitonic_sort_texture(device: GpuDevice, tex: Texture2D) -> int:
    """Sort all four channels of ``tex`` in place with the bitonic baseline.

    Each comparator stage runs as one full-screen fragment-program pass;
    the device counters record the pass and the exact instruction tally
    (``bitonic_stage:instructions`` in the pass breakdown).  Use
    :class:`~repro.gpu.timing.BitonicFragmentProgramModel` for modelled
    time (the blend-cycle model does not apply to fragment programs).

    Returns the number of comparator stages executed.
    """
    width, height = tex.width, tex.height
    n = width * height
    if not (is_power_of_two(width) and is_power_of_two(height)):
        raise SortError(
            f"bitonic sort requires power-of-two dimensions, got {width}x{height}")
    if n < 2:
        return 0

    stages = 0
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            program = build_bitonic_stage_program(width, j, k)
            output = run_fragment_program(program, tex, device.counters,
                                          label="bitonic_stage")
            tex.write(output)
            stages += 1
            j //= 2
        k *= 2
    return stages


def measured_instructions_per_pixel(width: int = 4) -> int:
    """Instruction count of our idealised stage shader (for the ablation)."""
    return len(build_bitonic_stage_program(width, 1, 2))
