"""Sorting: the paper's primary computational component.

Section 3.2: "Among these three operations, the sorting operation used
for histogram computation is the most expensive operation" (70-95% of the
total time).  This package provides the paper's GPU PBSN sorter, the
prior GPU bitonic baseline, instrumented CPU quicksort baselines, the
pure comparator-network definitions used for verification, and the
CPU-side merge of the four channel runs.
"""

from .bitonic import (INSTRUCTIONS_PER_PIXEL, bitonic_sort_texture,
                      build_bitonic_stage_program,
                      measured_instructions_per_pixel)
from .cpu import (INSERTION_CUTOFF, InstrumentedCpuSorter, SortStats,
                  optimized_sort, quicksort)
from .floatkeys import (float32_sort_keys, keys_to_float32,
                        split_trailing_nans)
from .gpu_sorter import GpuSorter, pack_channels, unpack_channels
from .radix import RadixSorter, lsd_radix_sort
from .samplesort import VectorizedSampleSorter, sample_sort
from .merge import (merge_comparison_count, merge_sorted_runs,
                    merge_two_sorted)
from .networks import (apply_comparators, bitonic_steps, is_power_of_two,
                       network_comparison_count, next_power_of_two,
                       odd_even_merge_steps, pbsn_step, pbsn_steps,
                       run_network)
from .selection import (gpu_kth_largest, gpu_kth_smallest, quickselect)
from .pbsn import (compute_max, compute_min, compute_row_max,
                   compute_row_min, pbsn_sort_texture, sort_step)

__all__ = [
    "INSERTION_CUTOFF",
    "INSTRUCTIONS_PER_PIXEL",
    "GpuSorter",
    "InstrumentedCpuSorter",
    "RadixSorter",
    "SortStats",
    "VectorizedSampleSorter",
    "apply_comparators",
    "bitonic_sort_texture",
    "bitonic_steps",
    "build_bitonic_stage_program",
    "compute_max",
    "compute_min",
    "compute_row_max",
    "compute_row_min",
    "float32_sort_keys",
    "gpu_kth_largest",
    "gpu_kth_smallest",
    "is_power_of_two",
    "keys_to_float32",
    "lsd_radix_sort",
    "measured_instructions_per_pixel",
    "merge_comparison_count",
    "merge_sorted_runs",
    "merge_two_sorted",
    "network_comparison_count",
    "next_power_of_two",
    "odd_even_merge_steps",
    "optimized_sort",
    "pack_channels",
    "pbsn_sort_texture",
    "pbsn_step",
    "pbsn_steps",
    "quickselect",
    "quicksort",
    "run_network",
    "sample_sort",
    "sort_step",
    "split_trailing_nans",
    "unpack_channels",
]
