"""Pure comparator-network definitions.

The GPU sorters in this package execute sorting *networks*: fixed,
data-oblivious schedules of compare-and-swap operations (Section 4.3).
This module defines those schedules independently of any execution engine
so they can be verified directly — e.g. with the 0-1 principle, which
states that a comparator network sorts all inputs iff it sorts all
0/1 inputs.

Two networks are provided:

* the **periodic balanced sorting network** (PBSN, Dowd et al. 1989) the
  paper builds its sorter on: ``log n`` identical stages, each of
  ``log n`` steps; the step with block size ``B`` compares position ``i``
  of every block with its mirror ``B - 1 - i`` and routes the minimum to
  the lower index;
* **Batcher's bitonic network**, the prior GPU sorting approach
  (Purcell et al. [40], Kipfer et al. [28]) used as a baseline.

All schedules require ``n`` to be a power of two; callers pad with
``+inf`` sentinels (see :mod:`repro.sorting.gpu_sorter`).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..errors import SortError

Comparator = tuple[int, int]
"""A compare-and-swap ``(lo, hi)``: after it, ``a[lo] <= a[hi]``."""


def is_power_of_two(n: int) -> bool:
    """Whether ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n`` (n must be positive)."""
    if n <= 0:
        raise SortError(f"n must be positive, got {n}")
    return 1 << (n - 1).bit_length()


def _require_pow2(n: int) -> None:
    if not is_power_of_two(n):
        raise SortError(f"sorting networks require a power-of-two size, got {n}")


def pbsn_step(n: int, block_size: int) -> list[Comparator]:
    """Comparators of one PBSN step with the given block size.

    Every block of ``block_size`` consecutive positions performs the
    mirror comparison ``i  <->  block_size - 1 - i`` with the minimum
    stored at the lower position (the paper's Routine 4.4 semantics).
    """
    _require_pow2(n)
    if not is_power_of_two(block_size) or not 2 <= block_size <= n:
        raise SortError(f"invalid block size {block_size} for n={n}")
    comparators = []
    for start in range(0, n, block_size):
        for i in range(block_size // 2):
            comparators.append((start + i, start + block_size - 1 - i))
    return comparators


def pbsn_steps(n: int) -> Iterator[list[Comparator]]:
    """All steps of the full PBSN in execution order.

    ``log n`` stages (Routine 4.3, line 4), each running block sizes
    ``n, n/2, ..., 2`` (line 6).  Yields one comparator list per step;
    the total is ``log^2 n`` steps.
    """
    _require_pow2(n)
    log_n = n.bit_length() - 1
    for _stage in range(log_n):
        block = n
        while block >= 2:
            yield pbsn_step(n, block)
            block //= 2


def bitonic_steps(n: int) -> Iterator[list[Comparator]]:
    """All steps of Batcher's bitonic sorting network in execution order.

    The classic data-oblivious formulation: for each merge size ``k`` the
    sub-steps ``j = k/2, k/4, ..., 1`` compare ``i`` with ``i ^ j``; the
    direction alternates with ``i & k`` so every comparator is emitted in
    ``(lo, hi)`` normal form.  Total: ``log n (log n + 1) / 2`` steps.
    """
    _require_pow2(n)
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            step: list[Comparator] = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    if i & k:
                        step.append((partner, i))
                    else:
                        step.append((i, partner))
            yield step
            j //= 2
        k *= 2


def odd_even_merge_steps(n: int) -> Iterator[list[Comparator]]:
    """Batcher's odd-even merge sorting network in execution order.

    The third classic data-oblivious network, underlying Kipfer et al.'s
    "PDS" GPU sorter [28] that the paper's related work discusses.  Same
    ``log n (log n + 1) / 2`` step count as bitonic but with fewer
    comparators per step at the larger strides.

    Standard iterative formulation: for each phase size ``p = 1, 2, 4,
    ...`` and stride ``k = p, p/2, ..., 1``, compare ``i`` with ``i + k``
    for the indices where ``(i & p) == (i mod 2k decides)`` — emitted
    here via the classic Knuth/Batcher index conditions.
    """
    _require_pow2(n)
    p = 1
    while p < n:
        k = p
        while k >= 1:
            step: list[Comparator] = []
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        step.append((i + j, i + j + k))
            if step:
                yield step
            k //= 2
        p *= 2


def apply_comparators(values: Sequence[float] | np.ndarray,
                      comparators: Sequence[Comparator]) -> np.ndarray:
    """Apply one parallel step of comparators to a copy of ``values``.

    Raises :class:`SortError` if any position participates in more than
    one comparator of the step (a step must be a matching).
    """
    arr = np.array(values, dtype=np.float64)
    seen: set[int] = set()
    for lo, hi in comparators:
        if lo in seen or hi in seen:
            raise SortError(
                f"comparator ({lo}, {hi}) reuses a position within one step")
        seen.add(lo)
        seen.add(hi)
        if arr[lo] > arr[hi]:
            arr[lo], arr[hi] = arr[hi], arr[lo]
    return arr


def run_network(values: Sequence[float] | np.ndarray,
                steps: Iterator[list[Comparator]]) -> np.ndarray:
    """Run a full comparator network over ``values`` and return the result."""
    arr = np.array(values, dtype=np.float64)
    for step in steps:
        arr = apply_comparators(arr, step)
    return arr


def network_comparison_count(n: int, network: str = "pbsn") -> int:
    """Total comparators executed by a network on ``n`` = 2^k keys.

    For PBSN this is ``(n/2) log^2 n`` — the figure behind the paper's
    Section 4.5 cost analysis.  For bitonic it is
    ``(n/4) log n (log n + 1)``.
    """
    _require_pow2(n)
    log_n = n.bit_length() - 1
    if network == "pbsn":
        return (n // 2) * log_n * log_n
    if network == "bitonic":
        return (n // 4) * log_n * (log_n + 1)
    raise SortError(f"unknown network {network!r}")
