"""The paper's GPU sorting algorithm: PBSN via rasterization (Section 4).

This module is a line-for-line implementation of Routines 4.2-4.4 on the
simulated device: the comparator *mapping* of each step is expressed as
the texture coordinates of rendered quads, and the comparators themselves
execute as ``GL_MIN`` / ``GL_MAX`` blending.  All four RGBA channels are
compared simultaneously by every blend, which is what makes the
four-sequences-in-parallel trick of Section 4.4 free.

Data layout
-----------
A channel holds ``n = W * H`` values in row-major order: the value at
linear position ``i`` lives at texel ``(row, col) = (i // W, i % W)``.
The step with block size ``B`` pairs ``i`` with ``B - 1 - i`` inside each
aligned block, which in texture space is:

* ``B <= W`` — blocks are column ranges inside each row ("row blocks");
  the mirror is a horizontal flip of the block (Figure 2, left);
* ``B > W``  — blocks span ``B / W`` whole rows; the mirror flips the
  block both vertically *and* horizontally (Figure 2, right;
  Routine 4.2's reversed coordinates on both axes).
"""

from __future__ import annotations

from ..errors import SortError
from ..gpu.blend import BlendOp
from ..gpu.device import GpuDevice
from ..gpu.texture import Texture2D
from .networks import is_power_of_two


def compute_row_min(device: GpuDevice, tex: Texture2D,
                    offset: int, block_size: int, height: int) -> None:
    """``ComputeRowMin``: store per-row mirror minima of one row block.

    For every row, columns ``[offset, offset + B/2)`` receive
    ``min(value, mirror)`` where the mirror of column ``c`` is
    ``2*offset + B - 1 - c``.
    """
    half = block_size // 2
    device.set_blend(BlendOp.MIN)
    device.draw_quad(
        tex,
        dst_rect=(offset, 0, offset + half, height),
        tex_rect=(offset + block_size, 0, offset + half, height),
        label="row_min")


def compute_row_max(device: GpuDevice, tex: Texture2D,
                    offset: int, block_size: int, height: int) -> None:
    """``ComputeRowMax``: store per-row mirror maxima of one row block."""
    half = block_size // 2
    device.set_blend(BlendOp.MAX)
    device.draw_quad(
        tex,
        dst_rect=(offset + half, 0, offset + block_size, height),
        tex_rect=(offset + half, 0, offset, height),
        label="row_max")


def compute_min(device: GpuDevice, tex: Texture2D,
                offset: int, width: int, block_height: int) -> None:
    """Routine 4.2 (``ComputeMin``): mirror minima of one multi-row block.

    The block occupies rows ``[offset, offset + block_height)``; its first
    half receives the minimum against the vertically-and-horizontally
    flipped second half.
    """
    half = block_height // 2
    device.set_blend(BlendOp.MIN)
    device.draw_quad(
        tex,
        dst_rect=(0, offset, width, offset + half),
        tex_rect=(width, offset + block_height, 0, offset + half),
        label="min")


def compute_max(device: GpuDevice, tex: Texture2D,
                offset: int, width: int, block_height: int) -> None:
    """``ComputeMax``: mirror maxima of one multi-row block."""
    half = block_height // 2
    device.set_blend(BlendOp.MAX)
    device.draw_quad(
        tex,
        dst_rect=(0, offset + half, width, offset + block_height),
        tex_rect=(width, offset + half, 0, offset),
        label="max")


def sort_step(device: GpuDevice, tex: Texture2D,
              width: int, height: int, block_size: int) -> None:
    """Routine 4.4 (``SortStep``): one PBSN step over the whole texture.

    Dispatches to the row-block case (``block_size <= width``) or the
    multi-row case, exactly as the paper's two-case optimisation does.
    """
    if block_size <= width:
        num_row_blocks = width // block_size
        for i in range(num_row_blocks):
            offset = i * block_size
            compute_row_min(device, tex, offset, block_size, height)
            compute_row_max(device, tex, offset, block_size, height)
    else:
        block_height = block_size // width
        num_blocks = (width * height) // block_size
        for i in range(num_blocks):
            offset = i * block_height
            compute_min(device, tex, offset, width, block_height)
            compute_max(device, tex, offset, width, block_height)


def pbsn_sort_texture(device: GpuDevice, tex: Texture2D) -> None:
    """Routine 4.3 (``PBSN``): sort all four channels of ``tex`` in place.

    Runs ``log n`` stages of ``log n`` steps.  Each step renders into the
    frame buffer and copies the result back into the texture (line 8).
    The caller must already have bound a frame buffer of the texture's
    size and uploaded the data; this routine performs only GPU-side work,
    leaving the final readback (line 11) to the caller so transfer costs
    stay visible at the call site.
    """
    width, height = tex.width, tex.height
    n = width * height
    if not (is_power_of_two(width) and is_power_of_two(height)):
        raise SortError(
            f"PBSN requires power-of-two texture dimensions, got {width}x{height}")
    fb = device.framebuffer
    if fb is None or (fb.width, fb.height) != (width, height):
        raise SortError("bind a frame buffer matching the texture before sorting")
    if n < 2:
        return

    log_n = n.bit_length() - 1
    device.copy_texture_to_framebuffer(tex)
    for _stage in range(log_n):
        block = n
        while block >= 2:
            sort_step(device, tex, width, height, block)
            device.copy_framebuffer_to_texture(tex)
            block //= 2
