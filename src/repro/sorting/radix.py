"""LSD radix sort on canonicalized float32 bit patterns (``cpu-radix``).

The 2026-backend counterpart to the paper's PBSN: where the GPU sorter
spends ``O(n log^2 n)`` comparator passes, radix sort does two stable
counting passes over 16-bit digits of the order-preserving uint32 keys
from :mod:`.floatkeys` — ``O(n)`` with NumPy doing each pass as one
stable ``argsort`` over a uint16 digit array (NumPy's stable sort on
small integers is itself a counting sort).  The keys themselves are
permuted between passes rather than an index array: gathering 4-byte
keys is one indirection per element where an order array would cost
two, and measures ~2x faster.

Negative values, ``-0.0`` and NaNs are handled explicitly: the key
transform gives negatives/zeros the right total order, and NaNs are
split out before keying and re-appended at the end, matching
``np.sort``'s NaN placement.

Batching: :meth:`RadixSorter.sort_batch` packs the window index into
the high bits of a uint64 combined key, so a batch of windows costs
one radix sort over the combined keys instead of one Python round-trip
per window — the windows come out contiguous and internally sorted.
"""

from __future__ import annotations

import numpy as np

from ..errors import SortError
from .floatkeys import float32_sort_keys, keys_to_float32, split_trailing_nans

__all__ = ["RadixSorter", "lsd_radix_sort"]

#: 16-bit digits: two passes cover a uint32 key.
_DIGIT_BITS = 16
_DIGIT_MASK = 0xFFFF


def _direct_digit_passes(keys: np.ndarray, total_bits: int) -> np.ndarray:
    """Sort integer ``keys`` ascending by stable LSD digit passes."""
    for shift in range(0, total_bits, _DIGIT_BITS):
        digits = ((keys >> shift) & _DIGIT_MASK).astype(np.uint16)
        keys = keys[np.argsort(digits, kind="stable")]
    return keys


def lsd_radix_sort(values: np.ndarray) -> np.ndarray:
    """Sort a 1-D float32 array ascending via LSD radix on its keys.

    Returns a new array; NaNs (any sign/payload) come last in input
    order, everything else in IEEE total order with ``-0.0`` before
    ``+0.0``.
    """
    arr = np.ascontiguousarray(values, dtype=np.float32).ravel()
    if arr.size < 2:
        return arr.copy()
    finite, nans = split_trailing_nans(arr)
    keys = _direct_digit_passes(float32_sort_keys(finite), 32)
    out = keys_to_float32(keys)
    if nans.size:
        out = np.concatenate([out, nans])
    return out


class RadixSorter:
    """CPU radix backend with the engine's sorter interface.

    Attributes
    ----------
    last_n:
        Size of the most recent sort (batch total after ``sort_batch``).
    total_elements:
        Elements sorted since construction.
    """

    name = "cpu-radix"
    #: Degradation target used by :func:`repro.backends.cpu_fallback_for`
    #: — answers are identical on the quicksort baseline, so a faulting
    #: shard can swap this backend out without touching any guarantee.
    degrades_to = "cpu"

    def __init__(self):
        self.last_n = 0
        self.total_elements = 0

    def sort(self, values: np.ndarray) -> np.ndarray:
        """Sort one window ascending, recording sizes."""
        arr = np.asarray(values, dtype=np.float32)
        if arr.ndim != 1:
            raise SortError(f"expected a 1-D array, got shape {arr.shape}")
        self.last_n = int(arr.size)
        self.total_elements += self.last_n
        return lsd_radix_sort(arr)

    def sort_batch(self, windows: list[np.ndarray]) -> list[np.ndarray]:
        """Sort several windows in one combined radix pass.

        Window membership becomes the most significant digits of a
        uint64 combined key: after the passes the windows sit
        contiguously in index order, each already sorted within itself.
        """
        arrays = []
        for window in windows:
            arr = np.asarray(window, dtype=np.float32).ravel()
            if np.asarray(window).ndim > 1:
                raise SortError(
                    f"expected 1-D windows, got shape {np.asarray(window).shape}")
            arrays.append(arr)
        total = sum(int(a.size) for a in arrays)
        if len(arrays) < 2 or total < 2:
            results = [self.sort(a) for a in arrays]
            self.last_n = total
            return results

        finites, nan_tails = [], []
        for arr in arrays:
            finite, nans = split_trailing_nans(arr)
            finites.append(finite)
            nan_tails.append(nans)
        flat = np.concatenate(finites) if finites else np.empty(0, np.float32)
        window_ids = np.repeat(np.arange(len(finites), dtype=np.uint64),
                               [f.size for f in finites])
        combined = (window_ids << np.uint64(32)) \
            | float32_sort_keys(flat).astype(np.uint64)
        id_bits = max(len(finites) - 1, 1).bit_length()
        combined = _direct_digit_passes(combined, 32 + id_bits)
        merged = keys_to_float32(
            (combined & np.uint64(0xFFFFFFFF)).astype(np.uint32))

        bounds = np.cumsum([f.size for f in finites])
        results = []
        start = 0
        for stop, nans in zip(bounds, nan_tails):
            part = merged[start:stop]
            if nans.size:
                part = np.concatenate([part, nans])
            results.append(part)
            start = stop
        self.last_n = total
        self.total_elements += total
        return results
