"""The frame buffer of the simulated GPU.

The frame buffer is the render target of every pass: a ``H x W`` grid of
RGBA float32 pixels plus the current blend state.  The paper renders
full-screen or block-sized quads into it with ``GL_MIN`` / ``GL_MAX``
blending enabled (Section 4.2.2) and copies it back into the source
texture between sorting steps (Routine 4.3, line 8).
"""

from __future__ import annotations

import numpy as np

from ..errors import TextureError
from .blend import BlendOp
from .texture import CHANNELS


class FrameBuffer:
    """A render target with attached blend state.

    Parameters
    ----------
    width, height:
        Dimensions in pixels.
    """

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise TextureError(
                f"frame buffer dimensions must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self._pixels = np.zeros((self.height, self.width, CHANNELS),
                                dtype=np.float32)
        self.blend_op = BlendOp.REPLACE

    @property
    def nbytes(self) -> int:
        """Size of the color buffer in video memory."""
        return self._pixels.nbytes

    def set_blend(self, op: BlendOp) -> None:
        """Set the blend equation used by subsequent passes."""
        self.blend_op = BlendOp(op)

    def pixels(self) -> np.ndarray:
        """Return the live pixel array (internal use by the rasterizer)."""
        return self._pixels

    def read(self) -> np.ndarray:
        """Return a copy of the pixel array (device-side access)."""
        return self._pixels.copy()

    def clear(self, value: float = 0.0) -> None:
        """Clear the color buffer to ``value`` in every channel."""
        self._pixels.fill(np.float32(value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FrameBuffer({self.width}x{self.height}, blend={self.blend_op.value})"
