"""The CPU <-> GPU data bus.

Section 4.1 of the paper: data travels between host memory and video
memory over an AGP 8X / PCI-X bus whose *observed* bandwidth (~800 MB/s)
is far below both the CPU's and the GPU's memory bandwidth.  The paper's
design rule — stream the data to the GPU once, compute, read back once —
only makes sense when every transfer is billed; this class is where the
billing happens.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import BusError
from ..obs import collector
from .counters import PerfCounters
from .presets import AGP_8X, BusSpec


class Bus:
    """Models the host <-> device interconnect.

    Parameters
    ----------
    spec:
        Bandwidth/latency parameters; defaults to the paper's AGP 8X.
    counters:
        Perf counters to record transfers into.
    fault_injector:
        Optional :class:`~repro.gpu.faults.FaultInjector` consulted
        before every transfer; ``None`` (the default) is a no-op.  An
        injected :class:`BusError` fires *before* any bytes move, so a
        retried transfer is indistinguishable from a first attempt.
    """

    def __init__(self, spec: BusSpec = AGP_8X,
                 counters: PerfCounters | None = None,
                 fault_injector=None):
        self.spec = spec
        self.counters = counters if counters is not None else PerfCounters()
        self.fault_injector = fault_injector

    def upload(self, data: np.ndarray) -> np.ndarray:
        """Move ``data`` host -> device; returns the device-side copy."""
        if data.size == 0:
            raise BusError("refusing to upload an empty array")
        if self.fault_injector is not None:
            self.fault_injector.check("upload")
        col = collector()
        began = time.perf_counter() if col.enabled else 0.0
        device_copy = np.ascontiguousarray(data, dtype=np.float32)
        self.counters.record_upload(device_copy.nbytes)
        if col.enabled:
            col.record("gpu.upload", time.perf_counter() - began,
                       bytes=device_copy.nbytes,
                       modelled=self.transfer_time(device_copy.nbytes))
        return device_copy

    def readback(self, data: np.ndarray) -> np.ndarray:
        """Move ``data`` device -> host; returns the host-side copy."""
        if data.size == 0:
            raise BusError("refusing to read back an empty array")
        if self.fault_injector is not None:
            self.fault_injector.check("readback")
        col = collector()
        began = time.perf_counter() if col.enabled else 0.0
        host_copy = np.array(data, dtype=np.float32, copy=True)
        self.counters.record_readback(host_copy.nbytes)
        if col.enabled:
            col.record("gpu.readback", time.perf_counter() - began,
                       bytes=host_copy.nbytes,
                       modelled=self.transfer_time(host_copy.nbytes))
        return host_copy

    def transfer_time(self, nbytes: int, transfers: int = 1) -> float:
        """Modelled seconds to move ``nbytes`` in ``transfers`` DMA operations."""
        if nbytes < 0 or transfers < 0:
            raise BusError(f"negative transfer: {nbytes} bytes / {transfers}")
        return nbytes / self.spec.effective_bandwidth_bytes + \
            transfers * self.spec.latency_s
