"""A minimal programmable fragment pipeline.

The paper contrasts two ways of computing on a 2004 GPU:

* **fixed-function blending** — what its own sorter uses: comparator
  mapping via texture coordinates, comparison via GL_MIN/GL_MAX;
* **fragment programs** — what the prior GPU sorters (Purcell et al.
  [40], Kipfer et al. [28]) use: every pixel runs a small shader that
  computes its partner's address, fetches both values, picks a direction
  and writes the result.  Section 4.5 counts "at least 53 instructions
  per pixel" for the bitonic comparator stage.

This module implements that second path faithfully enough to *measure*
instruction counts instead of assuming them: a tiny SIMD instruction set
(ARB-fragment-program flavoured) interpreted over whole passes at once,
with an exact per-pixel instruction tally.  The bitonic baseline in
:mod:`repro.sorting.bitonic` compiles to it.

Instruction set (all operate on 4-wide RGBA registers, SIMD across the
full pass, matching NV30/NV40-era fragment ISA semantics):

=========  =====================================================
``MOV``    dst := src
``ADD``    dst := a + b
``MUL``    dst := a * b
``MAD``    dst := a * b + c
``FLR``    dst := floor(a)
``FRC``    dst := a - floor(a)
``MIN``    dst := min(a, b)
``MAX``    dst := max(a, b)
``SGE``    dst := (a >= b) ? 1 : 0
``SLT``    dst := (a < b) ? 1 : 0
``CMP``    dst := (a < 0) ? b : c
``TEX``    dst := texture[clamp(floor(v)), clamp(floor(u))]
           (dependent fetch; u and v are registers, channel-uniform)
=========  =====================================================

Besides ``position`` (x in channel 0, y in channel 1), the pre-loaded
registers ``pos_x`` and ``pos_y`` broadcast the pixel coordinates across
all four channels — modelling the hardware's free swizzles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import GpuError
from .counters import PerfCounters
from .texture import BYTES_PER_TEXEL, CHANNELS, Texture2D


@dataclass(frozen=True)
class Instruction:
    """One fragment-program instruction in normal form."""

    op: str
    dst: str
    args: tuple[str, ...] = ()


@dataclass
class FragmentProgram:
    """A straight-line fragment program (no branches — period hardware).

    Registers are named strings; ``"position"`` is pre-loaded with each
    fragment's (x, y, 0, 0) pixel coordinates and ``"output"`` is written
    to the render target after the last instruction.  Constants are
    registered by name via :meth:`constant`.
    """

    instructions: list[Instruction] = field(default_factory=list)
    constants: dict[str, np.ndarray] = field(default_factory=dict)

    _VALID_OPS = {"MOV", "ADD", "MUL", "MAD", "FLR", "FRC", "MIN", "MAX",
                  "SGE", "SLT", "CMP", "TEX"}
    _ARITY = {"MOV": 1, "ADD": 2, "MUL": 2, "MAD": 3, "FLR": 1, "FRC": 1,
              "MIN": 2, "MAX": 2, "SGE": 2, "SLT": 2, "CMP": 3, "TEX": 2}

    def constant(self, name: str, value) -> str:
        """Register a broadcast constant; returns its register name."""
        vec = np.asarray(value, dtype=np.float32).ravel()
        if vec.size == 1:
            vec = np.repeat(vec, CHANNELS)
        if vec.size != CHANNELS:
            raise GpuError(f"constant {name!r} must be scalar or 4-wide")
        self.constants[name] = vec
        return name

    def emit(self, op: str, dst: str, *args: str) -> None:
        """Append one instruction (validated)."""
        if op not in self._VALID_OPS:
            raise GpuError(f"unknown fragment op {op!r}")
        if len(args) != self._ARITY[op]:
            raise GpuError(
                f"{op} takes {self._ARITY[op]} operands, got {len(args)}")
        self.instructions.append(Instruction(op, dst, args))

    def __len__(self) -> int:
        """Instruction count per pixel."""
        return len(self.instructions)


def run_fragment_program(program: FragmentProgram, texture: Texture2D,
                         counters: PerfCounters | None = None,
                         label: str = "shader") -> np.ndarray:
    """Execute ``program`` for every pixel of a full-screen pass.

    Returns the ``(H, W, 4)`` output written to the render target.  The
    execution is SIMD across the whole pass (every register holds one
    value per pixel), exactly how the hardware's fragment array behaves.

    Counter accounting: one pass, one fragment per pixel, and — unlike
    blending passes — ``len(program)`` instructions per fragment, stored
    in ``pass_breakdown`` under ``f"{label}:instructions"``.
    """
    height, width = texture.height, texture.width
    pixels = height * width
    xs, ys = np.meshgrid(np.arange(width, dtype=np.float32),
                         np.arange(height, dtype=np.float32))
    zeros = np.zeros((height, width), dtype=np.float32)
    broadcast_x = np.repeat(xs[..., None], CHANNELS, axis=-1)
    broadcast_y = np.repeat(ys[..., None], CHANNELS, axis=-1)
    registers: dict[str, np.ndarray] = {
        "position": np.stack([xs, ys, zeros, zeros], axis=-1),
        "pos_x": broadcast_x,
        "pos_y": broadcast_y,
    }
    for name, value in program.constants.items():
        registers[name] = np.broadcast_to(
            value, (height, width, CHANNELS)).astype(np.float32)

    tex_data = texture.view()
    texels_fetched = 0

    def read(name: str) -> np.ndarray:
        try:
            return registers[name]
        except KeyError:
            raise GpuError(f"register {name!r} read before write") from None

    for inst in program.instructions:
        if inst.op == "TEX":
            u = read(inst.args[0])[..., 0]
            v = read(inst.args[1])[..., 0]
            col = np.clip(np.floor(u).astype(np.intp), 0, width - 1)
            row = np.clip(np.floor(v).astype(np.intp), 0, height - 1)
            registers[inst.dst] = tex_data[row, col, :]
            texels_fetched += pixels
        elif inst.op == "MOV":
            registers[inst.dst] = read(inst.args[0]).copy()
        elif inst.op == "ADD":
            registers[inst.dst] = read(inst.args[0]) + read(inst.args[1])
        elif inst.op == "MUL":
            registers[inst.dst] = read(inst.args[0]) * read(inst.args[1])
        elif inst.op == "MAD":
            registers[inst.dst] = (read(inst.args[0]) * read(inst.args[1])
                                   + read(inst.args[2]))
        elif inst.op == "FLR":
            registers[inst.dst] = np.floor(read(inst.args[0]))
        elif inst.op == "FRC":
            a = read(inst.args[0])
            registers[inst.dst] = a - np.floor(a)
        elif inst.op == "MIN":
            registers[inst.dst] = np.minimum(read(inst.args[0]),
                                             read(inst.args[1]))
        elif inst.op == "MAX":
            registers[inst.dst] = np.maximum(read(inst.args[0]),
                                             read(inst.args[1]))
        elif inst.op == "SGE":
            registers[inst.dst] = (read(inst.args[0])
                                   >= read(inst.args[1])).astype(np.float32)
        elif inst.op == "SLT":
            registers[inst.dst] = (read(inst.args[0])
                                   < read(inst.args[1])).astype(np.float32)
        elif inst.op == "CMP":
            registers[inst.dst] = np.where(read(inst.args[0]) < 0,
                                           read(inst.args[1]),
                                           read(inst.args[2]))
        else:  # pragma: no cover - emit() validates ops
            raise GpuError(f"unknown fragment op {inst.op!r}")

    output = registers.get("output")
    if output is None:
        raise GpuError("fragment program never wrote 'output'")

    if counters is not None:
        counters.passes += 1
        counters.fragments += pixels
        counters.texels_fetched += texels_fetched
        counters.bytes_read += texels_fetched * BYTES_PER_TEXEL
        counters.bytes_written += pixels * BYTES_PER_TEXEL
        counters.pass_breakdown[label] = \
            counters.pass_breakdown.get(label, 0) + 1
        key = f"{label}:instructions"
        counters.pass_breakdown[key] = (counters.pass_breakdown.get(key, 0)
                                        + len(program) * pixels)
    return np.array(output, dtype=np.float32)
