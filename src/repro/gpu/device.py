"""The simulated GPU device.

:class:`GpuDevice` bundles everything an algorithm needs to "render": a
video-memory budget holding :class:`~repro.gpu.texture.Texture2D` objects,
one bound :class:`~repro.gpu.framebuffer.FrameBuffer`, the blend state,
the CPU<->GPU :class:`~repro.gpu.bus.Bus` and a shared set of
:class:`~repro.gpu.counters.PerfCounters`.

The API intentionally mirrors the primitive operations the paper's
pseudo-code uses:

========================  =====================================
Paper operation           Device method
==========================  ===================================
transfer texture to GPU     :meth:`upload_texture`
``Copy`` (Routine 4.1)      :meth:`copy_texture_to_framebuffer`
enable blending + DrawQuad  :meth:`set_blend` + :meth:`draw_quad`
copy frame buffer to tex    :meth:`copy_framebuffer_to_texture`
readback sorted data        :meth:`readback_texture` / :meth:`readback_framebuffer`
==========================  ===================================
"""

from __future__ import annotations

import numpy as np

from ..errors import GpuError, TextureError, VideoMemoryError
from ..obs import collector
from .blend import BlendOp
from .bus import Bus
from .counters import PerfCounters
from .framebuffer import FrameBuffer
from .presets import AGP_8X, GEFORCE_6800_ULTRA, BusSpec, GpuSpec
from .rasterizer import copy_texture, draw_quad
from .texture import BYTES_PER_TEXEL, CHANNELS, Texture2D
from .timing import GpuCostModel, GpuTimeBreakdown


class GpuDevice:
    """A software model of a programmable rasterization GPU.

    Parameters
    ----------
    spec:
        Hardware description used for validation limits (texture size,
        video memory) and for the cost model.
    bus_spec:
        Interconnect description used for transfer-time modelling.
    fault_injector:
        Optional :class:`~repro.gpu.faults.FaultInjector`; when set,
        transfers and render passes may raise injected transient
        :class:`~repro.errors.BusError` /
        :class:`~repro.errors.RasterizationError` per its plan.  The
        default ``None`` changes nothing.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.gpu import GpuDevice
    >>> dev = GpuDevice()
    >>> tex = dev.upload_texture(np.zeros((2, 2, 4), dtype=np.float32))
    >>> fb = dev.bind_framebuffer(2, 2)
    >>> dev.copy_texture_to_framebuffer(tex)
    4
    """

    def __init__(self, spec: GpuSpec = GEFORCE_6800_ULTRA,
                 bus_spec: BusSpec = AGP_8X,
                 fault_injector=None):
        self.spec = spec
        self.counters = PerfCounters()
        self.fault_injector = fault_injector
        self.bus = Bus(bus_spec, self.counters, fault_injector)
        self.cost_model = GpuCostModel(spec, bus_spec)
        self.framebuffer: FrameBuffer | None = None
        self._textures: dict[str, Texture2D] = {}
        self._texture_seq = 0
        #: (label, blend) -> [passes, fragments] accumulated since the
        #: last transfer; see :meth:`flush_pass_spans`.
        self._pass_acc: dict[tuple[str, str], list] = {}

    # ------------------------------------------------------------------
    # video memory management
    # ------------------------------------------------------------------
    @property
    def video_memory_used(self) -> int:
        """Bytes of simulated video memory currently allocated."""
        used = sum(t.nbytes for t in self._textures.values())
        if self.framebuffer is not None:
            used += self.framebuffer.nbytes
        return used

    def _check_budget(self, extra_bytes: int) -> None:
        if self.video_memory_used + extra_bytes > self.spec.video_memory_bytes:
            raise VideoMemoryError(
                f"allocation of {extra_bytes} bytes exceeds the "
                f"{self.spec.video_memory_bytes}-byte video memory "
                f"({self.video_memory_used} in use)")

    def create_texture(self, width: int, height: int,
                       name: str | None = None) -> Texture2D:
        """Allocate an empty texture in video memory."""
        if max(width, height) > self.spec.max_texture_dim:
            raise TextureError(
                f"{width}x{height} exceeds the device texture limit of "
                f"{self.spec.max_texture_dim}")
        self._check_budget(width * height * BYTES_PER_TEXEL)
        if name is None:
            name = f"tex{self._texture_seq}"
            self._texture_seq += 1
        if name in self._textures:
            raise TextureError(f"texture {name!r} already exists")
        tex = Texture2D(width, height, name=name)
        self._textures[name] = tex
        return tex

    def delete_texture(self, texture: Texture2D) -> None:
        """Free a texture allocated with :meth:`create_texture`."""
        if self._textures.get(texture.name) is not texture:
            raise TextureError(f"texture {texture.name!r} is not resident")
        del self._textures[texture.name]

    # ------------------------------------------------------------------
    # host <-> device transfers
    # ------------------------------------------------------------------
    def upload_texture(self, data: np.ndarray,
                       name: str | None = None) -> Texture2D:
        """Transfer host data into a newly allocated texture.

        ``data`` must have shape ``(height, width, 4)``.
        """
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 3 or data.shape[2] != CHANNELS:
            raise TextureError(
                f"upload expects (H, W, {CHANNELS}) data, got {data.shape}")
        height, width = data.shape[:2]
        tex = self.create_texture(width, height, name)
        try:
            tex.write(self.bus.upload(data).reshape(data.shape))
        except Exception:
            # A failed transfer must not leak the just-allocated texture,
            # or retries would exhaust the video-memory budget.
            self.delete_texture(tex)
            raise
        return tex

    def readback_texture(self, texture: Texture2D) -> np.ndarray:
        """Transfer a texture's contents back to the host."""
        self.flush_pass_spans()
        return self.bus.readback(texture.view()).reshape(texture.shape)

    def readback_framebuffer(self) -> np.ndarray:
        """Transfer the bound frame buffer's pixels back to the host."""
        fb = self._require_framebuffer()
        self.flush_pass_spans()
        return self.bus.readback(fb.pixels()).reshape(
            (fb.height, fb.width, CHANNELS))

    # ------------------------------------------------------------------
    # rendering state and passes
    # ------------------------------------------------------------------
    def bind_framebuffer(self, width: int, height: int) -> FrameBuffer:
        """Create and bind a render target of the given size."""
        self._check_budget(width * height * BYTES_PER_TEXEL)
        self.framebuffer = FrameBuffer(width, height)
        return self.framebuffer

    def _require_framebuffer(self) -> FrameBuffer:
        if self.framebuffer is None:
            raise GpuError("no frame buffer bound; call bind_framebuffer first")
        return self.framebuffer

    def set_blend(self, op: BlendOp) -> None:
        """Set the blend equation (``GL_MIN`` / ``GL_MAX`` / disabled)."""
        self._require_framebuffer().set_blend(op)

    def draw_quad(self, texture: Texture2D,
                  dst_rect: tuple[float, float, float, float],
                  tex_rect: tuple[float, float, float, float],
                  label: str = "pass") -> int:
        """Render one textured quad under the current blend state."""
        fb = self._require_framebuffer()
        if self.fault_injector is not None:
            self.fault_injector.check("raster")
        fragments = draw_quad(fb, texture, dst_rect, tex_rect, self.counters,
                              label)
        if collector().enabled:
            # A sorting network issues thousands of passes per batch, so
            # per-pass Span objects would blow the <5% overhead budget
            # (bench_obs_overhead.py); accumulate and flush instead.
            acc = self._pass_acc.get((label, fb.blend_op.value))
            if acc is None:
                self._pass_acc[(label, fb.blend_op.value)] = [1, fragments]
            else:
                acc[0] += 1
                acc[1] += fragments
        return fragments

    def copy_texture_to_framebuffer(self, texture: Texture2D) -> int:
        """Routine 4.1: blit ``texture`` into the frame buffer."""
        fb = self._require_framebuffer()
        if self.fault_injector is not None:
            self.fault_injector.check("raster")
        fragments = copy_texture(fb, texture, self.counters)
        if collector().enabled:
            acc = self._pass_acc.get(("copy", "none"))
            if acc is None:
                self._pass_acc[("copy", "none")] = [1, fragments]
            else:
                acc[0] += 1
                acc[1] += fragments
        return fragments

    def flush_pass_spans(self) -> None:
        """Emit one aggregated ``gpu.pass`` span per (label, blend) group.

        The paper's algorithms all follow "upload once, render, read back
        once", so flushing at the transfer boundaries (this is called by
        the readback methods) scopes the aggregation to one logical GPU
        operation.  Pass/fragment totals are exact; the simulated
        rasterization wall time is attributed to the enclosing pipeline
        stage span rather than timed per pass.
        """
        if not self._pass_acc:
            return
        col = collector()
        if col.enabled:
            for (label, blend), (passes, fragments) in self._pass_acc.items():
                col.record("gpu.pass", 0.0, passes=passes,
                           fragments=fragments, label=label, blend=blend)
        self._pass_acc.clear()

    def copy_framebuffer_to_texture(self, texture: Texture2D) -> None:
        """GPU-internal copy of the frame buffer into ``texture``.

        Used between sorting steps (Routine 4.3, line 8).  Production
        implementations realise this with double-buffered render-to-texture
        ("ping-pong"), which the paper's implementation notes ("optimized
        ... using double buffered 16-bit offscreen buffers") and which makes
        the hand-off a surface rebind rather than a data copy.  The cost
        model therefore treats it as free; no counters are charged.
        """
        fb = self._require_framebuffer()
        if (texture.width, texture.height) != (fb.width, fb.height):
            raise TextureError(
                f"frame buffer {fb.width}x{fb.height} does not match texture "
                f"{texture.width}x{texture.height}")
        texture.write(fb.pixels())

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def modelled_time(self, counters: PerfCounters | None = None) -> GpuTimeBreakdown:
        """Modelled execution time of ``counters`` (default: all so far)."""
        return self.cost_model.breakdown(
            counters if counters is not None else self.counters)
