"""Transient-fault injection for the simulated GPU.

"The Graphics Card as a Streaming Computer" (PAPERS.md) treats the GPU
as a co-processor reached over a narrow, failure-prone path: transfers
cross a bus, rendering passes go through a driver, and a production
service has to assume any of those steps can fail *transiently* —
a dropped DMA, a reset rasterizer — without the data being wrong when
the step is retried.  This module supplies that failure model for the
simulator, so the service layer's retry/degradation machinery can be
exercised deterministically:

* a :class:`FaultPlan` describes *when* faults fire — a seeded
  probability per operation class and/or an exact schedule of operation
  indices — and how many may fire in total;
* a :class:`FaultInjector` executes the plan, raising the same typed
  errors a real failure would surface (:class:`~repro.errors.BusError`
  for transfers, :class:`~repro.errors.RasterizationError` for render
  passes) and counting what it injected;
* :class:`~repro.gpu.device.GpuDevice` and :class:`~repro.gpu.bus.Bus`
  accept an injector and consult it before each operation; the default
  is ``None`` — zero overhead, zero behaviour change.

Faults are *transient* by construction: the injector raises before the
simulated operation mutates any state, so a retry of the same operation
(re-upload, re-draw) behaves exactly as if the fault never happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import BusError, RasterizationError

#: Operation classes the injector understands, with the error each one
#: raises when a fault fires.
FAULT_OPS = {
    "upload": BusError,
    "readback": BusError,
    "raster": RasterizationError,
}

#: Errors the service layer treats as retryable GPU faults.  Everything
#: else escaping a dispatch is a bug, not weather.
TRANSIENT_GPU_ERRORS = (BusError, RasterizationError)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative schedule of transient GPU faults.

    Parameters
    ----------
    upload_rate / readback_rate / raster_rate:
        Per-operation fault probability in ``[0, 1)``, drawn from a
        generator seeded with ``seed`` (two injectors built from equal
        plans inject identical fault sequences).
    at:
        Exact faults: a mapping ``op -> indices`` firing on the i-th
        occurrence (0-based) of that operation, independent of the
        random rates.  Useful for pinpoint tests ("fail the second
        readback").
    seed:
        Seed for the probabilistic draws.
    max_faults:
        Stop injecting after this many faults (``None`` = unlimited);
        models a burst of trouble that eventually clears.
    """

    upload_rate: float = 0.0
    readback_rate: float = 0.0
    raster_rate: float = 0.0
    at: dict[str, tuple[int, ...]] = field(default_factory=dict)
    seed: int = 0
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for name in ("upload_rate", "readback_rate", "raster_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        for op in self.at:
            if op not in FAULT_OPS:
                raise ValueError(
                    f"unknown fault op {op!r}; expected one of "
                    f"{sorted(FAULT_OPS)}")

    def rate(self, op: str) -> float:
        """The configured probability for one operation class."""
        return {"upload": self.upload_rate, "readback": self.readback_rate,
                "raster": self.raster_rate}[op]

    @classmethod
    def transfers(cls, rate: float, seed: int = 0,
                  max_faults: int | None = None) -> "FaultPlan":
        """Faults on the bus only (upload + readback), the paper-shaped
        view of the GPU as a co-processor behind an unreliable link."""
        return cls(upload_rate=rate, readback_rate=rate, seed=seed,
                   max_faults=max_faults)

    def reseeded(self, seed: int) -> "FaultPlan":
        """The same plan with a different seed (per-shard injectors)."""
        return FaultPlan(self.upload_rate, self.readback_rate,
                         self.raster_rate, dict(self.at), seed,
                         self.max_faults)


class FaultInjector:
    """Executes a :class:`FaultPlan` against a device's operation stream.

    The device calls :meth:`check` with the operation class before
    performing it; the injector either returns (no fault) or raises the
    operation's typed error.  Counters record both what was attempted
    and what was injected, so tests and metrics can assert exact fault
    arithmetic.

    Examples
    --------
    >>> from repro.gpu.faults import FaultInjector, FaultPlan
    >>> inj = FaultInjector(FaultPlan(at={"upload": (1,)}))
    >>> inj.check("upload")          # first upload: fine
    >>> try:
    ...     inj.check("upload")      # second upload: injected BusError
    ... except Exception as exc:
    ...     print(type(exc).__name__)
    BusError
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        #: operations seen, per class.
        self.op_counts: dict[str, int] = {op: 0 for op in FAULT_OPS}
        #: faults injected, per class.
        self.injected: dict[str, int] = {op: 0 for op in FAULT_OPS}

    @property
    def total_injected(self) -> int:
        """Faults injected so far, across all operation classes."""
        return sum(self.injected.values())

    def check(self, op: str) -> None:
        """Maybe fault the next ``op``; raises its typed transient error."""
        if op not in FAULT_OPS:
            raise ValueError(f"unknown fault op {op!r}")
        index = self.op_counts[op]
        self.op_counts[op] += 1
        scheduled = index in self.plan.at.get(op, ())
        rate = self.plan.rate(op)
        # Always consume one draw per rated op so the fault sequence is a
        # pure function of the plan, not of which ops fired earlier.
        random_hit = rate > 0.0 and self._rng.random() < rate
        if not (scheduled or random_hit):
            return
        if (self.plan.max_faults is not None
                and self.total_injected >= self.plan.max_faults):
            return
        self.injected[op] += 1
        raise FAULT_OPS[op](
            f"injected transient fault: {op} #{index}")
