"""Analytic cost model mapping perf counters to modelled wall-clock time.

This reproduction runs on a CPU, so the *functional* results of every GPU
pass are exact but their wall-clock cost is not that of a GeForce 6800
Ultra.  Following the paper's own analysis (Section 4.5, which derives
"6-7 clock cycles per blending operation" and validates an O(n log^2 n)
extrapolation within a few milliseconds), we convert the simulator's exact
operation counts into estimated seconds on the paper's hardware.

The model charges, per sort / per measured region:

* ``setup``   — fixed invocation overhead (the paper attributes the GPU's
  3x slowdown below n = 16K entirely to constant setup costs);
* ``passes``  — a fixed per-pass cost (draw call + state change);
* ``compute`` — blend throughput: each RGBA pixel blend occupies one of the
  16 fragment pipes for ``cycles_per_blend`` core cycles;
* ``memory``  — bytes moved to/from video memory at the card's bandwidth,
  discounted by the texture-cache hit rate (Section 4.2.1);
* ``transfer``— bus time for uploads/readbacks.

Compute and memory overlap on real hardware, so the on-GPU time is their
maximum; setup, pass overhead and bus transfers are additive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .counters import PerfCounters
from .presets import (AGP_8X, GEFORCE_6800_ULTRA, PENTIUM_IV_3_4GHZ, BusSpec,
                      CpuSpec, GpuSpec)


@dataclass(frozen=True)
class GpuTimeBreakdown:
    """Modelled GPU seconds, split the way Figure 4 splits them."""

    setup: float
    pass_overhead: float
    compute: float
    memory: float
    transfer: float

    @property
    def sort(self) -> float:
        """On-GPU time (everything except bus transfer)."""
        return self.setup + self.pass_overhead + max(self.compute, self.memory)

    @property
    def total(self) -> float:
        """End-to-end time including CPU<->GPU transfers."""
        return self.sort + self.transfer


class GpuCostModel:
    """Estimates GeForce-6800-class execution time from exact op counts."""

    def __init__(self, spec: GpuSpec = GEFORCE_6800_ULTRA,
                 bus: BusSpec = AGP_8X,
                 texture_cache_hit_rate: float = 0.8):
        self.spec = spec
        self.bus = bus
        self.texture_cache_hit_rate = texture_cache_hit_rate

    def breakdown(self, counters: PerfCounters) -> GpuTimeBreakdown:
        """Modelled time for the operations recorded in ``counters``."""
        spec = self.spec
        compute = (counters.blend_ops * spec.cycles_per_blend
                   / (spec.fragment_processors * spec.core_clock_hz))
        effective_reads = counters.bytes_read * (1.0 - self.texture_cache_hit_rate)
        memory = ((effective_reads + counters.bytes_written)
                  / spec.memory_bandwidth_bytes)
        transfer = ((counters.bytes_uploaded + counters.bytes_readback)
                    / self.bus.effective_bandwidth_bytes
                    + (counters.uploads + counters.readbacks) * self.bus.latency_s)
        setup = spec.setup_overhead_s if counters.passes else 0.0
        return GpuTimeBreakdown(
            setup=setup,
            pass_overhead=counters.passes * spec.pass_overhead_s,
            compute=compute,
            memory=memory,
            transfer=transfer,
        )

    def time(self, counters: PerfCounters) -> float:
        """Total modelled seconds (sort + transfer)."""
        return self.breakdown(counters).total


class CpuSortCostModel:
    """Pentium-IV-class quicksort time model (Section 3.2's bottleneck list).

    The paper attributes CPU sorting cost to three terms: retired
    instructions, branch mispredictions (17-cycle penalty on the P4) and
    cache misses (LaMarca & Ladner's analysis: roughly one miss per cache
    block per pass over data that exceeds the cache).  The model exposes
    each term so the benchmarks can print the same decomposition.

    ``speedup`` scales the whole estimate; the paper's "Intel compiler with
    Hyper-Threading" baseline is modelled as the MSVC baseline with a
    constant-factor speedup (threading hides stalls but does not change the
    asymptotics).
    """

    #: average comparisons performed by quicksort: ~2 ln 2 * n log2 n.
    COMPARISON_FACTOR = 1.386

    def __init__(self, spec: CpuSpec = PENTIUM_IV_3_4GHZ, speedup: float = 1.0):
        self.spec = spec
        self.speedup = speedup

    def comparisons(self, n: int) -> float:
        """Expected quicksort comparisons for ``n`` random keys."""
        if n < 2:
            return 0.0
        return self.COMPARISON_FACTOR * n * math.log2(n)

    def cache_misses(self, n: int, element_bytes: int = 4) -> float:
        """LaMarca-Ladner-style miss estimate for quicksort.

        One miss per cache line per partitioning pass over data that does
        not fit in L2; in-cache subproblems incur one cold miss per line.
        """
        spec = self.spec
        lines = n * element_bytes / spec.cache_line_bytes
        in_cache_elements = spec.l2_bytes / element_bytes
        if n <= in_cache_elements:
            return lines
        out_of_cache_passes = math.log2(n / in_cache_elements)
        return lines * (1.0 + out_of_cache_passes)

    def time(self, n: int, element_bytes: int = 4) -> float:
        """Modelled seconds to quicksort ``n`` random keys."""
        spec = self.spec
        comps = self.comparisons(n)
        instr_time = (comps * spec.instructions_per_comparison
                      / (spec.sustained_ipc * spec.clock_hz))
        branch_time = (comps * spec.branch_miss_rate
                       * spec.branch_miss_penalty_cycles / spec.clock_hz)
        cache_time = (self.cache_misses(n, element_bytes)
                      * spec.l2_miss_penalty_cycles / spec.clock_hz)
        return (instr_time + branch_time + cache_time) / self.speedup


#: Model of the paper's MSVC 7.0 ``qsort`` baseline.
CPU_MODEL_MSVC = CpuSortCostModel(speedup=1.0)

#: Model of the paper's Intel-compiler Hyper-Threaded quicksort baseline.
CPU_MODEL_INTEL = CpuSortCostModel(speedup=1.35)


class BitonicFragmentProgramModel:
    """Cost model of the prior GPU bitonic sort (Purcell et al. [40]).

    Section 4.5: the fragment-program bitonic sort executes "at least 53
    instructions per pixel" per comparator stage, versus the 6-7 cycles a
    blend takes in this paper's approach — which is where the
    order-of-magnitude GPU-vs-GPU gap comes from.  The model charges one
    full-screen pass of ``instructions_per_pixel`` single-cycle
    instructions per comparator stage of the bitonic network.
    """

    def __init__(self, spec: GpuSpec = GEFORCE_6800_ULTRA,
                 instructions_per_pixel: float = 53.0):
        self.spec = spec
        self.instructions_per_pixel = instructions_per_pixel

    @staticmethod
    def stages(n: int) -> int:
        """Comparator stages of a bitonic network on ``n`` = 2^k keys."""
        if n < 2:
            return 0
        k = math.ceil(math.log2(n))
        return k * (k + 1) // 2

    def time(self, n: int) -> float:
        """Modelled seconds for the fragment-program bitonic sort of ``n`` keys."""
        if n < 2:
            return 0.0
        pixels = 1 << math.ceil(math.log2(n))
        per_stage = (pixels * self.instructions_per_pixel
                     / (self.spec.fragment_processors * self.spec.core_clock_hz))
        return (self.spec.setup_overhead_s
                + self.stages(n) * (per_stage + self.spec.pass_overhead_s))
