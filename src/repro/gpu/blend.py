"""Blending equations of the simulated fragment pipeline.

The paper's comparators are implemented with OpenGL blending (Section
4.2.2): the incoming fragment color (a texel fetched via texture mapping)
is combined with the destination pixel already in the frame buffer using a
*conditional assignment* — ``GL_MIN`` or ``GL_MAX``.  Both operate on all
four RGBA channels simultaneously, which is what lets the paper sort four
sequences in parallel.

``REPLACE`` models blending disabled (plain texture copy, Routine 4.1).
"""

from __future__ import annotations

import enum
from typing import Callable

import numpy as np

from ..errors import BlendStateError


class BlendOp(enum.Enum):
    """Supported blend equations."""

    #: Blending disabled: destination := source (Routine 4.1 ``Copy``).
    REPLACE = "replace"
    #: destination := min(source, destination)  (``GL_MIN``).
    MIN = "min"
    #: destination := max(source, destination)  (``GL_MAX``).
    MAX = "max"

    @property
    def is_blending(self) -> bool:
        """Whether the op reads the destination (true blending)."""
        return self is not BlendOp.REPLACE


_APPLY: dict[BlendOp, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    BlendOp.REPLACE: lambda src, dst: src,
    BlendOp.MIN: np.minimum,
    BlendOp.MAX: np.maximum,
}


def apply_blend(op: BlendOp, source: np.ndarray, dest: np.ndarray) -> np.ndarray:
    """Combine ``source`` fragments with ``dest`` pixels under ``op``.

    Both arrays must be broadcast-compatible; the result has the broadcast
    shape.  Raises :class:`BlendStateError` for unknown ops.
    """
    try:
        func = _APPLY[op]
    except KeyError:  # pragma: no cover - enum keeps this unreachable
        raise BlendStateError(f"unsupported blend op: {op!r}") from None
    return func(source, dest)
