"""Quad rasterization with texture-coordinate interpolation.

This module implements the one drawing primitive the paper's algorithms
need: rendering an axis-aligned textured quadrilateral into the frame
buffer (Routines 4.1 and 4.2).  The comparator *mapping* of the sorting
network is encoded purely in the texture coordinates assigned to the
quad's vertices — e.g. reversed coordinates make pixel ``i`` fetch texel
``B - 1 - i``, which is exactly the mirror comparison of the periodic
balanced sorting network.

Rasterization rules (matching OpenGL):

* A destination rectangle ``(x0, y0, x1, y1)`` covers the integer pixels
  ``x in [x0, x1)`` and ``y in [y0, y1)``; fragments are generated at pixel
  centers ``(x + 0.5, y + 0.5)``.
* Texture coordinates are interpolated linearly between the quad's edges
  and sampled with nearest filtering (``floor``).

Because all quads used by the paper are axis-aligned, the interpolation is
separable in x and y, and the sampled texel grid is the outer product of a
column-index vector and a row-index vector.  The simulator exploits that to
execute each pass as one vectorised gather + blend, while still deriving
the index math from the actual vertex attributes.
"""

from __future__ import annotations

import numpy as np

from ..errors import RasterizationError
from .blend import BlendOp, apply_blend
from .counters import PerfCounters
from .framebuffer import FrameBuffer
from .texture import BYTES_PER_TEXEL, Texture2D


def _interp_indices(dst_lo: float, dst_hi: float,
                    tex_lo: float, tex_hi: float) -> np.ndarray:
    """Texel indices sampled by pixels ``[dst_lo, dst_hi)`` along one axis.

    ``tex_lo`` / ``tex_hi`` are the texture coordinates attached to the two
    edges of the quad along this axis; they may run backwards to mirror the
    fetch direction.
    """
    count = int(round(dst_hi - dst_lo))
    centers = np.arange(count, dtype=np.float64) + 0.5
    t = centers / (dst_hi - dst_lo)
    coords = tex_lo + t * (tex_hi - tex_lo)
    return np.floor(coords).astype(np.intp)


def draw_quad(framebuffer: FrameBuffer,
              texture: Texture2D,
              dst_rect: tuple[float, float, float, float],
              tex_rect: tuple[float, float, float, float],
              counters: PerfCounters | None = None,
              label: str = "pass") -> int:
    """Render one textured, axis-aligned quad into ``framebuffer``.

    Parameters
    ----------
    framebuffer:
        Render target; its current :class:`BlendOp` decides whether this is
        a plain copy or a MIN/MAX conditional assignment.
    texture:
        The active texture sampled by the fragments.
    dst_rect:
        ``(x0, y0, x1, y1)`` destination rectangle in pixels.
    tex_rect:
        ``(u0, v0, u1, v1)`` texture coordinates at the matching corners.
        Reversed ranges mirror the fetch along that axis.
    counters:
        When given, the pass is recorded there.
    label:
        Counter label for the pass breakdown.

    Returns
    -------
    int
        The number of fragments generated.

    Raises
    ------
    RasterizationError
        If the quad is degenerate, leaves the frame buffer, or samples
        outside the texture.
    """
    x0, y0, x1, y1 = dst_rect
    u0, v0, u1, v1 = tex_rect
    if not (x1 > x0 and y1 > y0):
        raise RasterizationError(f"degenerate quad: dst_rect={dst_rect}")
    if x0 < 0 or y0 < 0 or x1 > framebuffer.width or y1 > framebuffer.height:
        raise RasterizationError(
            f"quad {dst_rect} outside {framebuffer.width}x{framebuffer.height} "
            "frame buffer")
    ix0, iy0, ix1, iy1 = (int(round(v)) for v in (x0, y0, x1, y1))

    cols = _interp_indices(x0, x1, u0, u1)
    rows = _interp_indices(y0, y1, v0, v1)
    if cols.size and (cols.min() < 0 or cols.max() >= texture.width):
        raise RasterizationError(
            f"texture u-coordinates [{u0}, {u1}] sample outside 0..{texture.width}")
    if rows.size and (rows.min() < 0 or rows.max() >= texture.height):
        raise RasterizationError(
            f"texture v-coordinates [{v0}, {v1}] sample outside 0..{texture.height}")

    source = texture.view()[rows[:, None], cols[None, :], :]
    dest = framebuffer.pixels()[iy0:iy1, ix0:ix1, :]
    blend_op = framebuffer.blend_op
    dest[...] = apply_blend(blend_op, source, dest)

    fragments = (ix1 - ix0) * (iy1 - iy0)
    if counters is not None:
        counters.record_pass(fragments, blended=blend_op.is_blending,
                             bytes_per_texel=BYTES_PER_TEXEL, label=label)
    return fragments


def copy_texture(framebuffer: FrameBuffer, texture: Texture2D,
                 counters: PerfCounters | None = None) -> int:
    """Routine 4.1 (``Copy``): blit a whole texture into the frame buffer.

    Temporarily disables blending, draws one full-texture quad with
    identity texture coordinates, and restores the previous blend state.
    """
    previous = framebuffer.blend_op
    framebuffer.set_blend(BlendOp.REPLACE)
    try:
        fragments = draw_quad(
            framebuffer, texture,
            dst_rect=(0, 0, texture.width, texture.height),
            tex_rect=(0, 0, texture.width, texture.height),
            counters=counters, label="copy")
    finally:
        framebuffer.set_blend(previous)
    return fragments
