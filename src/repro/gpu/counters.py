"""Performance counters for the simulated GPU.

Every instrumented operation on the device increments these counters.  The
analytic cost model (:mod:`repro.gpu.timing`) converts them into estimated
wall-clock seconds on the paper's hardware; the benchmark harness prints
both the raw counts and the derived times.

The counters are exact: they are computed from quad areas and transfer
sizes, not sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PerfCounters:
    """Mutable set of counters accumulated by a :class:`~repro.gpu.device.GpuDevice`."""

    #: number of rendering passes (draw calls) issued.
    passes: int = 0
    #: number of fragments generated across all passes.
    fragments: int = 0
    #: number of blend operations executed (== fragments in blending passes).
    blend_ops: int = 0
    #: number of texels fetched by the texture units.
    texels_fetched: int = 0
    #: bytes written to the frame buffer.
    bytes_written: int = 0
    #: bytes read from textures / frame buffer by the fragment pipeline.
    bytes_read: int = 0
    #: bytes uploaded CPU -> GPU over the bus.
    bytes_uploaded: int = 0
    #: bytes read back GPU -> CPU over the bus.
    bytes_readback: int = 0
    #: number of CPU -> GPU transfers.
    uploads: int = 0
    #: number of GPU -> CPU transfers.
    readbacks: int = 0
    #: labelled pass counts, e.g. {"row_min": 12, "min": 4, ...}.
    pass_breakdown: dict[str, int] = field(default_factory=dict)

    def record_pass(self, fragments: int, *, blended: bool, bytes_per_texel: int,
                    label: str = "pass") -> None:
        """Account one rendering pass that produced ``fragments`` fragments."""
        self.passes += 1
        self.fragments += fragments
        if blended:
            self.blend_ops += fragments
        self.texels_fetched += fragments
        self.bytes_written += fragments * bytes_per_texel
        # A blended fragment reads both the texel and the destination pixel.
        reads = 2 * fragments if blended else fragments
        self.bytes_read += reads * bytes_per_texel
        self.pass_breakdown[label] = self.pass_breakdown.get(label, 0) + 1

    def record_upload(self, nbytes: int) -> None:
        """Account one CPU -> GPU transfer of ``nbytes`` bytes."""
        self.uploads += 1
        self.bytes_uploaded += nbytes

    def record_readback(self, nbytes: int) -> None:
        """Account one GPU -> CPU transfer of ``nbytes`` bytes."""
        self.readbacks += 1
        self.bytes_readback += nbytes

    def reset(self) -> None:
        """Zero every counter (used between benchmark iterations)."""
        self.passes = 0
        self.fragments = 0
        self.blend_ops = 0
        self.texels_fetched = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.bytes_uploaded = 0
        self.bytes_readback = 0
        self.uploads = 0
        self.readbacks = 0
        self.pass_breakdown = {}

    def snapshot(self) -> "PerfCounters":
        """Return an independent copy of the current counter values."""
        copy = PerfCounters(
            passes=self.passes,
            fragments=self.fragments,
            blend_ops=self.blend_ops,
            texels_fetched=self.texels_fetched,
            bytes_written=self.bytes_written,
            bytes_read=self.bytes_read,
            bytes_uploaded=self.bytes_uploaded,
            bytes_readback=self.bytes_readback,
            uploads=self.uploads,
            readbacks=self.readbacks,
        )
        copy.pass_breakdown = dict(self.pass_breakdown)
        return copy

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        """Return counters accumulated since the ``earlier`` snapshot."""
        out = PerfCounters(
            passes=self.passes - earlier.passes,
            fragments=self.fragments - earlier.fragments,
            blend_ops=self.blend_ops - earlier.blend_ops,
            texels_fetched=self.texels_fetched - earlier.texels_fetched,
            bytes_written=self.bytes_written - earlier.bytes_written,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_uploaded=self.bytes_uploaded - earlier.bytes_uploaded,
            bytes_readback=self.bytes_readback - earlier.bytes_readback,
            uploads=self.uploads - earlier.uploads,
            readbacks=self.readbacks - earlier.readbacks,
        )
        out.pass_breakdown = {
            key: value - earlier.pass_breakdown.get(key, 0)
            for key, value in self.pass_breakdown.items()
            if value - earlier.pass_breakdown.get(key, 0)
        }
        return out
