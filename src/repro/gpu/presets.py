"""Hardware descriptions used by the performance models.

The paper benchmarks an NVIDIA GeForce 6800 Ultra against a 3.4 GHz Intel
Pentium IV.  Since this reproduction runs on commodity CPUs without a 2005
GPU, we carry the datasheet parameters the paper quotes (Sections 1.1, 3.3
and 4.5) in :class:`GpuSpec` / :class:`CpuSpec` / :class:`BusSpec` objects
and derive *model time* for every instrumented operation from them.

The constants below are the ones printed in the paper:

* GeForce 6800 Ultra — 400 MHz core clock, 1.2 GHz memory clock, 16 fragment
  processors with 4-wide vector units (64 ops/clock), 256-bit memory
  interface giving a peak of 35.2 GB/s, 6-7 core cycles per blend
  operation (Section 4.5 derives this empirically).
* Pentium IV (3.4 GHz) — ~6 GB/s main-memory bandwidth, 17-cycle branch
  misprediction penalty, ~100-cycle main-memory miss penalty, L1 = 128 KiB
  (the paper's "18 KB" is an OCR artifact of 8 KB data + trace cache; we
  use the paper's stated figure of 128 KB), L2 = 1 MiB.
* AGP 8X bus — 4 GB/s theoretical, ~800 MB/s observed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Datasheet parameters of a (simulated) graphics processor."""

    name: str
    core_clock_hz: float
    memory_clock_hz: float
    fragment_processors: int
    vector_width: int
    memory_bandwidth_bytes: float
    cycles_per_blend: float
    #: fixed cost charged once per rendering pass (state change, quad setup).
    pass_overhead_s: float
    #: fixed cost charged once per sort invocation (buffer setup, validation).
    setup_overhead_s: float
    #: maximum texture side length in texels.
    max_texture_dim: int = 4096
    #: video memory capacity in bytes.
    video_memory_bytes: int = 256 * 1024 * 1024

    @property
    def fragment_ops_per_clock(self) -> int:
        """Scalar operations retired per core clock across all pipes."""
        return self.fragment_processors * self.vector_width

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision throughput in GFLOP/s (paper: ~45)."""
        # The 6800 Ultra performs a MAD (2 flops) per vector lane per clock
        # in the shader units; the paper's 45 GFLOPS headline additionally
        # counts co-issued mini-ALU work.  We report the MAD figure.
        return 2.0 * self.fragment_ops_per_clock * self.core_clock_hz / 1e9


@dataclass(frozen=True)
class CpuSpec:
    """Datasheet parameters of a (modelled) CPU used by the baselines."""

    name: str
    clock_hz: float
    memory_bandwidth_bytes: float
    l1_bytes: int
    l2_bytes: int
    cache_line_bytes: int
    l2_miss_penalty_cycles: float
    branch_miss_penalty_cycles: float
    #: average instructions retired per comparison in a tuned quicksort
    #: inner loop (compare + swap bookkeeping + loop control).
    instructions_per_comparison: float
    #: fraction of comparisons whose branch is mispredicted.  Random pivots
    #: make quicksort's partition branch essentially unpredictable.
    branch_miss_rate: float
    #: instructions per clock the pipeline sustains on this workload.
    sustained_ipc: float


@dataclass(frozen=True)
class BusSpec:
    """CPU <-> GPU interconnect parameters."""

    name: str
    theoretical_bandwidth_bytes: float
    effective_bandwidth_bytes: float
    #: per-transfer latency (driver + DMA setup).
    latency_s: float


GEFORCE_6800_ULTRA = GpuSpec(
    name="NVIDIA GeForce 6800 Ultra",
    core_clock_hz=400e6,
    memory_clock_hz=1.2e9,
    fragment_processors=16,
    vector_width=4,
    memory_bandwidth_bytes=35.2e9,
    cycles_per_blend=6.0,
    pass_overhead_s=1.0e-6,
    setup_overhead_s=1.2e-3,
)
"""The GPU the paper benchmarks (Sections 1.1 and 3.3)."""


PENTIUM_IV_3_4GHZ = CpuSpec(
    name="Intel Pentium IV 3.4 GHz",
    clock_hz=3.4e9,
    memory_bandwidth_bytes=6.0e9,
    l1_bytes=128 * 1024,
    l2_bytes=1024 * 1024,
    cache_line_bytes=64,
    l2_miss_penalty_cycles=100.0,
    branch_miss_penalty_cycles=17.0,
    instructions_per_comparison=12.0,
    branch_miss_rate=0.5,
    sustained_ipc=0.9,
)
"""The CPU the paper benchmarks against (Sections 1.1 and 3.2)."""


AGP_8X = BusSpec(
    name="AGP 8X",
    theoretical_bandwidth_bytes=4.0e9,
    effective_bandwidth_bytes=800e6,
    latency_s=50e-6,
)
"""The bus the paper assumes (Section 4.1: 'In practice, ~800 MBps')."""
