"""2D RGBA textures for the simulated GPU.

A texture is a ``H x W x 4`` array of 32-bit floats — exactly the data
representation the paper uses (Section 4.1): four channels (red, green,
blue, alpha) each holding one independent data value per texel.

Textures live in the device's video memory.  Host code never mutates a
texture's array directly; data moves through :class:`repro.gpu.bus.Bus`
uploads and readbacks so that every byte crossing the CPU/GPU boundary is
accounted for.
"""

from __future__ import annotations

import numpy as np

from ..errors import TextureError

#: Number of color channels per texel (RGBA).
CHANNELS = 4

#: Bytes per texel: four float32 channels.
BYTES_PER_TEXEL = 4 * CHANNELS


class Texture2D:
    """A ``width x height`` RGBA float32 texture in simulated video memory.

    Parameters
    ----------
    width, height:
        Texture dimensions in texels.  Must be positive.
    data:
        Optional initial contents with shape ``(height, width, 4)``.
    name:
        Debug label shown in error messages.
    """

    def __init__(self, width: int, height: int,
                 data: np.ndarray | None = None, name: str = "texture"):
        if width <= 0 or height <= 0:
            raise TextureError(
                f"{name}: dimensions must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.name = name
        if data is None:
            self._data = np.zeros((self.height, self.width, CHANNELS),
                                  dtype=np.float32)
        else:
            data = np.asarray(data, dtype=np.float32)
            if data.shape != (self.height, self.width, CHANNELS):
                raise TextureError(
                    f"{name}: data shape {data.shape} does not match "
                    f"({self.height}, {self.width}, {CHANNELS})")
            self._data = data.copy()

    @property
    def nbytes(self) -> int:
        """Size of the texture in video memory."""
        return self.width * self.height * BYTES_PER_TEXEL

    @property
    def shape(self) -> tuple[int, int, int]:
        """Array shape ``(height, width, channels)``."""
        return (self.height, self.width, CHANNELS)

    def read(self) -> np.ndarray:
        """Return a *copy* of the texel array (device-side access).

        Host code should use :meth:`repro.gpu.device.GpuDevice.readback`
        instead so the transfer is billed to the bus.
        """
        return self._data.copy()

    def view(self) -> np.ndarray:
        """Return the live texel array (internal use by the rasterizer)."""
        return self._data

    def write(self, data: np.ndarray) -> None:
        """Replace the texel array (device-side access, no bus accounting)."""
        data = np.asarray(data, dtype=np.float32)
        if data.shape != self._data.shape:
            raise TextureError(
                f"{self.name}: write shape {data.shape} does not match "
                f"{self._data.shape}")
        self._data[...] = data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Texture2D({self.name!r}, {self.width}x{self.height})"


def texture_dims_for(n: int, max_dim: int = 4096) -> tuple[int, int]:
    """Choose a power-of-two texture size holding ``n`` values per channel.

    The paper (Routine 4.3, line 2) uses ``W = 2^ceil(log2(n)/2)`` and
    ``H = 2^floor(log2(n)/2)`` — the most-square power-of-two rectangle with
    ``W * H >= n``.  A near-square layout maximises rasterization
    efficiency and keeps both SortStep cases (row blocks and column
    blocks) exercised.

    Raises
    ------
    TextureError
        If ``n`` cannot fit in a ``max_dim x max_dim`` texture.
    """
    if n <= 0:
        raise TextureError(f"cannot size a texture for n={n}")
    log_n = int(np.ceil(np.log2(max(n, 1))))
    width = 1 << ((log_n + 1) // 2)
    height = 1 << (log_n // 2)
    if width > max_dim or height > max_dim:
        raise TextureError(
            f"n={n} needs a {width}x{height} texture, exceeding the device "
            f"limit of {max_dim}x{max_dim}")
    return width, height
