"""Simulated graphics processor substrate.

The paper executes its sorting network with nothing but rasterization:
textured quads whose texture coordinates encode the comparator mapping,
and MIN/MAX color blending that evaluates the comparators.  This package
provides a faithful software model of that machinery — textures, a frame
buffer, a quad rasterizer, blending, the CPU<->GPU bus — plus exact
performance counters and an analytic cost model parameterised by the
hardware the paper used (NVIDIA GeForce 6800 Ultra over AGP 8X).

See DESIGN.md for the substitution argument: the algorithms above this
layer are unchanged; only the physical execution engine differs.
"""

from .blend import BlendOp, apply_blend
from .bus import Bus
from .counters import PerfCounters
from .device import GpuDevice
from .faults import TRANSIENT_GPU_ERRORS, FaultInjector, FaultPlan
from .framebuffer import FrameBuffer
from .presets import (AGP_8X, GEFORCE_6800_ULTRA, PENTIUM_IV_3_4GHZ, BusSpec,
                      CpuSpec, GpuSpec)
from .rasterizer import copy_texture, draw_quad
from .shader import FragmentProgram, Instruction, run_fragment_program
from .texture import BYTES_PER_TEXEL, CHANNELS, Texture2D, texture_dims_for
from .timing import (CPU_MODEL_INTEL, CPU_MODEL_MSVC,
                     BitonicFragmentProgramModel, CpuSortCostModel,
                     GpuCostModel, GpuTimeBreakdown)

__all__ = [
    "AGP_8X",
    "BYTES_PER_TEXEL",
    "CHANNELS",
    "CPU_MODEL_INTEL",
    "CPU_MODEL_MSVC",
    "BitonicFragmentProgramModel",
    "BlendOp",
    "Bus",
    "BusSpec",
    "CpuSortCostModel",
    "CpuSpec",
    "FaultInjector",
    "FaultPlan",
    "FragmentProgram",
    "FrameBuffer",
    "GEFORCE_6800_ULTRA",
    "GpuCostModel",
    "GpuDevice",
    "GpuSpec",
    "GpuTimeBreakdown",
    "Instruction",
    "PENTIUM_IV_3_4GHZ",
    "PerfCounters",
    "TRANSIENT_GPU_ERRORS",
    "Texture2D",
    "apply_blend",
    "copy_texture",
    "draw_quad",
    "run_fragment_program",
    "texture_dims_for",
]
