"""Tuple partitioning across miner shards.

The service scales the paper's single co-processor loop by running N
independent copies of it and routing tuples between them.  Which router
is correct depends on the statistic:

* **Round-robin** — quantiles and distinct counts.  An epsilon-summary
  (or KMV sketch) of any sub-multiset merges losslessly with the others,
  so *any* partition of the stream yields the same merged answer; cyclic
  routing just keeps the shards balanced.
* **Hash by value** — frequencies.  Lossy-counting summaries are not
  mergeable in general, but if every occurrence of a value lands on the
  same shard, the global count of that value *is* its home shard's
  count.  The union of per-shard summaries then answers heavy-hitter
  queries with the per-shard guarantee (undercount at most
  ``eps * N_shard <= eps * N``) — partitioning adds no error.

Both partitioners are deterministic, so replaying a stream reproduces
the exact same shard contents.
"""

from __future__ import annotations

import numpy as np

from ..core.distinct.kmv import hash_values
from ..errors import ServiceError


def _as_chunk(values: np.ndarray | list[float]) -> np.ndarray:
    return np.asarray(values, dtype=np.float32).ravel()


class RoundRobinPartitioner:
    """Cyclic element-wise routing; stateful so chunks stay balanced.

    Element ``j`` of the stream goes to shard ``(j + offset) % n`` where
    ``offset`` carries across chunks, so shard loads differ by at most
    one element no matter how arrivals are chunked.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        self.num_shards = int(num_shards)
        self._offset = 0

    def split(self, values: np.ndarray | list[float]) -> list[np.ndarray]:
        """Partition one chunk into ``num_shards`` per-shard arrays."""
        arr = _as_chunk(values)
        n = self.num_shards
        parts = [arr[(i - self._offset) % n::n] for i in range(n)]
        self._offset = (self._offset + arr.size) % n
        return parts

    def shard_of(self, value: float) -> int:
        """Point queries are meaningless under round-robin routing."""
        raise ServiceError(
            "round-robin partitioning spreads equal values across shards; "
            "use a HashPartitioner for per-value lookups")

    def to_state(self) -> dict:
        """Snapshot the routing cursor (checkpoint/restore)."""
        return {"kind": "round-robin", "num_shards": self.num_shards,
                "offset": self._offset}

    def restore_state(self, state: dict) -> None:
        """Restore the routing cursor; replay then routes identically."""
        if state.get("kind") != "round-robin" or \
                int(state.get("num_shards", -1)) != self.num_shards:
            raise ServiceError(f"incompatible partitioner state: {state!r}")
        self._offset = int(state["offset"]) % self.num_shards


class HashPartitioner:
    """Value-hash routing: equal values always share a shard.

    Reuses the splitmix64 value hash of the KMV sketch
    (:func:`repro.core.distinct.kmv.hash_values`), which maps float32
    values to uniform doubles in [0, 1); the unit interval is cut into
    ``num_shards`` equal slices.
    """

    def __init__(self, num_shards: int, seed: int = 1):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        self.num_shards = int(num_shards)
        self.seed = int(seed)

    def _indices(self, arr: np.ndarray) -> np.ndarray:
        slots = hash_values(arr, self.seed) * self.num_shards
        return np.minimum(slots.astype(np.int64), self.num_shards - 1)

    def split(self, values: np.ndarray | list[float]) -> list[np.ndarray]:
        """Partition one chunk into ``num_shards`` per-shard arrays."""
        arr = _as_chunk(values)
        if self.num_shards == 1:
            return [arr]
        idx = self._indices(arr)
        return [arr[idx == i] for i in range(self.num_shards)]

    def shard_of(self, value: float) -> int:
        """The home shard of ``value`` (for point-frequency lookups)."""
        return int(self._indices(np.asarray([value], dtype=np.float32))[0])

    def to_state(self) -> dict:
        """Snapshot the (stateless) hash routing parameters."""
        return {"kind": "hash", "num_shards": self.num_shards,
                "seed": self.seed}

    def restore_state(self, state: dict) -> None:
        """Validate compatibility; hash routing itself is stateless."""
        if state.get("kind") != "hash" or \
                int(state.get("num_shards", -1)) != self.num_shards or \
                int(state.get("seed", -1)) != self.seed:
            raise ServiceError(f"incompatible partitioner state: {state!r}")


def default_partitioner(statistic: str, num_shards: int):
    """The correct router for a statistic (see the module docstring)."""
    if statistic == "frequency":
        return HashPartitioner(num_shards)
    return RoundRobinPartitioner(num_shards)
