"""Tuple partitioning across miner shards.

The service scales the paper's single co-processor loop by running N
independent copies of it and routing tuples between them.  Which router
is correct depends on the statistic:

* **Round-robin** — quantiles and distinct counts.  An epsilon-summary
  (or KMV sketch) of any sub-multiset merges losslessly with the others,
  so *any* partition of the stream yields the same merged answer; cyclic
  routing just keeps the shards balanced.
* **Hash by value** — frequencies.  Lossy-counting summaries are not
  mergeable in general, but if every occurrence of a value lands on the
  same shard, the global count of that value *is* its home shard's
  count.  The union of per-shard summaries then answers heavy-hitter
  queries with the per-shard guarantee (undercount at most
  ``eps * N_shard <= eps * N``) — partitioning adds no error.
* **Consistent hash** — elastic/fault-tolerant deployments.  Same
  value-affinity guarantee as plain hashing, but changing the shard
  count (or excluding a dead shard) only remaps the keys that *must*
  move, instead of reshuffling almost every value.

All partitioners are deterministic, so replaying a stream reproduces
the exact same shard contents.
"""

from __future__ import annotations

import numpy as np

from ..core.distinct.kmv import hash_values
from ..errors import ServiceError


def _as_chunk(values: np.ndarray | list[float]) -> np.ndarray:
    return np.asarray(values, dtype=np.float32).ravel()


class RoundRobinPartitioner:
    """Cyclic element-wise routing; stateful so chunks stay balanced.

    Element ``j`` of the stream goes to shard ``(j + offset) % n`` where
    ``offset`` carries across chunks, so shard loads differ by at most
    one element no matter how arrivals are chunked.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        self.num_shards = int(num_shards)
        self._offset = 0

    def split(self, values: np.ndarray | list[float]) -> list[np.ndarray]:
        """Partition one chunk into ``num_shards`` per-shard arrays."""
        arr = _as_chunk(values)
        n = self.num_shards
        parts = [arr[(i - self._offset) % n::n] for i in range(n)]
        self._offset = (self._offset + arr.size) % n
        return parts

    def shard_of(self, value: float) -> int:
        """Point queries are meaningless under round-robin routing."""
        raise ServiceError(
            "round-robin partitioning spreads equal values across shards; "
            "use a HashPartitioner for per-value lookups")

    def to_state(self) -> dict:
        """Snapshot the routing cursor (checkpoint/restore)."""
        return {"kind": "round-robin", "num_shards": self.num_shards,
                "offset": self._offset}

    def restore_state(self, state: dict) -> None:
        """Restore the routing cursor; replay then routes identically."""
        if state.get("kind") != "round-robin" or \
                int(state.get("num_shards", -1)) != self.num_shards:
            raise ServiceError(f"incompatible partitioner state: {state!r}")
        self._offset = int(state["offset"]) % self.num_shards

    def with_num_shards(self, num_shards: int) -> "RoundRobinPartitioner":
        """A fresh cursor over a different shard count (resharding)."""
        return RoundRobinPartitioner(num_shards)


class HashPartitioner:
    """Value-hash routing: equal values always share a shard.

    Reuses the splitmix64 value hash of the KMV sketch
    (:func:`repro.core.distinct.kmv.hash_values`), which maps float32
    values to uniform doubles in [0, 1); the unit interval is cut into
    ``num_shards`` equal slices.
    """

    def __init__(self, num_shards: int, seed: int = 1):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        self.num_shards = int(num_shards)
        self.seed = int(seed)

    def _indices(self, arr: np.ndarray) -> np.ndarray:
        slots = hash_values(arr, self.seed) * self.num_shards
        return np.minimum(slots.astype(np.int64), self.num_shards - 1)

    def split(self, values: np.ndarray | list[float]) -> list[np.ndarray]:
        """Partition one chunk into ``num_shards`` per-shard arrays."""
        arr = _as_chunk(values)
        if self.num_shards == 1:
            return [arr]
        idx = self._indices(arr)
        return [arr[idx == i] for i in range(self.num_shards)]

    def shard_of(self, value: float) -> int:
        """The home shard of ``value`` (for point-frequency lookups)."""
        return int(self._indices(np.asarray([value], dtype=np.float32))[0])

    def to_state(self) -> dict:
        """Snapshot the (stateless) hash routing parameters."""
        return {"kind": "hash", "num_shards": self.num_shards,
                "seed": self.seed}

    def restore_state(self, state: dict) -> None:
        """Validate compatibility; hash routing itself is stateless."""
        if state.get("kind") != "hash" or \
                int(state.get("num_shards", -1)) != self.num_shards or \
                int(state.get("seed", -1)) != self.seed:
            raise ServiceError(f"incompatible partitioner state: {state!r}")

    def with_num_shards(self, num_shards: int) -> "HashPartitioner":
        """Same hash seed over a different shard count (resharding)."""
        return HashPartitioner(num_shards, seed=self.seed)


#: vnode token packing limit: tokens are float32-exact only while
#: ``shard * _TOKEN_STRIDE + vnode`` stays below 2**24.
_TOKEN_STRIDE = 4096


class ConsistentHashPartitioner:
    """Ring-hash routing with value affinity and minimal-move scaling.

    Each shard owns ``vnodes`` points on a unit-interval ring; a value
    belongs to the shard owning the first ring point clockwise of its
    hash.  Ring points are derived from the same seedable splitmix64
    value hash as :class:`HashPartitioner` (never builtin ``hash()``),
    so routing is identical in every process.

    Two properties make this the partitioner for elastic deployments:

    * **Minimal movement** — shard ``s``'s ring points depend only on
      ``(s, vnode, seed)``, so adding shards inserts new points without
      moving old ones: keys only ever move *to* the new shards.
      Shrinking removes points, so keys only move *from* the removed
      shards.  Either way the untouched keyspace routes exactly as
      before.
    * **Exclusion** — a dead shard's points can be dropped from the
      ring (:meth:`mark_dead`); its keyspace falls to the clockwise
      survivors while every other key keeps its home, preserving value
      affinity for the unaffected mass of the stream.
    """

    def __init__(self, num_shards: int, seed: int = 1, vnodes: int = 64,
                 dead: tuple[int, ...] = ()):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        if num_shards > _TOKEN_STRIDE:
            raise ServiceError(
                f"consistent hashing supports <= {_TOKEN_STRIDE} shards, "
                f"got {num_shards}")
        if not 1 <= vnodes <= _TOKEN_STRIDE:
            raise ServiceError(
                f"vnodes must be in [1, {_TOKEN_STRIDE}], got {vnodes}")
        self.num_shards = int(num_shards)
        self.seed = int(seed)
        self.vnodes = int(vnodes)
        self._dead: set[int] = set()
        for shard_id in dead:
            self._validate_shard(int(shard_id))
            self._dead.add(int(shard_id))
        self._rebuild_ring()

    def _validate_shard(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.num_shards:
            raise ServiceError(
                f"shard {shard_id} out of range [0, {self.num_shards})")

    def _rebuild_ring(self) -> None:
        alive = [s for s in range(self.num_shards) if s not in self._dead]
        if not alive:
            raise ServiceError("all shards marked dead; ring is empty")
        owners = np.repeat(np.asarray(alive, dtype=np.int64), self.vnodes)
        tokens = (owners * _TOKEN_STRIDE
                  + np.tile(np.arange(self.vnodes), len(alive)))
        positions = hash_values(tokens.astype(np.float32), self.seed)
        order = np.argsort(positions, kind="stable")
        self._ring_pos = positions[order]
        self._ring_owner = owners[order]

    @property
    def dead(self) -> tuple[int, ...]:
        """Shards currently excluded from the ring, ascending."""
        return tuple(sorted(self._dead))

    def mark_dead(self, shard_id: int) -> None:
        """Drop a shard's ring points; its keyspace falls to survivors."""
        self._validate_shard(int(shard_id))
        if int(shard_id) in self._dead:
            return
        self._dead.add(int(shard_id))
        self._rebuild_ring()

    def _owners(self, arr: np.ndarray) -> np.ndarray:
        slots = np.searchsorted(self._ring_pos, hash_values(arr, self.seed),
                                side="right")
        return self._ring_owner[slots % self._ring_pos.size]

    def split(self, values: np.ndarray | list[float]) -> list[np.ndarray]:
        """Partition one chunk; dead shards always get empty arrays."""
        arr = _as_chunk(values)
        owners = self._owners(arr)
        return [arr[owners == i] for i in range(self.num_shards)]

    def shard_of(self, value: float) -> int:
        """The home shard of ``value`` on the current ring."""
        return int(self._owners(np.asarray([value], dtype=np.float32))[0])

    def to_state(self) -> dict:
        """Snapshot ring parameters (the ring itself is derived)."""
        return {"kind": "consistent-hash", "num_shards": self.num_shards,
                "seed": self.seed, "vnodes": self.vnodes,
                "dead": [int(s) for s in sorted(self._dead)]}

    def restore_state(self, state: dict) -> None:
        """Validate compatibility and adopt the dead-shard set."""
        if state.get("kind") != "consistent-hash" or \
                int(state.get("num_shards", -1)) != self.num_shards or \
                int(state.get("seed", -1)) != self.seed or \
                int(state.get("vnodes", -1)) != self.vnodes:
            raise ServiceError(f"incompatible partitioner state: {state!r}")
        dead = {int(s) for s in state.get("dead", [])}
        for shard_id in dead:
            self._validate_shard(shard_id)
        self._dead = dead
        self._rebuild_ring()

    def with_num_shards(self, num_shards: int) -> "ConsistentHashPartitioner":
        """Same ring seed over a different shard count; revives dead."""
        return ConsistentHashPartitioner(num_shards, seed=self.seed,
                                         vnodes=self.vnodes)


def partitioner_from_state(state: dict):
    """Rebuild any partitioner from its ``to_state()`` dict.

    Snapshot restore paths use this so a checkpoint taken under a
    non-default partitioner (e.g. consistent-hash) round-trips without
    the caller having to know which router was in use.
    """
    kind = state.get("kind")
    num_shards = int(state.get("num_shards", 0))
    if kind == "round-robin":
        partitioner = RoundRobinPartitioner(num_shards)
    elif kind == "hash":
        partitioner = HashPartitioner(num_shards, seed=int(state["seed"]))
    elif kind == "consistent-hash":
        partitioner = ConsistentHashPartitioner(
            num_shards, seed=int(state["seed"]),
            vnodes=int(state["vnodes"]))
    else:
        raise ServiceError(f"unknown partitioner state: {state!r}")
    partitioner.restore_state(state)
    return partitioner


def default_partitioner(statistic: str, num_shards: int):
    """The correct router for a statistic (see the module docstring)."""
    if statistic == "frequency":
        return HashPartitioner(num_shards)
    return RoundRobinPartitioner(num_shards)
