"""Multiprocess shard executor: one worker process per shard.

:class:`ShardedMiner` fans shards out across *threads* of one process,
so all sorting and summarising still serialises on the GIL — the exact
serial bottleneck the paper escapes by moving comparator work onto
parallel hardware.  :class:`MpShardedMiner` is the process-parallel
sibling: each shard's :class:`~repro.core.engine.StreamMiner` lives in
its own worker process, batches travel through a shared-memory ring
(:mod:`repro.service.shm_ring`, descriptor-over-pipe framing, pickle
fallback for small batches), and queries gather the per-shard estimator
states through the ``to_state``/``from_state`` protocol and merge them
in the parent — the same merge-on-query algebra, so every combined
error bound carries over unchanged.

The class mirrors the :class:`ShardedMiner` surface exactly (ingest /
dispatch / drain / queries / snapshot / metrics), which makes it a
drop-in pool for :class:`~repro.service.async_service.StreamService`
and the executor registry (:mod:`repro.service.executors`).

Ack/replay protocol (also documented in DESIGN.md §12):

* every batch/flush carries a per-shard monotone sequence number; the
  worker acknowledges each one **in order** with its element count,
  busy seconds, resilience-counter deltas, and (when tracing)
  aggregated spans;
* the parent keeps every unacknowledged-or-younger-than-last-snapshot
  entry in a replay log; every ``snapshot_every`` acks it requests an
  internal worker snapshot and truncates the log, keeping replay
  memory bounded;
* worker death (crash, SIGKILL) triggers a bounded supervised restart:
  a fresh worker is spawned from the last snapshot and the replay log
  is re-sent with the *same* sequence numbers.  Acks with sequence
  numbers the parent already counted only bump ``replayed_batches`` —
  throughput metrics are never double-counted, and no acknowledged
  batch is ever lost.  Past ``max_restarts`` the shard is declared
  permanently failed and operations raise
  :class:`~repro.errors.ShardFailedError`;
* inside each worker the dispatch runs under the same
  :class:`~repro.service.resilience.ShardGuard` policy as the
  in-process pool, so retry/degradation semantics do not depend on
  where the shard lives.

Determinism: per-shard element sequences are produced by the same
partitioner code, workers process commands strictly in order, and
sorting/summarising are pure functions of the windows — so answers are
bit-identical to the inline pool over the same stream (asserted by
``tests/service/test_mp_equivalence.py``).
"""

from __future__ import annotations

import math
import multiprocessing
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from threading import RLock
from typing import NamedTuple

import numpy as np

from ..backends import cpu_fallback_for
from ..core.engine import EngineReport, StreamMiner
from ..core.estimators import (default_kind_for, estimator_capabilities,
                               estimator_from_state)
from ..errors import QueryError, ServiceError, ShardFailedError
from ..gpu.device import GpuDevice
from ..gpu.faults import FaultInjector, FaultPlan
from ..obs import collecting, collector
from .metrics import ServiceMetrics, ShardMetrics
from .policies import DEFAULT_POLICIES, ServicePolicies
from .resilience import CircuitBreaker, RetryPolicy, ShardGuard
from .sharded import dispatch_query, merge_quantile_summaries
from .sharding import default_partitioner, partitioner_from_state
from .shm_ring import ShmRing

__all__ = ["MpShardedMiner"]

# Tuning constants moved to service.policies (one place for every
# executor knob); these aliases keep the historical import paths alive.
SMALL_BATCH_ELEMENTS = DEFAULT_POLICIES.small_batch_elements
SNAPSHOT_EVERY = DEFAULT_POLICIES.snapshot_every
_READY_TIMEOUT = DEFAULT_POLICIES.ready_timeout


class _WorkerDied(Exception):
    """Internal: the shard's worker process is gone; supervise it."""

    def __init__(self, cause):
        super().__init__(repr(cause))
        self.cause = cause


class _Pending(NamedTuple):
    kind: str  # "batch" | "flush"
    segment: tuple[int, int] | None  # ring (offset, length) or None
    elements: int


@dataclass
class _ShardLink:
    """Parent-side bookkeeping for one worker process."""

    shard_id: int
    ring: ShmRing
    lock: RLock = field(default_factory=RLock)
    proc: multiprocessing.Process | None = None
    conn: object | None = None
    window_size: int = 0
    next_seq: int = 0
    #: highest batch/flush sequence sent (requests don't count).
    sent: int = 0
    #: highest sequence acknowledged by the (current) worker.
    acked: int = 0
    #: highest sequence whose metrics were recorded (replay dedup).
    counted: int = 0
    pending: OrderedDict = field(default_factory=OrderedDict)
    #: (seq, kind, float32 array | None) entries since the last snapshot.
    replay: list = field(default_factory=list)
    #: last worker snapshot ({"miner": state}) — the restart point.
    snap: dict | None = None
    #: sequence watermark the snapshot covers.
    snap_seq: int = 0
    acks_since_snap: int = 0
    results: dict = field(default_factory=dict)
    failed: ShardFailedError | None = None


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _report_state(report: EngineReport) -> dict:
    return {"backend": report.backend, "statistic": report.statistic,
            "elements": int(report.elements), "windows": int(report.windows),
            "wall": dict(report.wall), "modelled": dict(report.modelled)}


def _pack_spans(spans) -> list:
    """Aggregate leaf spans by name for the ack payload.

    Per-span shipping would dominate the pipe for GPU workloads (one
    span per rendering pass); the parent only needs totals, so this
    sums wall seconds, counts, and numeric attributes per name.
    """
    packed: dict[str, list] = {}
    for span in spans:
        slot = packed.setdefault(span.name, [0.0, 0, {}])
        slot[0] += span.wall
        slot[1] += 1
        for key, value in span.attrs.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                slot[2][key] = value
            else:
                slot[2][key] = slot[2].get(key, 0) + value
    return [(name, wall, count, attrs)
            for name, (wall, count, attrs) in packed.items()]


def _counter_delta(metrics: ShardMetrics, reported: dict) -> dict:
    """Resilience-counter movement since the previous ack."""
    delta = {}
    for name in ("faults", "retries", "degraded_batches"):
        value = int(getattr(metrics, name))
        delta[name] = value - reported[name]
        reported[name] = value
    delta["breaker_state"] = metrics.breaker_state
    delta["last_error"] = metrics.last_error
    return delta


def _worker_main(shard_id: int, conn, ring_name: str, ring_capacity: int,
                 config: dict) -> None:
    """One shard's process: build the miner, serve commands in order."""
    ring = None
    try:
        ring = ShmRing.attach(ring_name, ring_capacity)
        device = None
        plan = config["fault_plan"]
        if config["backend"] == "gpu" and plan is not None:
            # Same per-shard reseeding as the inline pool: faults are
            # independent across shards, scenarios replay exactly.
            device = GpuDevice(fault_injector=FaultInjector(
                plan.reseeded(plan.seed + shard_id)))
        snap = config["snapshot"]
        if snap is not None:
            miner = StreamMiner.from_snapshot(
                snap["miner"], backend=config["backend"], device=device)
        else:
            miner = StreamMiner(
                config["statistic"], eps=config["eps"],
                backend=config["backend"], mode="history",
                window_size=config["window_size"], device=device,
                stream_length_hint=config["length_hint"],
                kind=config.get("kind"))
        metrics = ShardMetrics(shard_id)
        guard = ShardGuard(
            shard_id, miner, miner.sorter,
            cpu_fallback_for(miner.sorter, cpu_speedup=miner._cpu_speedup),
            config["retry"], CircuitBreaker(*config["breaker"]),
            np.random.default_rng((2005, shard_id)), metrics)
        reported = {"faults": 0, "retries": 0, "degraded_batches": 0}
        conn.send(("ready", int(miner.window_size)))
        while True:
            message = conn.recv()
            kind, seq = message[0], message[1]
            if kind in ("batch", "flush"):
                _worker_step(conn, ring, miner, guard, reported, message)
            elif kind == "state":
                conn.send(("result", seq, {
                    "estimator": miner.estimator.to_state(),
                    "processed": int(miner.estimator.processed),
                    "buffered": int(miner.buffered),
                    "report": _report_state(miner.report)}))
            elif kind == "snapshot":
                conn.send(("result", seq, miner.snapshot()))
            elif kind == "stop":
                conn.send(("result", seq, None))
                return
            else:  # pragma: no cover - protocol error
                raise ServiceError(f"unknown command {kind!r}")
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        return
    except Exception as exc:  # pragma: no cover - supervised restart path
        try:
            conn.send(("fatal", repr(exc)))
        except OSError:
            pass
        raise
    finally:
        if ring is not None:
            ring.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def _worker_step(conn, ring, miner, guard, reported, message) -> None:
    kind, seq, transport, a, b, trace = message
    if kind == "batch":
        if transport == "shm":
            # Copy out of the ring before touching the engine: the
            # windower *keeps* references, and the parent recycles the
            # slots as soon as this batch is acknowledged.
            arr = np.array(ring.view(a, b))
        else:
            arr = np.asarray(a, dtype=np.float32).ravel()
        elements = int(arr.size)
    else:
        arr, elements = None, 0
    # CPU time, not wall: the worker loop is single-threaded, so the
    # process_time delta is exactly the compute this step consumed.
    # Wall would also bill the time *other* workers held the core on an
    # oversubscribed box, inflating update_seconds with contention and
    # breaking the one-core-per-worker scaling model the benchmark
    # applies to these numbers.
    began = time.process_time()
    spans: list = []
    try:
        if trace:
            with collecting() as col:
                _run_guarded(miner, guard, kind, arr)
            spans = _pack_spans(col.snapshot())
        else:
            _run_guarded(miner, guard, kind, arr)
    except ShardFailedError as exc:
        conn.send(("error", seq, repr(exc)))
        return
    busy = time.process_time() - began
    if kind == "batch" and trace:
        spans.append(("service.dispatch", busy, 1, {"elements": elements}))
    conn.send(("ack", seq, kind == "batch", elements, busy,
               _counter_delta(guard.metrics, reported), spans))


def _run_guarded(miner, guard, kind, arr) -> None:
    if kind == "batch":
        # Same split as ShardedMiner.dispatch: buffering is unfaultable,
        # the pump is transactional and retried by the guard.
        miner.buffer_chunk(arr)
        guard.run(miner.pump)
    else:
        guard.run(miner.flush)


def _release_links(links) -> None:
    """GC/exit safety net: reap workers, destroy shared memory."""
    for link in links:
        proc = link.proc
        if proc is not None and proc.is_alive():
            proc.terminate()
        if link.conn is not None:
            try:
                link.conn.close()
            except OSError:
                pass
        link.ring.close()


# ----------------------------------------------------------------------
# shared pool surface (process + network executors)
# ----------------------------------------------------------------------
class _PoolQueryMixin:
    """Merge-on-query surface shared by the process and network pools.

    Both pools keep per-shard links with the same protocol verbs
    (``self._request(link, "state"|"snapshot")``), per-shard locks, and
    a ``self.retired`` list of estimator states from shards that were
    retired by a reshard or a takeover.  Retired states are *ghosts*:
    frozen contributions that every query folds in alongside the live
    shards, which is what lets a shard's keyspace move without touching
    the eps accounting —

    * quantiles: ghost summaries join the merge; merging is lossless,
      the single query-time prune still adds at most ``eps/2``;
    * frequencies: counts for a value are *summed* across ghosts and
      live shards.  Occurrences partition across the structures, and a
      lossy-counting estimate never overcounts its own occurrences, so
      the sum never overcounts; the undercount is at most
      ``sum(eps * N_i) <= eps * N``;
    * distinct: KMV sketches union exactly.
    """

    def _live_links(self):
        return [link for link in self._links
                if not getattr(link, "taken_over", False)]

    def _retired_estimators(self):
        return [estimator_from_state(state) for state in self.retired]

    @property
    def _shard_eps(self) -> float:
        # eps/2 per shard for the default GK quantile path: merging is
        # lossless but the query-time prune back to B = ceil(1/eps)
        # buckets costs the other eps/2.  Explicit kinds merge within
        # their own family without a prune, and counting and KMV shards
        # keep full eps.
        return (self.eps / 2.0 if self.statistic == "quantile"
                and self.kind is None else self.eps)

    @property
    def _shard_hint(self) -> int:
        return max(1, math.ceil(self._stream_length_hint / self.num_shards))

    def _fresh_miner_state(self) -> dict:
        """An empty per-shard miner state (snapshot slots for shards
        whose history lives on in ``retired``)."""
        return StreamMiner(
            self.statistic, eps=self._shard_eps, backend="cpu",
            mode="history", window_size=self._window_size_arg,
            stream_length_hint=self._shard_hint,
            kind=self.kind).snapshot()

    @property
    def window_size(self) -> int:
        """The shard pipelines' window width (largest across shards)."""
        return max(link.window_size for link in self._links)

    def _gather(self) -> list[dict]:
        """Settled per-shard estimator states (the merge-on-query feed)."""
        return [self._request(link, "state") for link in self._live_links()]

    @property
    def processed(self) -> int:
        """Elements fully through the per-shard pipelines (incl. ghosts)."""
        return (sum(payload["processed"] for payload in self._gather())
                + sum(int(est.processed)
                      for est in self._retired_estimators()))

    @property
    def buffered(self) -> int:
        """Elements accepted by workers but not yet summarised."""
        return sum(payload["buffered"] for payload in self._gather())

    def shard_reports(self) -> list[EngineReport]:
        """Per-shard per-operation latency accounting (wall + modelled)."""
        reports = []
        for payload in self._gather():
            raw = payload["report"]
            report = EngineReport(raw["backend"], raw["statistic"],
                                  elements=int(raw["elements"]),
                                  windows=int(raw["windows"]))
            report.wall.update(raw["wall"])
            report.modelled.update(raw["modelled"])
            reports.append(report)
        return reports

    # -- merge-on-query (same algebra as the inline pool) ---------------
    def combined_summary(self, prune_budget: int | str | None = "auto"):
        """Merge every worker's quantile buckets into one served summary."""
        if self.statistic != "quantile":
            raise QueryError("this service does not estimate quantiles")
        if self.kind is not None:
            raise QueryError(
                f"estimator kind {self.kind!r} merges within its own "
                "family, not through GK bucket summaries — query via "
                "quantile()")
        summaries = []
        for payload in self._gather():
            estimator = estimator_from_state(payload["estimator"])
            summaries.extend(estimator.summaries())
        for estimator in self._retired_estimators():
            summaries.extend(estimator.summaries())
        return merge_quantile_summaries(summaries, self.eps, prune_budget)

    def _merged_estimator(self):
        """Every worker's estimator (plus ghosts) folded with the
        family's own ``merge()`` — the generic-kind query path."""
        estimators = [estimator_from_state(payload["estimator"])
                      for payload in self._gather()]
        estimators.extend(self._retired_estimators())
        live = [est for est in estimators if int(est.processed) > 0]
        if not live:
            raise QueryError("no data processed yet")
        merged = live[0]
        for estimator in live[1:]:
            merged = merged.merge(estimator)
        return merged

    def quantile(self, phi: float) -> float:
        """The phi-quantile over all shards, within the kind's bound."""
        if self.kind is not None:
            if self.statistic != "quantile":
                raise QueryError("this service does not estimate quantiles")
            result = self._merged_estimator().quantile(phi)
        else:
            result = self.combined_summary().quantile(phi)
        self.metrics.queries += 1
        return result

    def frequent_items(self, support: float) -> list[tuple[float, int]]:
        """Heavy hitters: per-value counts summed over shards + ghosts."""
        if self.statistic != "frequency":
            raise QueryError("this service does not estimate frequencies")
        if self.kind is not None and "heavy_hitters" not in \
                estimator_capabilities(self.kind).metrics:
            raise QueryError(
                f"estimator kind {self.kind!r} answers point estimates "
                "only; it cannot enumerate heavy hitters")
        if not 0.0 <= support <= 1.0:
            raise QueryError(f"support must be in [0, 1], got {support}")
        if support < self.eps:
            raise QueryError(
                f"support {support} below eps {self.eps}: the guarantee "
                "threshold (s - eps) N would be vacuous")
        payloads = self._gather()
        estimators = [estimator_from_state(payload["estimator"])
                      for payload in payloads]
        estimators.extend(self._retired_estimators())
        total = (sum(payload["processed"] for payload in payloads)
                 + sum(int(est.processed)
                       for est in self._retired_estimators()))
        threshold = (support - self.eps) * total
        counts: dict[float, int] = {}
        for estimator in estimators:
            for value, estimate in estimator.items():
                counts[value] = counts.get(value, 0) + estimate
        result = [(value, count) for value, count in counts.items()
                  if count >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        self.metrics.queries += 1
        return result

    def estimate(self, value: float) -> int:
        """Estimated global count of ``value`` (summed over shards).

        Under value-affine routing every term but the home shard's is
        zero, so this matches the home-shard lookup bit for bit; after
        a takeover or reshard it transparently folds in the ghost and
        failover contributions (occurrences partition across the
        structures, so the sum never overcounts).
        """
        if self.statistic != "frequency":
            raise QueryError("this service does not estimate frequencies")
        total = 0
        for payload in self._gather():
            total += estimator_from_state(payload["estimator"]).estimate(
                value)
        for estimator in self._retired_estimators():
            total += estimator.estimate(value)
        self.metrics.queries += 1
        return total

    def distinct(self) -> float:
        """Distinct-count estimate from the union of shard KMV sketches."""
        if self.statistic != "distinct":
            raise QueryError("this service does not count distinct values")
        sketches = [estimator_from_state(payload["estimator"])
                    for payload in self._gather()]
        sketches.extend(self._retired_estimators())
        union = sketches[0]
        for sketch in sketches[1:]:
            union = union.merge(sketch)
        self.metrics.queries += 1
        return union.estimate()

    def answer(self, metric: str, **params):
        """Metric-keyed query routing (the continuous-query seam).

        Same vocabulary as :meth:`ShardedMiner.answer`, via the shared
        :func:`~repro.service.sharded.dispatch_query` translation, so
        the worker pools plug into the query front-end unchanged.
        """
        return dispatch_query(self, metric, params)

    # -- checkpoint/restore (same "sharded-miner" v1 format) -------------
    def snapshot(self) -> dict:
        """Versioned snapshot, interchangeable across all executors.

        The state is gathered from settled workers and written in the
        exact :meth:`ShardedMiner.snapshot` format, so a checkpoint cut
        under one executor restores under any other.  Taken-over shards
        contribute an empty miner slot — their history is already in
        ``retired``.
        """
        shards = []
        for link in self._links:
            shard = self.metrics.shards[link.shard_id]
            if getattr(link, "taken_over", False):
                shards.append({"miner": self._fresh_miner_state(),
                               "elements": int(shard.elements),
                               "batches": int(shard.batches)})
                continue
            with link.lock:
                state = self._request(link, "snapshot")
                link.snap = {"miner": state}
                link.snap_seq = link.sent
                link.replay = [entry for entry in link.replay
                               if entry[0] > link.snap_seq]
                link.acks_since_snap = 0
                shards.append({"miner": state,
                               "elements": int(shard.elements),
                               "batches": int(shard.batches)})
        return {
            "version": 1,
            "kind": "sharded-miner",
            "statistic": self.statistic,
            "estimator_kind": self.kind,
            "eps": self.eps,
            "num_shards": self.num_shards,
            "backend": self._backend_kind,
            "window_size": self._window_size_arg,
            "stream_length_hint": self._stream_length_hint,
            "partitioner": self.partitioner.to_state(),
            "ingested": int(self.metrics.ingested),
            "shards": shards,
            "retired": [dict(state) for state in self.retired],
        }

    # -- elastic resharding ----------------------------------------------
    def reshard(self, num_shards: int) -> None:
        """Live shard split/merge: migrate state onto a new pool size.

        Drains, snapshots, rewrites the snapshot for ``num_shards`` via
        :func:`repro.service.reshard.resharded_snapshot` (old shard
        histories become ghosts; the partitioner is rebuilt over the new
        count), then boots a fresh worker pool from it and adopts that
        pool in place.  Queries before and after see the same stream
        with the same error bounds — see the class docstring for the
        accounting.
        """
        from .reshard import resharded_snapshot
        self.drain()
        state = resharded_snapshot(self.snapshot(), num_shards)
        fresh = type(self).from_snapshot(
            state, backend=self._backend_kind, **self._reshard_kwargs())
        self.close()
        # Adopt the fresh pool's guts.  Its finalizer would reap the
        # adopted workers when `fresh` is collected, so detach it and
        # re-bind one to self.
        fresh._finalizer.detach()
        self.__dict__.update(fresh.__dict__)
        self._rebind_finalizer()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class MpShardedMiner(_PoolQueryMixin):
    """Process-pool drop-in for :class:`ShardedMiner`.

    Parameters mirror :class:`ShardedMiner`; the extras are:

    ring_capacity:
        Per-shard shared-memory arena, in float32 elements.
    small_batch_elements:
        Batches at or below this size ride the pipe (pickle) instead of
        the ring.
    snapshot_every:
        Acks between internal worker snapshots (replay-log bound).
    max_restarts:
        Worker deaths tolerated per shard before it is declared
        permanently failed.
    policies:
        A :class:`~repro.service.policies.ServicePolicies` bundle
        providing the defaults for ``retry``, the breaker knobs and the
        three tuning parameters above; explicit arguments win.
    mp_context:
        ``multiprocessing`` start method (default ``"spawn"`` — immune
        to inherited locks/threads; workers re-import the package).
    shard_states:
        Internal (used by :meth:`from_snapshot`): per-shard restore
        points the workers boot from.
    retired:
        Internal (used by :meth:`from_snapshot`): ghost estimator
        states carried over from retired shards.
    """

    def __init__(self, statistic: str = "quantile", eps: float = 0.01,
                 num_shards: int = 4, backend: str = "cpu",
                 window_size: int | None = None,
                 partitioner=None,
                 stream_length_hint: int = 100_000_000,
                 fault_plan: FaultPlan | None = None,
                 retry: RetryPolicy | None = None,
                 breaker_failure_threshold: int | None = None,
                 breaker_cooldown_batches: int | None = None, *,
                 ring_capacity: int = 1 << 20,
                 small_batch_elements: int | None = None,
                 snapshot_every: int | None = None,
                 max_restarts: int | None = None,
                 policies: ServicePolicies | None = None,
                 mp_context: str = "spawn",
                 kind: str | None = None,
                 shard_states: list[dict] | None = None,
                 retired: list[dict] | None = None):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        if statistic not in ("quantile", "frequency", "distinct"):
            raise ServiceError(f"unknown statistic {statistic!r}")
        if kind is not None and kind == default_kind_for(statistic):
            kind = None
        if kind is not None:
            caps = estimator_capabilities(kind)
            if caps.statistic != statistic:
                raise ServiceError(
                    f"estimator kind {kind!r} serves statistic "
                    f"{caps.statistic!r}, not {statistic!r}")
            if not caps.mergeable:
                raise ServiceError(
                    f"estimator kind {kind!r} is not mergeable; the "
                    "sharded pools need merge-on-query")
        if not 0.0 < eps < 1.0:
            raise ServiceError(f"eps must be in (0, 1), got {eps}")
        if not isinstance(backend, str):
            raise ServiceError(
                "the mp executor ships the backend name to worker "
                "processes; pass a registered backend name, not an object")
        if fault_plan is not None and backend != "gpu":
            raise ServiceError(
                "fault injection targets the simulated GPU; "
                f"backend is {backend!r}")
        pol = policies if policies is not None else DEFAULT_POLICIES
        if not isinstance(pol, ServicePolicies):
            raise ServiceError(
                f"policies must be a ServicePolicies, got {pol!r}")
        self.policies = pol
        if small_batch_elements is None:
            small_batch_elements = pol.small_batch_elements
        if snapshot_every is None:
            snapshot_every = pol.snapshot_every
        if max_restarts is None:
            max_restarts = pol.max_restarts
        if breaker_failure_threshold is None:
            breaker_failure_threshold = pol.breaker_failure_threshold
        if breaker_cooldown_batches is None:
            breaker_cooldown_batches = pol.breaker_cooldown_batches
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}")
        if snapshot_every < 1:
            raise ServiceError(
                f"snapshot_every must be >= 1, got {snapshot_every}")
        if shard_states is not None and len(shard_states) != num_shards:
            raise ServiceError(
                f"got {len(shard_states)} shard states for "
                f"{num_shards} shards")
        self.statistic = statistic
        self.kind = kind
        self.eps = float(eps)
        self.num_shards = int(num_shards)
        self.partitioner = (partitioner if partitioner is not None
                            else default_partitioner(statistic, num_shards))
        if statistic == "frequency" and not hasattr(
                self.partitioner, "shard_of"):
            raise ServiceError(
                "frequency sharding needs a value-routing partitioner")
        self._backend_kind = backend
        self._window_size_arg = (int(window_size) if window_size is not None
                                 else None)
        self._stream_length_hint = int(stream_length_hint)
        self.fault_plan = fault_plan
        self.retry = retry if retry is not None else pol.retry
        self._breaker_config = (int(breaker_failure_threshold),
                                int(breaker_cooldown_batches))
        self.small_batch_elements = int(small_batch_elements)
        self.snapshot_every = int(snapshot_every)
        self.max_restarts = int(max_restarts)
        self.retired = [dict(state) for state in (retired or [])]
        self._ctx = multiprocessing.get_context(mp_context)
        self.metrics = ServiceMetrics(
            shards=[ShardMetrics(i) for i in range(self.num_shards)])
        self._closed = False
        self._links = [
            _ShardLink(shard_id, ShmRing(ring_capacity))
            for shard_id in range(self.num_shards)]
        if shard_states is not None:
            for link, state in zip(self._links, shard_states):
                link.snap = state
        self._finalizer = weakref.finalize(self, _release_links, self._links)
        try:
            for link in self._links:
                self._spawn(link)
            for link in self._links:
                self._await_ready(link)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _worker_config(self, link: _ShardLink) -> dict:
        return {"statistic": self.statistic, "eps": self._shard_eps,
                "kind": self.kind,
                "backend": self._backend_kind,
                "window_size": self._window_size_arg,
                "length_hint": self._shard_hint,
                "fault_plan": self.fault_plan,
                "retry": self.retry,
                "breaker": self._breaker_config,
                "snapshot": link.snap}

    def _spawn(self, link: _ShardLink) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(link.shard_id, child_conn, link.ring.name,
                  link.ring.capacity, self._worker_config(link)),
            name=f"repro-shard-{link.shard_id}", daemon=True)
        proc.start()
        child_conn.close()
        link.proc, link.conn = proc, parent_conn

    def _await_ready(self, link: _ShardLink) -> None:
        deadline = time.monotonic() + self.policies.ready_timeout
        while True:
            try:
                if link.conn.poll(0.1):
                    message = link.conn.recv()
                    if message[0] == "ready":
                        link.window_size = int(message[1])
                        return
                    if message[0] == "fatal":
                        raise ServiceError(
                            f"shard {link.shard_id} worker failed to "
                            f"start: {message[1]}")
                    continue  # pragma: no cover - unexpected preamble
            except (EOFError, OSError) as exc:
                raise ServiceError(
                    f"shard {link.shard_id} worker died during "
                    f"startup: {exc!r}") from exc
            if not link.proc.is_alive():
                raise ServiceError(
                    f"shard {link.shard_id} worker exited during startup "
                    f"with code {link.proc.exitcode}")
            if time.monotonic() > deadline:  # pragma: no cover
                raise ServiceError(
                    f"shard {link.shard_id} worker not ready after "
                    f"{self.policies.ready_timeout:.0f}s")

    def _cleanup_worker(self, link: _ShardLink) -> None:
        if link.conn is not None:
            try:
                link.conn.close()
            except OSError:  # pragma: no cover
                pass
        if link.proc is not None:
            if link.proc.is_alive():
                link.proc.terminate()
            link.proc.join(timeout=10.0)
        link.proc = link.conn = None

    def _restart(self, link: _ShardLink, cause) -> None:
        """Supervised single respawn from the last snapshot (no replay)."""
        shard = self.metrics.shards[link.shard_id]
        shard.failures += 1
        shard.last_error = repr(cause)
        self._cleanup_worker(link)
        if shard.restarts >= self.max_restarts:
            shard.healthy = False
            shard.lost_elements += sum(
                entry.elements for entry in link.pending.values())
            exc = ShardFailedError(
                link.shard_id,
                f"shard {link.shard_id} worker died and the restart "
                f"budget ({self.max_restarts}) is exhausted")
            if isinstance(cause, BaseException):
                exc.__cause__ = cause
            link.failed = exc
            raise exc
        shard.restarts += 1
        link.ring.reset()
        link.pending.clear()
        link.results.clear()
        link.acked = link.snap_seq
        link.acks_since_snap = 0
        self._spawn(link)
        self._await_ready(link)

    def _restart_and_replay(self, link: _ShardLink, cause) -> None:
        """Respawn, then re-send the replay log with the same sequences."""
        self._restart(link, cause)
        shard = self.metrics.shards[link.shard_id]
        while True:
            try:
                for seq, kind, arr in list(link.replay):
                    if kind == "batch":
                        shard.replayed_batches += 1
                    self._transmit(link, seq, kind, arr, trace=False)
                return
            except _WorkerDied as died:  # died again mid-replay
                self._restart(link, died.cause)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _fresh_seq(self, link: _ShardLink) -> int:
        link.next_seq += 1
        return link.next_seq

    def _conn_send(self, link: _ShardLink, message) -> None:
        try:
            link.conn.send(message)
        except (OSError, ValueError) as exc:
            raise _WorkerDied(exc) from exc

    def _transmit(self, link: _ShardLink, seq: int, kind: str,
                  arr: np.ndarray | None, trace: bool) -> None:
        shard = self.metrics.shards[link.shard_id]
        if kind == "flush":
            link.pending[seq] = _Pending("flush", None, 0)
            self._conn_send(link, ("flush", seq, None, None, None, trace))
            return
        began = time.perf_counter()
        segment = None
        if self.small_batch_elements < arr.size <= link.ring.capacity:
            segment = link.ring.try_write(arr)
            while segment is None and link.ring.live_segments:
                # Ring full: block on acks until slots free (this is the
                # executor's backpressure — the queue above it is bounded
                # and the replay log tracks the same entries).
                if link.failed is not None:
                    raise link.failed
                self._wait_one_message(link, 0.2)
                segment = link.ring.try_write(arr)
        if segment is not None:
            message = ("batch", seq, "shm", segment[0], segment[1], trace)
            shard.shm_batches += 1
        else:
            # Tiny batch, or one larger than the whole ring: pickle it.
            message = ("batch", seq, "inline", arr, None, trace)
            shard.pickle_batches += 1
        link.pending[seq] = _Pending("batch", segment, int(arr.size))
        self._conn_send(link, message)
        shard.transport_seconds += time.perf_counter() - began

    def _wait_one_message(self, link: _ShardLink, timeout: float) -> bool:
        """Receive and apply one worker message; detect worker death."""
        try:
            if link.conn.poll(timeout):
                message = link.conn.recv()
            else:
                if link.proc is None or not link.proc.is_alive():
                    code = link.proc.exitcode if link.proc else None
                    raise _WorkerDied(RuntimeError(
                        f"shard {link.shard_id} worker exited with "
                        f"code {code}"))
                return False
        except (EOFError, OSError) as exc:
            raise _WorkerDied(exc) from exc
        self._apply_message(link, message)
        return True

    def _apply_message(self, link: _ShardLink, message) -> None:
        kind = message[0]
        if kind == "ack":
            self._apply_ack(link, message)
        elif kind == "result":
            link.results[message[1]] = message[2]
        elif kind == "error":
            # The guard escalated (no fallback + persistent faults):
            # the worker is alive but the shard cannot make progress.
            _, seq, detail = message
            entry = link.pending.pop(seq, None)
            if entry is not None and entry.segment is not None:
                link.ring.free(*entry.segment)
            link.acked = max(link.acked, seq)
            shard = self.metrics.shards[link.shard_id]
            shard.healthy = False
            shard.last_error = detail
            link.failed = ShardFailedError(
                link.shard_id, f"shard {link.shard_id}: {detail}")
        elif kind == "fatal":
            raise _WorkerDied(RuntimeError(message[1]))

    def _apply_ack(self, link: _ShardLink, message) -> None:
        _, seq, is_batch, elements, busy, delta, spans = message
        entry = link.pending.pop(seq, None)
        if entry is not None and entry.segment is not None:
            link.ring.free(*entry.segment)
        link.acked = max(link.acked, seq)
        link.acks_since_snap += 1
        if seq <= link.counted:
            return  # replayed work: already accounted before the crash
        link.counted = seq
        shard = self.metrics.shards[link.shard_id]
        if is_batch:
            shard.record_batch(elements, busy)
        else:
            shard.update_seconds += busy
        shard.faults += delta["faults"]
        shard.retries += delta["retries"]
        shard.degraded_batches += delta["degraded_batches"]
        shard.breaker_state = delta["breaker_state"]
        if delta["last_error"]:
            shard.last_error = delta["last_error"]
        if spans:
            col = collector()
            if col.enabled:
                for name, wall, count, attrs in spans:
                    attrs = {k: v for k, v in attrs.items()
                             if k not in ("shard", "count")}
                    col.record(name, wall, shard=link.shard_id,
                               count=count, **attrs)

    def _pump_until(self, link: _ShardLink, predicate) -> None:
        while not predicate():
            if link.failed is not None:
                raise link.failed
            self._wait_one_message(link, 0.2)

    def _settle(self, link: _ShardLink) -> None:
        """Block until every sent batch/flush of this shard is acked."""
        while True:
            try:
                self._pump_until(link, lambda: link.acked >= link.sent)
                return
            except _WorkerDied as died:
                self._restart_and_replay(link, died.cause)

    def _request(self, link: _ShardLink, command: str):
        """Settled synchronous round-trip (state/snapshot gathers)."""
        with link.lock:
            if link.failed is not None:
                raise link.failed
            self._settle(link)
            while True:
                seq = self._fresh_seq(link)
                try:
                    self._conn_send(link, (command, seq))
                    self._pump_until(link, lambda: seq in link.results)
                    return link.results.pop(seq)
                except _WorkerDied as died:
                    self._restart_and_replay(link, died.cause)
                    self._settle(link)

    def _maybe_snapshot(self, link: _ShardLink) -> None:
        """Cut an internal restart point; truncate the replay log."""
        if link.acks_since_snap < self.snapshot_every:
            return
        state = self._request(link, "snapshot")
        link.snap = {"miner": state}
        link.snap_seq = link.sent
        link.replay = [entry for entry in link.replay
                       if entry[0] > link.snap_seq]
        link.acks_since_snap = 0

    # ------------------------------------------------------------------
    # ingestion (the ShardedMiner surface)
    # ------------------------------------------------------------------
    def ingest(self, chunk: np.ndarray | list[float]) -> None:
        """Route one chunk across the worker pool (synchronous path)."""
        parts = self.partitioner.split(chunk)
        for shard_id, part in enumerate(parts):
            self.dispatch(shard_id, part)
        self.metrics.ingested += sum(int(p.size) for p in parts)

    def dispatch(self, shard_id: int, values: np.ndarray) -> None:
        """Send one pre-routed batch to a shard's worker (pipelined).

        Returns as soon as the batch is framed and on the wire — the
        worker's ack arrives later and is folded into the metrics
        opportunistically.  Unlike the inline pool, consecutive
        dispatches to *different* shards genuinely overlap: each worker
        sorts its backlog while the parent keeps routing.
        """
        arr = np.ascontiguousarray(
            np.asarray(values, dtype=np.float32).ravel())
        if arr.size == 0:
            return
        link = self._links[shard_id]
        with link.lock:
            if link.failed is not None:
                raise link.failed
            try:
                while link.conn.poll(0):  # fold in any ready acks
                    self._wait_one_message(link, 0)
            except _WorkerDied as died:
                self._restart_and_replay(link, died.cause)
            seq = self._fresh_seq(link)
            link.replay.append((seq, "batch", arr))
            link.sent = seq
            try:
                self._transmit(link, seq, "batch", arr,
                               trace=collector().enabled)
            except _WorkerDied as died:
                self._restart_and_replay(link, died.cause)
            self._maybe_snapshot(link)

    def drain(self) -> None:
        """Flush every worker's partial batch and wait for the acks.

        Flushes are sent to *all* shards first, then awaited — shards
        drain concurrently.
        """
        for link in self._links:
            with link.lock:
                if link.failed is not None:
                    raise link.failed
                seq = self._fresh_seq(link)
                link.replay.append((seq, "flush", None))
                link.sent = seq
                try:
                    self._transmit(link, seq, "flush", None,
                                   trace=collector().enabled)
                except _WorkerDied as died:
                    self._restart_and_replay(link, died.cause)
        for link in self._links:
            with link.lock:
                self._settle(link)
                self._maybe_snapshot(link)

    # ------------------------------------------------------------------
    # checkpoint/restore (same "sharded-miner" v1 format)
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, state: dict, backend: str | None = None,
                      **kwargs) -> "MpShardedMiner":
        """Rebuild a worker pool from a ``sharded-miner`` v1 snapshot.

        Accepts checkpoints written by either executor — worker
        processes boot directly from their shard's restore point.
        """
        if state.get("kind") != "sharded-miner" or state.get("version") != 1:
            raise ServiceError(
                f"not a v1 sharded-miner state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        window_size = state.get("window_size")
        shards = state["shards"]
        if "partitioner" not in kwargs:
            # Rebuild the exact router kind the checkpoint was cut
            # under (round-robin / hash / consistent-hash).
            kwargs["partitioner"] = partitioner_from_state(
                state["partitioner"])
        pool = cls(state["statistic"], eps=float(state["eps"]),
                   num_shards=int(state["num_shards"]),
                   backend=backend if backend is not None
                   else state["backend"],
                   window_size=(int(window_size) if window_size is not None
                                else None),
                   stream_length_hint=int(state["stream_length_hint"]),
                   kind=state.get("estimator_kind"),
                   shard_states=[{"miner": s["miner"]} for s in shards],
                   retired=state.get("retired"),
                   **kwargs)
        pool.partitioner.restore_state(state["partitioner"])
        pool.metrics.ingested = int(state["ingested"])
        for shard, shard_state in zip(pool.metrics.shards, shards):
            shard.elements = int(shard_state.get("elements", 0))
            shard.batches = int(shard_state.get("batches", 0))
        return pool

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers (gracefully where possible) and free the rings.

        Idempotent; also runs via a GC finalizer as a safety net, but
        call it explicitly (or use the context manager) — worker
        processes and shared-memory blocks are real OS resources.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        for link in self._links:
            with link.lock:
                proc, conn = link.proc, link.conn
                if (proc is not None and proc.is_alive()
                        and link.failed is None):
                    try:
                        link.conn.send(("stop", self._fresh_seq(link)))
                    except (OSError, ValueError):
                        pass
                if proc is not None:
                    proc.join(timeout=timeout)
                    if proc.is_alive():  # pragma: no cover - stuck worker
                        proc.terminate()
                        proc.join(timeout=timeout)
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
                link.proc = link.conn = None
                link.ring.close()

    def _reshard_kwargs(self) -> dict:
        """Constructor extras :meth:`reshard` carries onto the new pool."""
        return {"fault_plan": self.fault_plan, "retry": self.retry,
                "breaker_failure_threshold": self._breaker_config[0],
                "breaker_cooldown_batches": self._breaker_config[1],
                "policies": self.policies,
                "small_batch_elements": self.small_batch_elements,
                "snapshot_every": self.snapshot_every,
                "max_restarts": self.max_restarts}

    def _rebind_finalizer(self) -> None:
        self._finalizer = weakref.finalize(self, _release_links, self._links)
