"""Durable checkpoint storage for the sharded service.

The merge/prune algebra of the GK-04 summaries makes service state
naturally snapshottable: every estimator is a small, self-describing
value (``to_state()``), and the engine's buffered-but-unprocessed
elements are part of the snapshot too, so a restore resumes from the
exact element where the checkpoint was cut — the only data a crash can
lose is whatever was in flight *after* the last checkpoint, and the
service accounts that loss explicitly in its metrics.

:class:`CheckpointStore` is deliberately boring: versioned JSON files,
written atomically (temp file + rename) so a crash mid-write can never
leave a truncated "latest" checkpoint, with a bounded retention of old
checkpoints.  JSON keeps the files greppable and diffable; the state
dicts are small (summaries, not streams — a few hundred KB at worst).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from ..errors import CheckpointError

#: File-name pattern: checkpoint-<sequence>.json.
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.json$")


class CheckpointStore:
    """Atomic, versioned JSON checkpoints in one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created if missing.
    keep:
        How many most-recent checkpoints to retain (older ones are
        deleted after each successful save).

    Examples
    --------
    >>> import tempfile
    >>> from repro.service.checkpoint import CheckpointStore
    >>> store = CheckpointStore(tempfile.mkdtemp())
    >>> path = store.save({"version": 1, "hello": "world"})
    >>> store.load_latest()["hello"]
    'world'
    """

    def __init__(self, directory: str | Path, keep: int = 3):
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory}: "
                f"{exc}") from exc

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def checkpoints(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        found = []
        for entry in self.directory.iterdir():
            match = _CHECKPOINT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found)]

    @property
    def latest_path(self) -> Path | None:
        """The most recent checkpoint file, or ``None``."""
        existing = self.checkpoints()
        return existing[-1] if existing else None

    # ------------------------------------------------------------------
    # save / load
    # ------------------------------------------------------------------
    def save(self, state: dict) -> Path:
        """Atomically write ``state`` as the next checkpoint.

        The JSON goes to a temp file in the same directory first and is
        then renamed into place — readers never observe a partial file.
        """
        if not isinstance(state, dict) or "version" not in state:
            raise CheckpointError("checkpoint state must be a versioned dict")
        existing = self.checkpoints()
        sequence = 1
        if existing:
            sequence = int(_CHECKPOINT_RE.match(
                existing[-1].name).group(1)) + 1
        path = self.directory / f"checkpoint-{sequence:08d}.json"
        tmp = self.directory / f".checkpoint-{sequence:08d}.json.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(state, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError) as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(
                f"cannot write checkpoint {path}: {exc}") from exc
        for stale in self.checkpoints()[:-self.keep]:
            stale.unlink(missing_ok=True)
        return path

    def load(self, path: str | Path) -> dict:
        """Read and validate one checkpoint file."""
        try:
            with open(path, encoding="utf-8") as fh:
                state = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {exc}") from exc
        if not isinstance(state, dict) or "version" not in state:
            raise CheckpointError(
                f"checkpoint {path} is not a versioned dict")
        return state

    def load_latest(self) -> dict | None:
        """The most recent checkpoint's state, or ``None`` if empty."""
        path = self.latest_path
        return self.load(path) if path is not None else None
