"""Durable checkpoint storage for the sharded service.

The merge/prune algebra of the GK-04 summaries makes service state
naturally snapshottable: every estimator is a small, self-describing
value (``to_state()``), and the engine's buffered-but-unprocessed
elements are part of the snapshot too, so a restore resumes from the
exact element where the checkpoint was cut — the only data a crash can
lose is whatever was in flight *after* the last checkpoint, and the
service accounts that loss explicitly in its metrics.

:class:`CheckpointStore` is deliberately boring: versioned JSON files,
written atomically (temp file + rename) so a crash mid-write can never
leave a truncated "latest" checkpoint, with a bounded retention of old
checkpoints.  JSON keeps the files greppable and diffable; the state
dicts are small (summaries, not streams — a few hundred KB at worst).
"""

from __future__ import annotations

import json
import os
import re
import threading
import uuid
from pathlib import Path

from ..errors import CheckpointError

#: File-name pattern: checkpoint-<sequence>.json.
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.json$")

_LOCK_NAME = ".checkpoint.lock"


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lock holder on this machine."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, different user
        return True
    except OSError:  # pragma: no cover
        return False
    return True


def _pid_start_time(pid: int) -> int | None:
    """The process's kernel start time (clock ticks since boot).

    Linux only (``/proc/<pid>/stat`` field 22); ``None`` where /proc is
    unavailable.  Distinguishes a live lock holder from an *unrelated*
    process that recycled its pid — liveness alone would let the
    recycled pid hold the lock forever.
    """
    try:
        stat = Path(f"/proc/{pid}/stat").read_bytes()
        # Field 2 (comm) may contain spaces and parentheses; everything
        # after the *last* ')' is whitespace-separated, starting at
        # field 3.  starttime is field 22, so index 19 of that tail.
        return int(stat.rsplit(b")", 1)[1].split()[19])
    except (OSError, IndexError, ValueError):
        return None


class CheckpointStore:
    """Atomic, versioned JSON checkpoints in one directory.

    The temp-file + rename of each individual save was always atomic,
    but the *sequence rotation* was not: two writers pointed at the same
    directory (a parent process and a restarted worker, say) would both
    enumerate the directory, compute the same next sequence number, and
    the second rename would silently overwrite the first's checkpoint.
    Saves therefore serialise on an **owner lockfile**: ``save`` creates
    ``.checkpoint.lock`` with ``O_CREAT | O_EXCL`` (atomic on POSIX and
    Windows), records its owner token + pid inside, and deletes it when
    the rotation completes.  A second live writer gets a
    :class:`~repro.errors.CheckpointError` instead of a lost checkpoint;
    a lock left behind by a *dead* process (crash between create and
    delete) is detected by pid liveness — qualified by the pid's kernel
    start time, so a recycled pid cannot masquerade as the holder — and
    stolen.

    Parameters
    ----------
    directory:
        Where checkpoints live; created if missing.
    keep:
        How many most-recent checkpoints to retain (older ones are
        deleted after each successful save).
    owner:
        Writer identity recorded in the lockfile; defaults to a
        pid-qualified random token unique to this store instance.

    Examples
    --------
    >>> import tempfile
    >>> from repro.service.checkpoint import CheckpointStore
    >>> store = CheckpointStore(tempfile.mkdtemp())
    >>> path = store.save({"version": 1, "hello": "world"})
    >>> store.load_latest()["hello"]
    'world'
    """

    def __init__(self, directory: str | Path, keep: int = 3,
                 owner: str | None = None):
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)
        self.owner = (owner if owner is not None
                      else f"{os.getpid()}-{uuid.uuid4().hex[:8]}")
        self._thread_lock = threading.Lock()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory}: "
                f"{exc}") from exc

    # ------------------------------------------------------------------
    # writer lock
    # ------------------------------------------------------------------
    @property
    def lock_path(self) -> Path:
        """The on-disk writer lock serialising sequence rotation."""
        return self.directory / _LOCK_NAME

    def _read_lock_holder(self) -> dict | None:
        try:
            holder = json.loads(self.lock_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # Unreadable lock: its writer died mid-create; treat as
            # stale (a healthy holder finishes the tiny write before
            # anyone can observe the file — O_EXCL creation precedes it
            # by microseconds).
            return {}
        return holder if isinstance(holder, dict) else {}

    def _acquire_lock(self) -> None:
        pid = os.getpid()
        payload = json.dumps({"owner": self.owner, "pid": pid,
                              "pid_start": _pid_start_time(pid)})
        for _ in range(16):  # bounded steal-and-retry, never spins forever
            try:
                fd = os.open(self.lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                holder = self._read_lock_holder()
                if holder is None:
                    continue  # released between EXCL failure and read
                if holder.get("owner") == self.owner:
                    # Our own token: a previous save of this instance
                    # died between create and delete; reclaim.
                    return
                if self._holder_alive(holder):
                    raise CheckpointError(
                        f"checkpoint directory {self.directory} is "
                        f"locked by writer {holder.get('owner')!r} "
                        f"(pid {holder.get('pid')}); refusing a "
                        "concurrent rotation")
                # Stale lock from a dead process: steal it.
                self.lock_path.unlink(missing_ok=True)
                continue
            except OSError as exc:  # pragma: no cover
                raise CheckpointError(
                    f"cannot lock checkpoint directory "
                    f"{self.directory}: {exc}") from exc
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            return
        raise CheckpointError(  # pragma: no cover - needs adversarial fs
            f"could not acquire checkpoint lock in {self.directory}")

    def _holder_alive(self, holder: dict) -> bool:
        """Is the recorded lock holder still the process that took it?

        Pid liveness alone has a false positive: the holder died, the
        OS recycled its pid, and an unrelated process now answers the
        probe — the lock would never be stolen.  When the lockfile
        recorded the holder's kernel start time, a mismatch with the
        *current* owner of that pid proves the recycle and the lock is
        stale.  Locks recorded without a start time (non-Linux) keep
        the conservative liveness-only behaviour.
        """
        pid = int(holder.get("pid", 0))
        if not _pid_alive(pid):
            return False
        recorded = holder.get("pid_start")
        if recorded is None:
            return True
        current = _pid_start_time(pid)
        return current is None or int(recorded) == current

    def _release_lock(self) -> None:
        self.lock_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def checkpoints(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        found = []
        for entry in self.directory.iterdir():
            match = _CHECKPOINT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found)]

    @property
    def latest_path(self) -> Path | None:
        """The most recent checkpoint file, or ``None``."""
        existing = self.checkpoints()
        return existing[-1] if existing else None

    # ------------------------------------------------------------------
    # save / load
    # ------------------------------------------------------------------
    def save(self, state: dict) -> Path:
        """Atomically write ``state`` as the next checkpoint.

        The JSON goes to a temp file in the same directory first and is
        then renamed into place — readers never observe a partial file.
        The whole rotation (sequence enumeration, write, retention
        pruning) runs under the writer lock, so concurrent writers can
        never compute the same sequence number and overwrite each other.
        """
        if not isinstance(state, dict) or "version" not in state:
            raise CheckpointError("checkpoint state must be a versioned dict")
        with self._thread_lock:
            self._acquire_lock()
            try:
                return self._save_locked(state)
            finally:
                self._release_lock()

    def _save_locked(self, state: dict) -> Path:
        existing = self.checkpoints()
        sequence = 1
        if existing:
            sequence = int(_CHECKPOINT_RE.match(
                existing[-1].name).group(1)) + 1
        path = self.directory / f"checkpoint-{sequence:08d}.json"
        tmp = self.directory / f".checkpoint-{sequence:08d}.json.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(state, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError) as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(
                f"cannot write checkpoint {path}: {exc}") from exc
        for stale in self.checkpoints()[:-self.keep]:
            stale.unlink(missing_ok=True)
        return path

    def load(self, path: str | Path) -> dict:
        """Read and validate one checkpoint file."""
        try:
            with open(path, encoding="utf-8") as fh:
                state = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {exc}") from exc
        if not isinstance(state, dict) or "version" not in state:
            raise CheckpointError(
                f"checkpoint {path} is not a versioned dict")
        return state

    def load_latest(self) -> dict | None:
        """The most recent checkpoint's state, or ``None`` if empty."""
        path = self.latest_path
        return self.load(path) if path is not None else None
