"""Service-level performance metrics.

Follows the counter idiom of :mod:`repro.gpu.counters` and the bench
harness: plain mutable dataclasses that are cheap to update on the hot
path, with ``snapshot()`` producing independent copies so a live service
can be observed without tearing.  Per-operation pipeline latencies
(sort / histogram / merge / compress) are not duplicated here — each
shard's :class:`~repro.core.engine.EngineReport` already measures them;
the service metrics add the layer above: queueing, batching, shedding,
and end-to-end ingest rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace


@dataclass
class ShardMetrics:
    """Counters for one miner shard."""

    shard_id: int
    #: elements dispatched into the shard's miner.
    elements: int = 0
    #: coalesced batches dispatched (each is one `miner.update` call).
    batches: int = 0
    #: total wall seconds spent inside `miner.update`.
    update_seconds: float = 0.0
    #: slowest single batch dispatch, wall seconds.
    max_batch_seconds: float = 0.0
    #: chunks currently waiting in the shard's ingest queue.
    queue_depth: int = 0
    #: deepest the ingest queue has ever been.
    queue_high_water: int = 0
    #: elements dropped by the shard's load shedder.
    shed: int = 0

    def record_batch(self, elements: int, seconds: float) -> None:
        """Account one dispatched batch."""
        self.elements += int(elements)
        self.batches += 1
        self.update_seconds += seconds
        self.max_batch_seconds = max(self.max_batch_seconds, seconds)

    @property
    def mean_batch_seconds(self) -> float:
        """Average wall seconds per dispatched batch."""
        return self.update_seconds / self.batches if self.batches else 0.0

    def snapshot(self) -> "ShardMetrics":
        """An independent copy of the current values."""
        return replace(self)


@dataclass
class ServiceMetrics:
    """Aggregate view over the whole service."""

    started_at: float = field(default_factory=time.perf_counter)
    #: elements accepted by ingest (after shedding, before queueing).
    ingested: int = 0
    #: queries answered.
    queries: int = 0
    shards: list[ShardMetrics] = field(default_factory=list)

    @property
    def elapsed_seconds(self) -> float:
        """Wall seconds since the service (metrics) started."""
        return max(1e-9, time.perf_counter() - self.started_at)

    @property
    def ingest_rate(self) -> float:
        """Accepted elements per wall second."""
        return self.ingested / self.elapsed_seconds

    @property
    def shed(self) -> int:
        """Total elements dropped across all shards."""
        return sum(s.shed for s in self.shards)

    @property
    def queue_depth(self) -> int:
        """Chunks currently queued across all shards."""
        return sum(s.queue_depth for s in self.shards)

    def snapshot(self) -> "ServiceMetrics":
        """An independent copy (shard list deep-copied)."""
        copy = replace(self, shards=[s.snapshot() for s in self.shards])
        return copy
