"""Service-level performance metrics.

Follows the counter idiom of :mod:`repro.gpu.counters` and the bench
harness: plain mutable dataclasses that are cheap to update on the hot
path, with ``snapshot()`` producing independent copies so a live service
can be observed without tearing.  Per-operation pipeline latencies
(sort / histogram / merge / compress) are not duplicated here — each
shard's :class:`~repro.core.engine.EngineReport` already measures them;
the service metrics add the layer above: queueing, batching, shedding,
and end-to-end ingest rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace


@dataclass
class ShardMetrics:
    """Counters for one miner shard."""

    shard_id: int
    #: elements dispatched into the shard's miner.
    elements: int = 0
    #: coalesced batches dispatched (each is one `miner.update` call).
    batches: int = 0
    #: total wall seconds spent inside `miner.update`.
    update_seconds: float = 0.0
    #: slowest single batch dispatch, wall seconds.
    max_batch_seconds: float = 0.0
    #: chunks currently waiting in the shard's ingest queue.
    queue_depth: int = 0
    #: deepest the ingest queue has ever been.
    queue_high_water: int = 0
    #: elements dropped by the shard's load shedder.
    shed: int = 0
    #: transient GPU faults observed while dispatching into this shard.
    faults: int = 0
    #: backoff retries performed after those faults.
    retries: int = 0
    #: batches that ran on the CPU fallback backend (circuit open or
    #: retries exhausted) — answers identical, cost model degraded.
    degraded_batches: int = 0
    #: circuit-breaker state at the last dispatch ("closed" means the
    #: primary backend is trusted).
    breaker_state: str = "closed"
    #: batches shipped to a worker process via the shared-memory ring.
    shm_batches: int = 0
    #: batches that took the pickle-over-pipe fallback (small or
    #: ring-overflowing batches; mp executor only).
    pickle_batches: int = 0
    #: batches re-sent to a restarted worker from the replay log.
    replayed_batches: int = 0
    #: parent-side wall seconds spent framing/sending batches to the
    #: worker process (mp executor only).
    transport_seconds: float = 0.0
    #: batches shipped over a TCP channel (net executor only).
    net_batches: int = 0
    #: times the shard's worker re-dialed and resumed on a fresh
    #: connection (net executor only).
    reconnects: int = 0
    #: per-connection deadline/liveness expiries observed on the
    #: shard's channel (net executor only).
    deadline_timeouts: int = 0
    #: True once the shard's keyspace was reassigned to survivors
    #: (net executor degradation; implies ``healthy`` is False).
    taken_over: bool = False
    #: worker crashes (exceptions that escaped a dispatch).
    failures: int = 0
    #: supervised worker restarts consumed (bounded by the service).
    restarts: int = 0
    #: elements discarded because the shard failed permanently.
    lost_elements: int = 0
    #: False once the shard is permanently failed.
    healthy: bool = True
    #: repr() of the most recent dispatch error, "" if none.
    last_error: str = ""

    def record_batch(self, elements: int, seconds: float) -> None:
        """Account one dispatched batch."""
        self.elements += int(elements)
        self.batches += 1
        self.update_seconds += seconds
        self.max_batch_seconds = max(self.max_batch_seconds, seconds)

    @property
    def mean_batch_seconds(self) -> float:
        """Average wall seconds per dispatched batch."""
        return self.update_seconds / self.batches if self.batches else 0.0

    def snapshot(self) -> "ShardMetrics":
        """An independent copy of the current values."""
        return replace(self)


@dataclass
class ServiceMetrics:
    """Aggregate view over the whole service."""

    started_at: float = field(default_factory=time.perf_counter)
    #: elements accepted by ingest (after shedding, before queueing).
    ingested: int = 0
    #: queries answered.
    queries: int = 0
    #: checkpoints written by the service.
    checkpoints: int = 0
    shards: list[ShardMetrics] = field(default_factory=list)

    @property
    def elapsed_seconds(self) -> float:
        """Wall seconds since the service (metrics) started."""
        return max(1e-9, time.perf_counter() - self.started_at)

    @property
    def ingest_rate(self) -> float:
        """Accepted elements per wall second."""
        return self.ingested / self.elapsed_seconds

    @property
    def shed(self) -> int:
        """Total elements dropped across all shards."""
        return sum(s.shed for s in self.shards)

    @property
    def queue_depth(self) -> int:
        """Chunks currently queued across all shards."""
        return sum(s.queue_depth for s in self.shards)

    @property
    def faults(self) -> int:
        """Transient GPU faults observed across all shards."""
        return sum(s.faults for s in self.shards)

    @property
    def retries(self) -> int:
        """Backoff retries performed across all shards."""
        return sum(s.retries for s in self.shards)

    @property
    def degraded_batches(self) -> int:
        """Batches that ran on the CPU fallback across all shards."""
        return sum(s.degraded_batches for s in self.shards)

    @property
    def replayed_batches(self) -> int:
        """Batches re-sent to restarted workers across all shards."""
        return sum(s.replayed_batches for s in self.shards)

    @property
    def transport_seconds(self) -> float:
        """Parent-side batch transport seconds across all shards."""
        return sum(s.transport_seconds for s in self.shards)

    @property
    def lost_elements(self) -> int:
        """Elements discarded by permanently failed shards."""
        return sum(s.lost_elements for s in self.shards)

    @property
    def reconnects(self) -> int:
        """Worker reconnections absorbed across all shards."""
        return sum(s.reconnects for s in self.shards)

    @property
    def deadline_timeouts(self) -> int:
        """Connection deadline/liveness expiries across all shards."""
        return sum(s.deadline_timeouts for s in self.shards)

    @property
    def taken_over_shards(self) -> list[int]:
        """Shard ids whose keyspace was reassigned to survivors."""
        return [s.shard_id for s in self.shards if s.taken_over]

    @property
    def failed_shards(self) -> list[int]:
        """Shard ids that are permanently failed."""
        return [s.shard_id for s in self.shards if not s.healthy]

    def snapshot(self) -> "ServiceMetrics":
        """An independent copy (shard list deep-copied)."""
        copy = replace(self, shards=[s.snapshot() for s in self.shards])
        return copy
