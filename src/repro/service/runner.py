"""Self-contained demo driver for the sharded service.

``repro serve`` and ``examples/sharded_service.py`` both run this: a
synthetic workload is split across concurrent asyncio producers that
feed a :class:`StreamService`; the demo's queries are **standing
queries** registered through the continuous-query front-end
(:mod:`repro.query`) against the running service — mid-stream the
driver drains and answers them from the merged shard summaries, then
finishes the stream and answers again, validating every answer against
the exact offline result.  With ``--query-port`` the front-end is also
served over HTTP for the duration of the run (``repro query
register/list/answer`` are the clients), and ``--linger`` keeps the
drained service alive after the demo stream completes so operators can
interact with it.

Operational extras (all off by default): ``--fault-rate`` injects
seeded transient GPU faults to exercise the retry/degradation path,
``--checkpoint-dir`` persists periodic and final snapshots, and
SIGINT/SIGTERM stop producers gracefully — the service drains what was
delivered, answers over exactly that prefix, and writes one last
checkpoint before exiting.
"""

from __future__ import annotations

import asyncio
import math
import signal
import urllib.request
from dataclasses import dataclass, field

import numpy as np

from ..backends import registered_backends
from ..compiled import compiled_state
from ..core.estimators import default_kind_for, estimator_capabilities
from ..errors import ServiceError
from ..gpu.faults import FaultPlan
from ..obs import (MetricsRegistry, MetricsServer, register_compiled_state,
                   register_engine_reports, register_query_metrics,
                   register_service_metrics)
from ..query import QueryControlServer, QueryFrontEnd, QuerySpec
from ..streams.generators import GENERATORS
from .async_service import StreamService
from .checkpoint import CheckpointStore
from .executors import registered_executors, resolve_executor
from .metrics import ServiceMetrics
from .policies import ServicePolicies

#: Stream key the demo's standing queries watch (the one ingest stream).
STREAM_KEY = "serve"


@dataclass
class ServeResult:
    """Everything one demo run produced, for printing or asserting."""

    statistic: str
    n: int
    eps: float
    num_shards: int
    producers: int
    #: which executor ran the shards (inline / async / mp).
    executor: str = "async"
    #: explicit estimator kind (None = the statistic's default family).
    kind: str | None = None
    #: phase -> {query label -> (estimate, exact, within_bound)}
    answers: dict[str, dict[str, tuple[float, float, bool]]] = \
        field(default_factory=dict)
    metrics: ServiceMetrics | None = None
    shard_elements: list[int] = field(default_factory=list)
    #: True when SIGINT/SIGTERM cut the run short (answers then cover
    #: exactly the delivered prefix).
    interrupted: bool = False
    #: most recent checkpoint file, if a checkpoint dir was configured.
    checkpoint_path: str | None = None
    #: base URL of the metrics endpoint, when ``metrics_port`` was set.
    metrics_url: str | None = None
    #: final self-scrape of ``/metrics`` (Prometheus text format).
    metrics_scrape: str | None = None
    #: the standing queries the demo registered (front-end states).
    standing_queries: list[dict] = field(default_factory=list)
    #: fraction of standing queries served by a shared sketch.
    shared_ratio: float = 0.0
    #: base URL of the query control endpoint, when ``query_port`` set.
    query_url: str | None = None

    @property
    def all_within_bounds(self) -> bool:
        """Did every query honour its epsilon guarantee?"""
        return all(ok for phase in self.answers.values()
                   for _, _, ok in phase.values())


def _rank_error(reference: np.ndarray, estimate: float, target: int) -> int:
    lo = int(np.searchsorted(reference, estimate, "left")) + 1
    hi = int(np.searchsorted(reference, estimate, "right"))
    return max(lo - target, target - hi, 0)


async def _register_standing_queries(frontend: QueryFrontEnd,
                                     result: ServeResult,
                                     phi: tuple[float, ...],
                                     support: float) -> dict[str, str]:
    """The demo's query set, as standing registrations: label -> id.

    Every label matches the answer tables' keys, so the validation
    phases read naturally; all specs target the one adopted service
    pool, which the front-end's sharing metrics then reflect.
    """
    ids: dict[str, str] = {}
    eps, key = result.eps, STREAM_KEY
    if result.statistic == "quantile":
        for p in phi:
            ids[f"phi={p:g}"] = await frontend.register(
                QuerySpec("quantile", key=key, eps=eps, phi=p))
    elif result.statistic == "frequency":
        ids[f"heavy@{support:g}"] = await frontend.register(
            QuerySpec("heavy_hitters", key=key, eps=eps, support=support))
    else:
        ids["distinct"] = await frontend.register(
            QuerySpec("distinct", key=key, eps=eps))
    result.standing_queries = [q.to_state() for q in frontend.queries()]
    result.shared_ratio = frontend.metrics.shared_ratio
    return ids


async def _query_phase(service: StreamService, frontend: QueryFrontEnd,
                       query_ids: dict[str, str], result: ServeResult,
                       phase: str, seen: np.ndarray,
                       phi: tuple[float, ...], support: float) -> None:
    """Drain, answer the standing queries, validate against ``seen``."""
    await service.drain()
    answers: dict[str, tuple[float, float, bool]] = {}
    n = seen.size
    eps = result.eps
    if result.statistic == "quantile":
        reference = np.sort(seen)
        # Relative-bound kinds (DDSketch) promise value accuracy, not
        # rank accuracy — validate each against its own guarantee.
        relative = (result.kind is not None and estimator_capabilities(
            result.kind).bound_type == "relative")
        for p in phi:
            label = f"phi={p:g}"
            estimate = (await frontend.answer(query_ids[label])).value
            target = max(1, math.ceil(p * n))
            exact = float(reference[target - 1])
            if relative:
                ok = abs(estimate - exact) <= eps * abs(exact) + 1e-9
            else:
                err = _rank_error(reference, estimate, target)
                ok = err <= max(1, eps * n)
            answers[label] = (estimate, exact, ok)
    elif result.statistic == "frequency":
        values, counts = np.unique(seen, return_counts=True)
        true = dict(zip(values.tolist(), counts.tolist()))
        reported = dict(
            (await frontend.answer(query_ids[f"heavy@{support:g}"])).value)
        heavy = {v for v, c in true.items() if c >= support * n}
        no_false_negatives = heavy <= set(reported)
        no_overcount = all(est <= true.get(v, 0) + 1e-9
                           for v, est in reported.items())
        undercount_ok = all(true[v] - reported.get(v, 0) <= eps * n + 4
                            for v in heavy)
        top = max(reported.items(), key=lambda kv: kv[1]) if reported \
            else (math.nan, 0)
        answers[f"heavy@{support:g}"] = (
            float(len(reported)), float(len(heavy)),
            no_false_negatives and no_overcount and undercount_ok)
        answers["top_count"] = (float(top[1]), float(true.get(top[0], 0)),
                                no_overcount)
    else:
        estimate = (await frontend.answer(query_ids["distinct"])).value
        exact = float(np.unique(seen).size)
        # KMV is randomized: 3x its relative standard error ~ 3 * eps.
        answers["distinct"] = (estimate, exact,
                               abs(estimate - exact) <= 3 * eps * exact + 2)
    result.answers[phase] = answers


async def _run(service: StreamService, frontend: QueryFrontEnd,
               result: ServeResult, slices: list[np.ndarray],
               chunk_size: int, phi: tuple[float, ...], support: float,
               query_port: int | None = None,
               linger: float = 0.0) -> None:
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            # Windows event loops / non-main threads: run without
            # graceful-shutdown handlers rather than fail.
            pass

    delivered: list[np.ndarray] = []

    async def produce(data: np.ndarray) -> None:
        # Ingest through the front-end's fan-out: the adopted service
        # pool gets every chunk (unchanged accounting), and a query
        # registered mid-run over HTTP that built its own sketch sees
        # the stream from its registration onwards.
        for start in range(0, data.size, chunk_size):
            if stop_event.is_set():
                return
            chunk = data[start:start + chunk_size]
            await frontend.ingest(chunk, STREAM_KEY)
            delivered.append(chunk)

    query_ids = await _register_standing_queries(frontend, result, phi,
                                                 support)
    control: QueryControlServer | None = None
    if query_port is not None:
        control = QueryControlServer(frontend, loop, port=query_port)
        control.start()
        result.query_url = control.url
    try:
        # The context exit is the graceful path either way: drain what
        # was delivered and (if configured) write a final checkpoint.
        async with service:
            halves = [np.array_split(s, 2) for s in slices]
            await asyncio.gather(*(produce(h[0]) for h in halves))
            if not stop_event.is_set():
                await _query_phase(service, frontend, query_ids, result,
                                   "mid-stream", np.concatenate(delivered),
                                   phi, support)
            await asyncio.gather(*(produce(h[1]) for h in halves))
            result.interrupted = stop_event.is_set()
            phase = "interrupted" if result.interrupted else "final"
            await _query_phase(service, frontend, query_ids, result, phase,
                               np.concatenate(delivered), phi, support)
            result.metrics = service.metrics
            if linger > 0 and not stop_event.is_set():
                # Keep the drained service up for operators (the query
                # control plane keeps answering); a signal ends it early.
                try:
                    await asyncio.wait_for(stop_event.wait(), linger)
                except asyncio.TimeoutError:
                    pass
            # Registrations/unregistrations may have arrived over HTTP
            # (including during the linger window); report the
            # front-end's final view, not the initial one.
            result.standing_queries = [q.to_state()
                                       for q in frontend.queries()]
            result.shared_ratio = frontend.metrics.shared_ratio
        # stop() ran inside __aexit__; pick up the final checkpoint count.
        if service.checkpoint_store is not None:
            result.metrics = service.metrics
            path = service.checkpoint_store.latest_path
            result.checkpoint_path = str(path) if path else None
    finally:
        if control is not None:
            control.stop()
        for signum in installed:
            loop.remove_signal_handler(signum)
    result.shard_elements = [s.elements for s in result.metrics.shards]


def run_service_demo(statistic: str = "quantile", n: int = 100_000,
                     eps: float = 0.02, num_shards: int = 4,
                     producers: int = 2, backend: str = "cpu",
                     window_size: int | None = None,
                     workload: str = "uniform", seed: int = 0,
                     chunk_size: int = 2048, queue_chunks: int = 16,
                     shed_capacity: int | None = None,
                     phi: tuple[float, ...] = (0.5, 0.99),
                     support: float = 0.05,
                     fault_rate: float = 0.0,
                     checkpoint_dir: str | None = None,
                     checkpoint_interval: float | None = None,
                     metrics_port: int | None = None,
                     executor: str = "async",
                     workers: int | None = None,
                     policies: ServicePolicies | None = None,
                     query_port: int | None = None,
                     linger: float = 0.0,
                     kind: str | None = None) -> ServeResult:
    """Run the end-to-end demo; see the module docstring.

    ``executor`` picks where the shards run (``inline`` / ``async`` /
    ``mp`` / ``net`` — see :mod:`repro.service.executors`); with the
    ``mp`` or ``net`` executor, ``workers`` overrides the shard count
    so ``--workers N`` means N worker processes (one shard each).
    ``policies`` bundles the retry/deadline/heartbeat/takeover knobs
    (:class:`~repro.service.policies.ServicePolicies`) for the worker
    pools; the in-process pools accept it too, using the subset that
    applies.

    The demo's queries are standing registrations through a
    :class:`~repro.query.frontend.QueryFrontEnd` that adopts the
    service's pool; ``query_port`` serves the front-end's HTTP control
    plane (``repro query ...``) for the duration of the run, and
    ``linger`` keeps the drained service (and control plane) alive
    that many extra seconds after the demo stream completes.
    """
    if producers < 1:
        raise ServiceError(f"need >= 1 producer, got {producers}")
    if backend not in registered_backends():
        # Fail before any shard is built: the registry is the single
        # source of truth for what "backend" can name.
        raise ServiceError(
            f"unknown backend {backend!r}; registered backends: "
            f"{', '.join(registered_backends())}")
    if executor not in registered_executors():
        raise ServiceError(
            f"unknown executor {executor!r}; registered executors: "
            f"{', '.join(registered_executors())}")
    if not 0.0 <= fault_rate < 1.0:
        raise ServiceError(
            f"fault_rate must be in [0, 1), got {fault_rate}")
    if workers is not None:
        if workers < 1:
            raise ServiceError(f"need >= 1 worker, got {workers}")
        num_shards = workers
    if kind is not None and kind == default_kind_for(statistic):
        kind = None
    if (statistic == "frequency" and kind is not None
            and "heavy_hitters" not in estimator_capabilities(kind).metrics):
        raise ServiceError(
            f"estimator kind {kind!r} answers point estimates only and "
            "cannot serve the demo's heavy-hitter queries; use "
            f"`repro frequent --kind {kind} --estimate VALUE` instead")
    data = GENERATORS[workload](n, seed=seed)
    fault_plan = (FaultPlan.transfers(fault_rate, seed=seed)
                  if fault_rate > 0 else None)
    store = (CheckpointStore(checkpoint_dir)
             if checkpoint_dir is not None else None)
    miner_kwargs = dict(statistic=statistic, eps=eps, num_shards=num_shards,
                        backend=backend, window_size=window_size,
                        stream_length_hint=n, fault_plan=fault_plan,
                        kind=kind)
    if policies is not None:
        miner_kwargs["policies"] = policies
    service = resolve_executor(executor)(
        miner_kwargs,
        dict(queue_chunks=queue_chunks, shed_capacity=shed_capacity,
             checkpoint_store=store,
             checkpoint_interval=checkpoint_interval))
    miner = service.miner
    result = ServeResult(statistic, n, eps, num_shards, producers,
                         executor=executor, kind=kind)
    slices = np.array_split(data, producers)

    # The front-end adopts the service's pool as a live sketch: the
    # demo's queries (and any registered over --query-port) share it by
    # eps-dominance instead of building pools of their own.
    frontend = QueryFrontEnd(executor=executor, backend=backend,
                             num_shards=num_shards)
    frontend.adopt(service, statistic=statistic, eps=eps, key=STREAM_KEY,
                   kind=kind)

    server: MetricsServer | None = None
    if metrics_port is not None:
        # Pull-model observability: the registry reads the live service
        # and per-shard engine state only when a scraper asks, so the
        # ingest path pays nothing for the endpoint being up.
        registry = MetricsRegistry()
        register_service_metrics(registry, lambda: service.metrics)
        register_engine_reports(registry, miner.shard_reports)
        register_query_metrics(registry, lambda: frontend.metrics)
        register_compiled_state(registry, compiled_state)
        server = MetricsServer(
            registry, port=metrics_port,
            healthy=lambda: not service.metrics.failed_shards)
        server.start()
    try:
        asyncio.run(_run(service, frontend, result, slices, chunk_size,
                         phi, support, query_port=query_port,
                         linger=linger))
        if server is not None:
            result.metrics_url = server.url
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=5) as response:
                result.metrics_scrape = response.read().decode("utf-8")
    finally:
        if server is not None:
            server.stop()
        # The mp pool owns worker processes and shared memory; the
        # in-process pools have no-op-free close paths.
        closer = getattr(miner, "close", None)
        if closer is not None:
            closer()
    return result


def format_result(result: ServeResult) -> str:
    """Human-readable report of one demo run."""
    lines = [
        f"sharded {result.statistic} service: {result.n:,} tuples, "
        f"eps={result.eps}, {result.num_shards} shards "
        f"({result.executor} executor), {result.producers} producers",
    ]
    if result.interrupted:
        lines.append("  [interrupted by signal — answers cover the "
                     "delivered prefix]")
    for phase, answers in result.answers.items():
        lines.append(f"  [{phase}]")
        for label, (estimate, exact, ok) in answers.items():
            flag = "ok" if ok else "VIOLATED"
            lines.append(f"    {label:<14} estimate {estimate:>12g}   "
                         f"exact {exact:>12g}   {flag}")
    metrics = result.metrics
    if metrics is not None:
        lines.append("  [metrics]")
        lines.append(f"    ingest rate    {metrics.ingest_rate:>12,.0f} "
                     f"elements/s ({metrics.ingested:,} accepted, "
                     f"{metrics.shed:,} shed)")
        lines.append(f"    queries        {metrics.queries:>12,}")
        if metrics.faults or metrics.degraded_batches:
            lines.append(
                f"    resilience     {metrics.faults:,} faults, "
                f"{metrics.retries:,} retries, "
                f"{metrics.degraded_batches:,} degraded batches, "
                f"{metrics.lost_elements:,} lost")
        if metrics.checkpoints:
            where = (f" (latest: {result.checkpoint_path})"
                     if result.checkpoint_path else "")
            lines.append(f"    checkpoints    {metrics.checkpoints:>12,}"
                         + where)
        for shard in metrics.shards:
            lines.append(
                f"    shard {shard.shard_id}: {shard.elements:>9,} elements  "
                f"{shard.batches:>5,} batches  "
                f"mean {shard.mean_batch_seconds * 1e3:7.2f} ms  "
                f"max {shard.max_batch_seconds * 1e3:7.2f} ms  "
                f"queue high-water {shard.queue_high_water}")
    if result.standing_queries:
        sketches = {tuple(sorted((k, v) for k, v in q["sketch"].items()
                          if k != "refcount"))
                    for q in result.standing_queries}
        lines.append(f"  [standing queries] {len(result.standing_queries)} "
                     f"registered over {len(sketches)} physical "
                     f"sketch(es), shared ratio {result.shared_ratio:.0%}")
        for q in result.standing_queries:
            spec = q["spec"]
            detail = {k: spec[k] for k in ("phi", "support", "k", "value")
                      if spec.get(k) is not None}
            args = ", ".join(f"{k}={v:g}" for k, v in detail.items())
            lines.append(
                f"    {q['id']:<6} {spec['metric']}({args}) "
                f"-> {q['kind']} @ eps {q['error_bound']:g}"
                + ("  [shared]" if q["shared"] else ""))
    if result.query_url is not None:
        lines.append(f"  [query control] {result.query_url}/queries")
    if result.metrics_url is not None:
        series = [line for line in (result.metrics_scrape or "").splitlines()
                  if line and not line.startswith("#")]
        lines.append("  [observability]")
        lines.append(f"    served {result.metrics_url}/metrics "
                     f"({len(series)} series) and /healthz")
        for sample in series[:4]:
            lines.append(f"      {sample}")
    return "\n".join(lines)
