"""Self-contained demo driver for the sharded service.

``repro serve`` and ``examples/sharded_service.py`` both run this: a
synthetic workload is split across concurrent asyncio producers that
feed a :class:`StreamService`; mid-stream the driver drains and answers
queries from the merged shard summaries, then finishes the stream and
answers again — validating every answer against the exact offline
result.  There is no network listener; the point is the service layer
itself (sharding, batching, backpressure, merge-on-query), which a
transport would sit on top of.

Operational extras (all off by default): ``--fault-rate`` injects
seeded transient GPU faults to exercise the retry/degradation path,
``--checkpoint-dir`` persists periodic and final snapshots, and
SIGINT/SIGTERM stop producers gracefully — the service drains what was
delivered, answers over exactly that prefix, and writes one last
checkpoint before exiting.
"""

from __future__ import annotations

import asyncio
import math
import signal
import urllib.request
from dataclasses import dataclass, field

import numpy as np

from ..backends import registered_backends
from ..errors import ServiceError
from ..gpu.faults import FaultPlan
from ..obs import (MetricsRegistry, MetricsServer, register_engine_reports,
                   register_service_metrics)
from ..streams.generators import GENERATORS
from .async_service import StreamService
from .checkpoint import CheckpointStore
from .executors import registered_executors, resolve_executor
from .metrics import ServiceMetrics
from .policies import ServicePolicies


@dataclass
class ServeResult:
    """Everything one demo run produced, for printing or asserting."""

    statistic: str
    n: int
    eps: float
    num_shards: int
    producers: int
    #: which executor ran the shards (inline / async / mp).
    executor: str = "async"
    #: phase -> {query label -> (estimate, exact, within_bound)}
    answers: dict[str, dict[str, tuple[float, float, bool]]] = \
        field(default_factory=dict)
    metrics: ServiceMetrics | None = None
    shard_elements: list[int] = field(default_factory=list)
    #: True when SIGINT/SIGTERM cut the run short (answers then cover
    #: exactly the delivered prefix).
    interrupted: bool = False
    #: most recent checkpoint file, if a checkpoint dir was configured.
    checkpoint_path: str | None = None
    #: base URL of the metrics endpoint, when ``metrics_port`` was set.
    metrics_url: str | None = None
    #: final self-scrape of ``/metrics`` (Prometheus text format).
    metrics_scrape: str | None = None

    @property
    def all_within_bounds(self) -> bool:
        """Did every query honour its epsilon guarantee?"""
        return all(ok for phase in self.answers.values()
                   for _, _, ok in phase.values())


def _rank_error(reference: np.ndarray, estimate: float, target: int) -> int:
    lo = int(np.searchsorted(reference, estimate, "left")) + 1
    hi = int(np.searchsorted(reference, estimate, "right"))
    return max(lo - target, target - hi, 0)


async def _query_phase(service: StreamService, result: ServeResult,
                       phase: str, seen: np.ndarray,
                       phi: tuple[float, ...], support: float) -> None:
    """Drain, query, and validate against the exact answer over ``seen``."""
    await service.drain()
    answers: dict[str, tuple[float, float, bool]] = {}
    n = seen.size
    eps = result.eps
    if result.statistic == "quantile":
        reference = np.sort(seen)
        for p in phi:
            estimate = await service.quantile(p)
            target = max(1, math.ceil(p * n))
            err = _rank_error(reference, estimate, target)
            answers[f"phi={p:g}"] = (estimate, float(reference[target - 1]),
                                     err <= max(1, eps * n))
    elif result.statistic == "frequency":
        values, counts = np.unique(seen, return_counts=True)
        true = dict(zip(values.tolist(), counts.tolist()))
        reported = dict(await service.frequent_items(support))
        heavy = {v for v, c in true.items() if c >= support * n}
        no_false_negatives = heavy <= set(reported)
        no_overcount = all(est <= true.get(v, 0) + 1e-9
                           for v, est in reported.items())
        undercount_ok = all(true[v] - reported.get(v, 0) <= eps * n + 4
                            for v in heavy)
        top = max(reported.items(), key=lambda kv: kv[1]) if reported \
            else (math.nan, 0)
        answers[f"heavy@{support:g}"] = (
            float(len(reported)), float(len(heavy)),
            no_false_negatives and no_overcount and undercount_ok)
        answers["top_count"] = (float(top[1]), float(true.get(top[0], 0)),
                                no_overcount)
    else:
        estimate = await service.distinct()
        exact = float(np.unique(seen).size)
        # KMV is randomized: 3x its relative standard error ~ 3 * eps.
        answers["distinct"] = (estimate, exact,
                               abs(estimate - exact) <= 3 * eps * exact + 2)
    result.answers[phase] = answers


async def _run(service: StreamService, result: ServeResult,
               slices: list[np.ndarray], chunk_size: int,
               phi: tuple[float, ...], support: float) -> None:
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            # Windows event loops / non-main threads: run without
            # graceful-shutdown handlers rather than fail.
            pass

    delivered: list[np.ndarray] = []

    async def produce(data: np.ndarray) -> None:
        for start in range(0, data.size, chunk_size):
            if stop_event.is_set():
                return
            chunk = data[start:start + chunk_size]
            await service.ingest(chunk)
            delivered.append(chunk)

    try:
        # The context exit is the graceful path either way: drain what
        # was delivered and (if configured) write a final checkpoint.
        async with service:
            halves = [np.array_split(s, 2) for s in slices]
            await asyncio.gather(*(produce(h[0]) for h in halves))
            if not stop_event.is_set():
                await _query_phase(service, result, "mid-stream",
                                   np.concatenate(delivered), phi, support)
            await asyncio.gather(*(produce(h[1]) for h in halves))
            result.interrupted = stop_event.is_set()
            phase = "interrupted" if result.interrupted else "final"
            await _query_phase(service, result, phase,
                               np.concatenate(delivered), phi, support)
            result.metrics = service.metrics
        # stop() ran inside __aexit__; pick up the final checkpoint count.
        if service.checkpoint_store is not None:
            result.metrics = service.metrics
            path = service.checkpoint_store.latest_path
            result.checkpoint_path = str(path) if path else None
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
    result.shard_elements = [s.elements for s in result.metrics.shards]


def run_service_demo(statistic: str = "quantile", n: int = 100_000,
                     eps: float = 0.02, num_shards: int = 4,
                     producers: int = 2, backend: str = "cpu",
                     window_size: int | None = None,
                     workload: str = "uniform", seed: int = 0,
                     chunk_size: int = 2048, queue_chunks: int = 16,
                     shed_capacity: int | None = None,
                     phi: tuple[float, ...] = (0.5, 0.99),
                     support: float = 0.05,
                     fault_rate: float = 0.0,
                     checkpoint_dir: str | None = None,
                     checkpoint_interval: float | None = None,
                     metrics_port: int | None = None,
                     executor: str = "async",
                     workers: int | None = None,
                     policies: ServicePolicies | None = None) -> ServeResult:
    """Run the end-to-end demo; see the module docstring.

    ``executor`` picks where the shards run (``inline`` / ``async`` /
    ``mp`` / ``net`` — see :mod:`repro.service.executors`); with the
    ``mp`` or ``net`` executor, ``workers`` overrides the shard count
    so ``--workers N`` means N worker processes (one shard each).
    ``policies`` bundles the retry/deadline/heartbeat/takeover knobs
    (:class:`~repro.service.policies.ServicePolicies`) for the worker
    pools; the in-process pools accept it too, using the subset that
    applies.
    """
    if producers < 1:
        raise ServiceError(f"need >= 1 producer, got {producers}")
    if backend not in registered_backends():
        # Fail before any shard is built: the registry is the single
        # source of truth for what "backend" can name.
        raise ServiceError(
            f"unknown backend {backend!r}; registered backends: "
            f"{', '.join(registered_backends())}")
    if executor not in registered_executors():
        raise ServiceError(
            f"unknown executor {executor!r}; registered executors: "
            f"{', '.join(registered_executors())}")
    if not 0.0 <= fault_rate < 1.0:
        raise ServiceError(
            f"fault_rate must be in [0, 1), got {fault_rate}")
    if workers is not None:
        if workers < 1:
            raise ServiceError(f"need >= 1 worker, got {workers}")
        num_shards = workers
    data = GENERATORS[workload](n, seed=seed)
    fault_plan = (FaultPlan.transfers(fault_rate, seed=seed)
                  if fault_rate > 0 else None)
    store = (CheckpointStore(checkpoint_dir)
             if checkpoint_dir is not None else None)
    miner_kwargs = dict(statistic=statistic, eps=eps, num_shards=num_shards,
                        backend=backend, window_size=window_size,
                        stream_length_hint=n, fault_plan=fault_plan)
    if policies is not None:
        miner_kwargs["policies"] = policies
    service = resolve_executor(executor)(
        miner_kwargs,
        dict(queue_chunks=queue_chunks, shed_capacity=shed_capacity,
             checkpoint_store=store,
             checkpoint_interval=checkpoint_interval))
    miner = service.miner
    result = ServeResult(statistic, n, eps, num_shards, producers,
                         executor=executor)
    slices = np.array_split(data, producers)

    server: MetricsServer | None = None
    if metrics_port is not None:
        # Pull-model observability: the registry reads the live service
        # and per-shard engine state only when a scraper asks, so the
        # ingest path pays nothing for the endpoint being up.
        registry = MetricsRegistry()
        register_service_metrics(registry, lambda: service.metrics)
        register_engine_reports(registry, miner.shard_reports)
        server = MetricsServer(
            registry, port=metrics_port,
            healthy=lambda: not service.metrics.failed_shards)
        server.start()
    try:
        asyncio.run(_run(service, result, slices, chunk_size, phi, support))
        if server is not None:
            result.metrics_url = server.url
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=5) as response:
                result.metrics_scrape = response.read().decode("utf-8")
    finally:
        if server is not None:
            server.stop()
        # The mp pool owns worker processes and shared memory; the
        # in-process pools have no-op-free close paths.
        closer = getattr(miner, "close", None)
        if closer is not None:
            closer()
    return result


def format_result(result: ServeResult) -> str:
    """Human-readable report of one demo run."""
    lines = [
        f"sharded {result.statistic} service: {result.n:,} tuples, "
        f"eps={result.eps}, {result.num_shards} shards "
        f"({result.executor} executor), {result.producers} producers",
    ]
    if result.interrupted:
        lines.append("  [interrupted by signal — answers cover the "
                     "delivered prefix]")
    for phase, answers in result.answers.items():
        lines.append(f"  [{phase}]")
        for label, (estimate, exact, ok) in answers.items():
            flag = "ok" if ok else "VIOLATED"
            lines.append(f"    {label:<14} estimate {estimate:>12g}   "
                         f"exact {exact:>12g}   {flag}")
    metrics = result.metrics
    if metrics is not None:
        lines.append("  [metrics]")
        lines.append(f"    ingest rate    {metrics.ingest_rate:>12,.0f} "
                     f"elements/s ({metrics.ingested:,} accepted, "
                     f"{metrics.shed:,} shed)")
        lines.append(f"    queries        {metrics.queries:>12,}")
        if metrics.faults or metrics.degraded_batches:
            lines.append(
                f"    resilience     {metrics.faults:,} faults, "
                f"{metrics.retries:,} retries, "
                f"{metrics.degraded_batches:,} degraded batches, "
                f"{metrics.lost_elements:,} lost")
        if metrics.checkpoints:
            where = (f" (latest: {result.checkpoint_path})"
                     if result.checkpoint_path else "")
            lines.append(f"    checkpoints    {metrics.checkpoints:>12,}"
                         + where)
        for shard in metrics.shards:
            lines.append(
                f"    shard {shard.shard_id}: {shard.elements:>9,} elements  "
                f"{shard.batches:>5,} batches  "
                f"mean {shard.mean_batch_seconds * 1e3:7.2f} ms  "
                f"max {shard.max_batch_seconds * 1e3:7.2f} ms  "
                f"queue high-water {shard.queue_high_water}")
    if result.metrics_url is not None:
        series = [line for line in (result.metrics_scrape or "").splitlines()
                  if line and not line.startswith("#")]
        lines.append("  [observability]")
        lines.append(f"    served {result.metrics_url}/metrics "
                     f"({len(series)} series) and /healthz")
        for sample in series[:4]:
            lines.append(f"      {sample}")
    return "\n".join(lines)
