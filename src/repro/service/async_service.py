"""Asyncio ingestion front-end for the shard pool.

The paper's pipeline wants work in texture-sized batches: four windows
packed into the RGBA channels of one texture per sort pass (Section
4.1).  Arrivals, on the other hand, come in whatever chunks producers
emit — "irregularities and bursts in the data arrival rates" (Section
1).  This module sits between the two:

* one **bounded queue per shard** — when a shard falls behind, its
  queue fills and ``await ingest(...)`` blocks the producers
  (backpressure) instead of growing memory without bound;
* optional **load shedding** in front of each queue, wired to
  :class:`repro.streams.load_shedding.LoadShedder` — each ingest call is
  one arrival tick, and the shedder's shed/spill policy decides what
  the queue never sees;
* per-shard **worker tasks** that coalesce queued chunks up to the
  4-window texture batch before dispatching, so a bursty producer still
  fills the RGBA pack, and that run the (GIL-releasing, numpy-heavy)
  pipeline via ``asyncio.to_thread`` so shards make progress in
  parallel;
* **queries at any time** against the merge-on-query layer of the
  wrapped :class:`~repro.service.sharded.ShardedMiner`;
* **supervision** — a worker that dies on an unexpected exception is
  restarted a bounded number of times; past the bound the shard is
  marked permanently failed, its queue is reaped (counting lost
  elements) so ``drain`` can never hang, and ingest/queries fail fast
  with a typed :class:`~repro.errors.ShardFailedError`;
* optional **periodic checkpointing** to a
  :class:`~repro.service.checkpoint.CheckpointStore`, cut at batch
  boundaries (queues settled, dispatch locks held) so a restored
  service resumes from a consistent point.

Everything is standard-library asyncio; there is no network listener —
the service is an in-process component that a transport (or the
``repro serve`` demo driver) feeds.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import AsyncExitStack

import numpy as np

from ..errors import ServiceError, ShardFailedError
from ..obs import collector
from ..streams.load_shedding import LoadShedder
from .checkpoint import CheckpointStore
from .metrics import ServiceMetrics
from .sharded import ShardedMiner


class StreamService:
    """Concurrent ingestion and querying around a :class:`ShardedMiner`.

    Parameters
    ----------
    miner:
        The shard pool to feed.
    queue_chunks:
        Per-shard queue capacity in chunks; a full queue blocks
        producers (backpressure).
    coalesce_windows:
        Dispatch target in windows per batch (4 fills one RGBA texture
        pack).  Workers never *wait* for a full batch — they greedily
        take what is queued — so an idle service still has low latency.
    shed_capacity:
        If set, put a :class:`LoadShedder` with this per-tick element
        capacity in front of every shard queue (one ingest call = one
        tick per shard).
    shed_policy / shed_queue_limit:
        Forwarded to the shedders (``"shed"`` drops, ``"spill"`` queues
        up to the limit).
    checkpoint_store:
        If set, :meth:`checkpoint` (and the periodic loop, and a final
        snapshot on a draining :meth:`stop`) persist the pool here.
    checkpoint_interval:
        Seconds between automatic checkpoints; ``None`` disables the
        periodic loop (explicit :meth:`checkpoint` still works).
    max_restarts:
        Worker crashes tolerated per shard before it is declared
        permanently failed.
    """

    def __init__(self, miner: ShardedMiner, *, queue_chunks: int = 16,
                 coalesce_windows: int = 4,
                 shed_capacity: int | None = None,
                 shed_policy: str = "shed",
                 shed_queue_limit: int | None = None,
                 checkpoint_store: CheckpointStore | None = None,
                 checkpoint_interval: float | None = None,
                 max_restarts: int = 2):
        if queue_chunks < 1:
            raise ServiceError(
                f"queue_chunks must be >= 1, got {queue_chunks}")
        if coalesce_windows < 1:
            raise ServiceError(
                f"coalesce_windows must be >= 1, got {coalesce_windows}")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ServiceError(
                f"checkpoint_interval must be positive, got "
                f"{checkpoint_interval}")
        if checkpoint_interval is not None and checkpoint_store is None:
            raise ServiceError(
                "checkpoint_interval needs a checkpoint_store")
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}")
        self.miner = miner
        self.queue_chunks = int(queue_chunks)
        self._coalesce_elements = coalesce_windows * miner.window_size
        self._shedders: list[LoadShedder | None] = [
            LoadShedder(shed_capacity, policy=shed_policy,
                        queue_limit=shed_queue_limit, seed=shard_id)
            if shed_capacity is not None else None
            for shard_id in range(miner.num_shards)]
        self.checkpoint_store = checkpoint_store
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = int(max_restarts)
        self._queues: list[asyncio.Queue] = []
        self._locks: list[asyncio.Lock] = []
        self._workers: list[asyncio.Task] = []
        self._checkpoint_task: asyncio.Task | None = None
        self._failed: dict[int, BaseException] = {}
        self._started = False

    @property
    def metrics(self) -> ServiceMetrics:
        """Live metrics snapshot (queue depths refreshed on access)."""
        for shard_id, queue in enumerate(self._queues):
            self.miner.metrics.shards[shard_id].queue_depth = queue.qsize()
        return self.miner.metrics.snapshot()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the shard queues and start one supervisor per shard."""
        if self._started:
            raise ServiceError("service already started")
        self._queues = [asyncio.Queue(maxsize=self.queue_chunks)
                        for _ in range(self.miner.num_shards)]
        self._locks = [asyncio.Lock()
                       for _ in range(self.miner.num_shards)]
        self._failed = {}
        self._workers = [asyncio.create_task(self._supervised_worker(i),
                                             name=f"shard-{i}")
                         for i in range(self.miner.num_shards)]
        if self.checkpoint_interval is not None:
            self._checkpoint_task = asyncio.create_task(
                self._checkpoint_loop(), name="checkpointer")
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        """Stop the workers, by default after draining the queues.

        A draining stop with a configured checkpoint store also writes
        one final checkpoint, so a graceful shutdown loses nothing.
        """
        if not self._started:
            return
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            await asyncio.gather(self._checkpoint_task,
                                 return_exceptions=True)
            self._checkpoint_task = None
        if drain:
            await self.drain()
            if self.checkpoint_store is not None:
                await asyncio.to_thread(self.checkpoint_store.save,
                                        self.miner.snapshot())
                self.miner.metrics.checkpoints += 1
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._started = False

    async def __aenter__(self) -> "StreamService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    async def ingest(self, chunk: np.ndarray | list[float]) -> int:
        """Route one chunk to the shard queues; returns elements accepted.

        Blocks (cooperatively) while any target queue is full — this is
        the backpressure path.  With shedding enabled, overload is
        absorbed by the shedders instead and the call never blocks for
        long.
        """
        if not self._started:
            raise ServiceError("service not started")
        col = collector()
        began = time.perf_counter() if col.enabled else 0.0
        parts = self.miner.partitioner.split(chunk)
        for shard_id, part in enumerate(parts):
            # Fail fast before queueing anything: accepting data for a
            # permanently failed shard would silently lose it.
            if part.size and shard_id in self._failed:
                raise ShardFailedError(shard_id) from self._failed[shard_id]
        accepted = 0
        for shard_id, part in enumerate(parts):
            shedder = self._shedders[shard_id]
            if shedder is not None:
                shed_before = shedder.stats.shed
                part = shedder.offer(part)
                self.miner.metrics.shards[shard_id].shed = shedder.stats.shed
                if col.enabled and shedder.stats.shed > shed_before:
                    col.record("service.shed", 0.0, shard=shard_id,
                               elements=shedder.stats.shed - shed_before)
            if part.size == 0:
                continue
            queue = self._queues[shard_id]
            await queue.put(part)
            accepted += int(part.size)
            shard = self.miner.metrics.shards[shard_id]
            shard.queue_high_water = max(shard.queue_high_water,
                                         queue.qsize())
        self.miner.metrics.ingested += accepted
        if col.enabled:
            col.record("service.enqueue", time.perf_counter() - began,
                       elements=accepted)
        return accepted

    async def _worker(self, shard_id: int) -> None:
        """One shard's dispatch loop.

        ``task_done`` runs in a ``finally`` so the queue's join ledger
        balances even when a dispatch raises — an exception propagates
        to the supervisor but can never leave :meth:`drain` hanging on
        an unmatched ``join``.  Note the crashed batch is *not* lost:
        :meth:`ShardedMiner.dispatch` buffers the chunk before anything
        faultable runs.
        """
        queue = self._queues[shard_id]
        lock = self._locks[shard_id]
        while True:
            chunk = await queue.get()
            parts = [chunk]
            size = int(chunk.size)
            # Greedy coalescing: fill the texture batch from whatever is
            # already queued, but never wait for more to arrive.
            while size < self._coalesce_elements and not queue.empty():
                extra = queue.get_nowait()
                parts.append(extra)
                size += int(extra.size)
            batch = np.concatenate(parts) if len(parts) > 1 else chunk
            col = collector()
            if col.enabled:
                col.record("service.coalesce", 0.0, shard=shard_id,
                           chunks=len(parts), elements=size)
            try:
                # The lock makes checkpoints cut at batch boundaries:
                # a checkpoint holds every shard's lock, so it never
                # observes an engine mid-dispatch.
                async with lock:
                    await asyncio.to_thread(self.miner.dispatch,
                                            shard_id, batch)
            finally:
                for _ in parts:
                    queue.task_done()
            self.miner.metrics.shards[shard_id].queue_depth = queue.qsize()

    async def _supervised_worker(self, shard_id: int) -> None:
        """Restart a crashed worker up to ``max_restarts`` times.

        Past the bound the shard is declared permanently failed:
        ingest/queries start raising :class:`ShardFailedError`, and a
        reaper loop keeps consuming (and counting as lost) whatever is
        still queued so ``queue.join()`` — and therefore :meth:`drain`
        — always completes.
        """
        shard = self.miner.metrics.shards[shard_id]
        while True:
            try:
                await self._worker(shard_id)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                shard.failures += 1
                shard.last_error = repr(exc)
                if shard.restarts >= self.max_restarts:
                    shard.healthy = False
                    self._failed[shard_id] = exc
                    await self._reap(shard_id)
                    return
                shard.restarts += 1

    async def _reap(self, shard_id: int) -> None:
        """Discard (and account) queue traffic of a failed shard."""
        queue = self._queues[shard_id]
        shard = self.miner.metrics.shards[shard_id]
        while True:
            chunk = await queue.get()
            shard.lost_elements += int(chunk.size)
            queue.task_done()

    async def drain(self, flush: bool = True) -> None:
        """Wait until every queued chunk is inside its shard's miner.

        With ``flush=True`` (default) also pushes each shard's partial
        texture batch and tail window through the pipeline, so the next
        query reflects every element accepted before this call.  Note
        for frequency mining: each flush may close one short window,
        which costs at most one extra count of undercount per flush —
        drain at query boundaries, not per chunk.

        Spill-policy shedders release their queued excess here (the
        off-peak catch-up of Section 1): spilled elements re-enter the
        shard queues and are processed before the flush.
        """
        if not self._started:
            raise ServiceError("service not started")
        await asyncio.gather(*(queue.join() for queue in self._queues))
        if flush:
            released = 0
            for shard_id, shedder in enumerate(self._shedders):
                if shedder is None:
                    continue
                spilled = shedder.drain()
                if spilled.size:
                    await self._queues[shard_id].put(spilled)
                    released += int(spilled.size)
            if released:
                self.miner.metrics.ingested += released
                await asyncio.gather(
                    *(queue.join() for queue in self._queues))
            await asyncio.to_thread(self.miner.drain)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    async def checkpoint(self):
        """Write one consistent checkpoint; returns its path.

        The cut settles the queues first (everything ingested so far is
        inside the engines) and then takes every shard's dispatch lock,
        so the snapshot never observes a shard mid-batch.  Data arriving
        concurrently with the call lands after the cut.
        """
        if self.checkpoint_store is None:
            raise ServiceError("no checkpoint store configured")
        if not self._started:
            raise ServiceError("service not started")
        col = collector()
        began = time.perf_counter() if col.enabled else 0.0
        await asyncio.gather(*(queue.join() for queue in self._queues))
        async with AsyncExitStack() as stack:
            for lock in self._locks:
                await stack.enter_async_context(lock)
            state = self.miner.snapshot()
        path = await asyncio.to_thread(self.checkpoint_store.save, state)
        self.miner.metrics.checkpoints += 1
        if col.enabled:
            col.record("service.checkpoint", time.perf_counter() - began,
                       shards=self.miner.num_shards)
        return path

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            await self.checkpoint()

    # ------------------------------------------------------------------
    # queries (any time; `fresh` drains first for read-your-writes)
    # ------------------------------------------------------------------
    def _check_failed(self) -> None:
        """Surface a permanent shard failure as a typed query error.

        An answer computed over a pool with a dead shard would silently
        violate the combined-error argument (that shard's slice of the
        stream is missing), so queries refuse instead.
        """
        if self._failed:
            shard_id = min(self._failed)
            raise ShardFailedError(
                shard_id,
                f"shard(s) {sorted(self._failed)} failed permanently; "
                "answers would not cover their slice of the stream"
            ) from self._failed[shard_id]

    async def quantile(self, phi: float, *, fresh: bool = False) -> float:
        """The phi-quantile over all shards, within ``eps * N`` ranks."""
        self._check_failed()
        if fresh:
            await self.drain()
        return await asyncio.to_thread(self.miner.quantile, phi)

    async def frequent_items(self, support: float, *,
                             fresh: bool = False) -> list[tuple[float, int]]:
        """Heavy hitters over all shards (union of home-shard counts)."""
        self._check_failed()
        if fresh:
            await self.drain()
        return await asyncio.to_thread(self.miner.frequent_items, support)

    async def estimate(self, value: float) -> int:
        """Estimated global count of one value."""
        self._check_failed()
        return await asyncio.to_thread(self.miner.estimate, value)

    async def distinct(self, *, fresh: bool = False) -> float:
        """Distinct-count estimate over all shards (merged KMV)."""
        self._check_failed()
        if fresh:
            await self.drain()
        return await asyncio.to_thread(self.miner.distinct)

    async def answer(self, metric: str, *, fresh: bool = False, **params):
        """Metric-keyed query routing (the continuous-query seam).

        Coroutine twin of :meth:`ShardedMiner.answer`: the standing-
        query front-end calls this instead of branching on the typed
        query methods, and every executor service exposes it with the
        same signature.
        """
        self._check_failed()
        if fresh:
            await self.drain()
        return await asyncio.to_thread(
            lambda: self.miner.answer(metric, **params))
