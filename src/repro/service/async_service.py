"""Asyncio ingestion front-end for the shard pool.

The paper's pipeline wants work in texture-sized batches: four windows
packed into the RGBA channels of one texture per sort pass (Section
4.1).  Arrivals, on the other hand, come in whatever chunks producers
emit — "irregularities and bursts in the data arrival rates" (Section
1).  This module sits between the two:

* one **bounded queue per shard** — when a shard falls behind, its
  queue fills and ``await ingest(...)`` blocks the producers
  (backpressure) instead of growing memory without bound;
* optional **load shedding** in front of each queue, wired to
  :class:`repro.streams.load_shedding.LoadShedder` — each ingest call is
  one arrival tick, and the shedder's shed/spill policy decides what
  the queue never sees;
* per-shard **worker tasks** that coalesce queued chunks up to the
  4-window texture batch before dispatching, so a bursty producer still
  fills the RGBA pack, and that run the (GIL-releasing, numpy-heavy)
  pipeline via ``asyncio.to_thread`` so shards make progress in
  parallel;
* **queries at any time** against the merge-on-query layer of the
  wrapped :class:`~repro.service.sharded.ShardedMiner`.

Everything is standard-library asyncio; there is no network listener —
the service is an in-process component that a transport (or the
``repro serve`` demo driver) feeds.
"""

from __future__ import annotations

import asyncio

import numpy as np

from ..errors import ServiceError
from ..streams.load_shedding import LoadShedder
from .metrics import ServiceMetrics
from .sharded import ShardedMiner


class StreamService:
    """Concurrent ingestion and querying around a :class:`ShardedMiner`.

    Parameters
    ----------
    miner:
        The shard pool to feed.
    queue_chunks:
        Per-shard queue capacity in chunks; a full queue blocks
        producers (backpressure).
    coalesce_windows:
        Dispatch target in windows per batch (4 fills one RGBA texture
        pack).  Workers never *wait* for a full batch — they greedily
        take what is queued — so an idle service still has low latency.
    shed_capacity:
        If set, put a :class:`LoadShedder` with this per-tick element
        capacity in front of every shard queue (one ingest call = one
        tick per shard).
    shed_policy / shed_queue_limit:
        Forwarded to the shedders (``"shed"`` drops, ``"spill"`` queues
        up to the limit).
    """

    def __init__(self, miner: ShardedMiner, *, queue_chunks: int = 16,
                 coalesce_windows: int = 4,
                 shed_capacity: int | None = None,
                 shed_policy: str = "shed",
                 shed_queue_limit: int | None = None):
        if queue_chunks < 1:
            raise ServiceError(
                f"queue_chunks must be >= 1, got {queue_chunks}")
        if coalesce_windows < 1:
            raise ServiceError(
                f"coalesce_windows must be >= 1, got {coalesce_windows}")
        self.miner = miner
        self.queue_chunks = int(queue_chunks)
        self._coalesce_elements = coalesce_windows * miner.window_size
        self._shedders: list[LoadShedder | None] = [
            LoadShedder(shed_capacity, policy=shed_policy,
                        queue_limit=shed_queue_limit, seed=shard_id)
            if shed_capacity is not None else None
            for shard_id in range(miner.num_shards)]
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._started = False

    @property
    def metrics(self) -> ServiceMetrics:
        """Live metrics snapshot (queue depths refreshed on access)."""
        for shard_id, queue in enumerate(self._queues):
            self.miner.metrics.shards[shard_id].queue_depth = queue.qsize()
        return self.miner.metrics.snapshot()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the shard queues and start one worker per shard."""
        if self._started:
            raise ServiceError("service already started")
        self._queues = [asyncio.Queue(maxsize=self.queue_chunks)
                        for _ in range(self.miner.num_shards)]
        self._workers = [asyncio.create_task(self._worker(i),
                                             name=f"shard-{i}")
                         for i in range(self.miner.num_shards)]
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        """Stop the workers, by default after draining the queues."""
        if not self._started:
            return
        if drain:
            await self.drain()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._started = False

    async def __aenter__(self) -> "StreamService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    async def ingest(self, chunk: np.ndarray | list[float]) -> int:
        """Route one chunk to the shard queues; returns elements accepted.

        Blocks (cooperatively) while any target queue is full — this is
        the backpressure path.  With shedding enabled, overload is
        absorbed by the shedders instead and the call never blocks for
        long.
        """
        if not self._started:
            raise ServiceError("service not started")
        parts = self.miner.partitioner.split(chunk)
        accepted = 0
        for shard_id, part in enumerate(parts):
            shedder = self._shedders[shard_id]
            if shedder is not None:
                part = shedder.offer(part)
                self.miner.metrics.shards[shard_id].shed = shedder.stats.shed
            if part.size == 0:
                continue
            queue = self._queues[shard_id]
            await queue.put(part)
            accepted += int(part.size)
            shard = self.miner.metrics.shards[shard_id]
            shard.queue_high_water = max(shard.queue_high_water,
                                         queue.qsize())
        self.miner.metrics.ingested += accepted
        return accepted

    async def _worker(self, shard_id: int) -> None:
        queue = self._queues[shard_id]
        while True:
            chunk = await queue.get()
            parts = [chunk]
            size = int(chunk.size)
            # Greedy coalescing: fill the texture batch from whatever is
            # already queued, but never wait for more to arrive.
            while size < self._coalesce_elements and not queue.empty():
                extra = queue.get_nowait()
                parts.append(extra)
                size += int(extra.size)
            batch = np.concatenate(parts) if len(parts) > 1 else chunk
            try:
                await asyncio.to_thread(self.miner.dispatch, shard_id, batch)
            finally:
                for _ in parts:
                    queue.task_done()
            self.miner.metrics.shards[shard_id].queue_depth = queue.qsize()

    async def drain(self, flush: bool = True) -> None:
        """Wait until every queued chunk is inside its shard's miner.

        With ``flush=True`` (default) also pushes each shard's partial
        texture batch and tail window through the pipeline, so the next
        query reflects every element accepted before this call.  Note
        for frequency mining: each flush may close one short window,
        which costs at most one extra count of undercount per flush —
        drain at query boundaries, not per chunk.
        """
        if not self._started:
            raise ServiceError("service not started")
        await asyncio.gather(*(queue.join() for queue in self._queues))
        if flush:
            await asyncio.to_thread(self.miner.drain)

    # ------------------------------------------------------------------
    # queries (any time; `fresh` drains first for read-your-writes)
    # ------------------------------------------------------------------
    async def quantile(self, phi: float, *, fresh: bool = False) -> float:
        """The phi-quantile over all shards, within ``eps * N`` ranks."""
        if fresh:
            await self.drain()
        return await asyncio.to_thread(self.miner.quantile, phi)

    async def frequent_items(self, support: float, *,
                             fresh: bool = False) -> list[tuple[float, int]]:
        """Heavy hitters over all shards (union of home-shard counts)."""
        if fresh:
            await self.drain()
        return await asyncio.to_thread(self.miner.frequent_items, support)

    async def estimate(self, value: float) -> int:
        """Estimated global count of one value."""
        return await asyncio.to_thread(self.miner.estimate, value)

    async def distinct(self, *, fresh: bool = False) -> float:
        """Distinct-count estimate over all shards (merged KMV)."""
        if fresh:
            await self.drain()
        return await asyncio.to_thread(self.miner.distinct)
