"""Framed TCP transport for the network shard executor.

The ``net`` executor speaks the same worker/ack/replay protocol as the
multiprocess one, but over sockets instead of pipes, so it needs three
things the ``multiprocessing`` connection gave us for free:

* **Framing** — :class:`FrameChannel` length-prefixes each pickled
  message (4-byte big-endian size) and reassembles frames across
  arbitrary TCP segmentation, with a per-call deadline on both send and
  receive.  A deadline miss raises :class:`ChannelTimeout` *without*
  losing the partially received frame; the next receive resumes where
  the last one stopped.
* **Connection lifecycle** — :class:`Listener` accepts redials from
  workers that lost their connection; dialing lives in
  :func:`connect`.  A peer hang-up surfaces as :class:`ChannelClosed`.
* **Fault injection** — :class:`NetFaultPlan` / :class:`NetFaultInjector`
  mirror the GPU layer's :mod:`repro.gpu.faults` idiom: seeded rates
  plus exact ``at`` schedules, one RNG draw per rated operation so the
  fault sequence is a pure function of the plan.  Faults model the
  network, not the peer: *drop* and *partition* sever the connection
  (TCP turns a lost frame into a dead link), *delay* stalls it, and
  *reorder* holds one outgoing frame back so it arrives after its
  successor.

Only the parent (pool) side injects faults — the worker experiences
them as the resulting disconnects and timeouts, which is exactly what
the reconnect protocol must absorb.
"""

from __future__ import annotations

import pickle
import select
import socket
import struct
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import ServiceError

_LEN = struct.Struct(">I")

#: Hard cap on a single frame (guards against a corrupt length prefix).
MAX_FRAME_BYTES = 1 << 30

#: Operations a fault plan may rate or schedule.
NET_FAULT_OPS = ("send", "recv")

#: Actions an ``at`` schedule may name.
NET_FAULT_ACTIONS = ("drop", "delay", "reorder", "partition")


class ChannelClosed(ConnectionError):
    """The peer hung up (or an injected fault severed the connection)."""


class ChannelTimeout(TimeoutError):
    """A framed send/recv missed its deadline; the channel is intact."""


@dataclass(frozen=True)
class NetFaultPlan:
    """Deterministic description of network misbehaviour to inject.

    ``drop_rate`` / ``delay_rate`` / ``reorder_rate`` fire independently
    per rated operation; ``at`` pins exact faults to the i-th occurrence
    of an op (``{"send": {3: "partition"}}`` severs the 4th send and
    makes the listener refuse the next ``partition_attempts`` redials).
    ``max_faults`` bounds the total so a high rate cannot starve the
    stream forever.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_seconds: float = 0.02
    at: dict = field(default_factory=dict)
    partition_attempts: int = 2
    seed: int = 0
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ServiceError(f"{name} must be in [0, 1), got {rate}")
        if self.drop_rate + self.delay_rate + self.reorder_rate >= 1.0:
            raise ServiceError("summed fault rates must stay below 1.0")
        if self.delay_seconds < 0:
            raise ServiceError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.partition_attempts < 0:
            raise ServiceError(
                "partition_attempts must be >= 0, got "
                f"{self.partition_attempts}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ServiceError(
                f"max_faults must be >= 0, got {self.max_faults}")
        for op, schedule in self.at.items():
            if op not in NET_FAULT_OPS:
                raise ServiceError(
                    f"unknown fault op {op!r}; expected one of "
                    f"{NET_FAULT_OPS}")
            for index, action in dict(schedule).items():
                if int(index) < 0:
                    raise ServiceError(
                        f"fault schedule index must be >= 0, got {index}")
                if action not in NET_FAULT_ACTIONS:
                    raise ServiceError(
                        f"unknown fault action {action!r}; expected one of "
                        f"{NET_FAULT_ACTIONS}")

    def reseeded(self, seed: int) -> "NetFaultPlan":
        """The same plan under a different random seed."""
        return replace(self, seed=int(seed))


class NetFaultInjector:
    """Stateful executor of a :class:`NetFaultPlan`.

    Always consumes exactly one RNG draw per rated operation, so the
    fault sequence is a pure function of the plan — independent of
    timing, retries elsewhere, or which faults actually fired.
    """

    def __init__(self, plan: NetFaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self.op_counts: dict[str, int] = {op: 0 for op in NET_FAULT_OPS}
        self.injected: dict[str, int] = {a: 0 for a in NET_FAULT_ACTIONS}
        #: redials the listener must still refuse (armed by "partition")
        self.refusals_left = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _rated(self) -> bool:
        plan = self.plan
        return (plan.drop_rate > 0 or plan.delay_rate > 0
                or plan.reorder_rate > 0)

    def check(self, op: str) -> str | None:
        """The action to apply to this occurrence of ``op``, if any."""
        if op not in NET_FAULT_OPS:
            raise ServiceError(f"unknown fault op {op!r}")
        plan = self.plan
        index = self.op_counts[op]
        self.op_counts[op] = index + 1
        draw = self._rng.random() if self._rated() else None
        action = plan.at.get(op, {}).get(index)
        if action is None and draw is not None:
            if draw < plan.drop_rate:
                action = "drop"
            elif draw < plan.drop_rate + plan.delay_rate:
                action = "delay"
            elif draw < (plan.drop_rate + plan.delay_rate
                         + plan.reorder_rate):
                action = "reorder"
        if action is None:
            return None
        if plan.max_faults is not None and \
                self.total_injected >= plan.max_faults:
            return None
        self.injected[action] += 1
        if action == "partition":
            self.refusals_left = plan.partition_attempts
        return action

    def refuse_dial(self) -> bool:
        """Consume one pending dial refusal (listener accept path)."""
        if self.refusals_left > 0:
            self.refusals_left -= 1
            return True
        return False


def _deadline_left(deadline: float | None) -> float | None:
    if deadline is None:
        return None
    left = deadline - time.monotonic()
    if left <= 0:
        raise ChannelTimeout("deadline exceeded")
    return left


class FrameChannel:
    """Length-prefixed pickle frames over one TCP socket."""

    def __init__(self, sock: socket.socket,
                 injector: NetFaultInjector | None = None):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.setblocking(True)
        self._sock: socket.socket | None = sock
        self._injector = injector
        self._rbuf = bytearray()
        self._holdback: bytes | None = None
        self._holdin: bytes | None = None

    def fileno(self) -> int:
        if self._sock is None:
            raise ChannelClosed("channel is closed")
        return self._sock.fileno()

    @property
    def closed(self) -> bool:
        return self._sock is None

    def _fault(self, op: str) -> str | None:
        if self._injector is None:
            return None
        action = self._injector.check(op)
        if action == "delay":
            time.sleep(self._injector.plan.delay_seconds)
            return None
        if action in ("drop", "partition"):
            self.close()
            raise ChannelClosed(f"injected {action} on {op}")
        return action  # None or "reorder"

    def send(self, message: object, timeout: float | None = None) -> None:
        """Send one framed message (applies injected send faults)."""
        if self._sock is None:
            raise ChannelClosed("channel is closed")
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        action = self._fault("send")
        frames = []
        if action == "reorder" and self._holdback is None:
            # Hold this frame back; it rides behind the *next* send.
            self._holdback = payload
            return
        frames.append(payload)
        if self._holdback is not None:
            frames.append(self._holdback)
            self._holdback = None
        try:
            self._sock.settimeout(timeout)
            for frame in frames:
                self._sock.sendall(_LEN.pack(len(frame)) + frame)
        except socket.timeout as exc:
            raise ChannelTimeout("send deadline exceeded") from exc
        except BlockingIOError as exc:
            raise ChannelTimeout("send would block") from exc
        except OSError as exc:
            self.close()
            raise ChannelClosed(f"send failed: {exc}") from exc

    def _fill(self, needed: int, deadline: float | None) -> None:
        while len(self._rbuf) < needed:
            if self._sock is None:
                raise ChannelClosed("channel is closed")
            try:
                self._sock.settimeout(_deadline_left(deadline))
                chunk = self._sock.recv(1 << 16)
            except socket.timeout as exc:
                raise ChannelTimeout("recv deadline exceeded") from exc
            except BlockingIOError as exc:
                raise ChannelTimeout("recv would block") from exc
            except OSError as exc:
                self.close()
                raise ChannelClosed(f"recv failed: {exc}") from exc
            if not chunk:
                self.close()
                raise ChannelClosed("peer closed the connection")
            self._rbuf.extend(chunk)

    def _read_frame(self, deadline: float | None) -> bytes:
        self._fill(_LEN.size, deadline)
        (size,) = _LEN.unpack(bytes(self._rbuf[:_LEN.size]))
        if size > MAX_FRAME_BYTES:
            self.close()
            raise ChannelClosed(f"oversized frame ({size} bytes)")
        self._fill(_LEN.size + size, deadline)
        payload = bytes(self._rbuf[_LEN.size:_LEN.size + size])
        del self._rbuf[:_LEN.size + size]
        return payload

    def recv(self, timeout: float | None = None) -> object:
        """Receive one framed message (applies injected recv faults).

        On :class:`ChannelTimeout` any partial frame stays buffered and
        the next call resumes reassembly.  An injected inbound *reorder*
        holds the frame at the head of the buffer and delivers its
        successor first; the held frame is returned by the next call.
        """
        if self._sock is None and not self._rbuf and self._holdin is None:
            raise ChannelClosed("channel is closed")
        action = self._fault("recv")
        if self._holdin is not None:
            payload, self._holdin = self._holdin, None
            return pickle.loads(payload)
        deadline = None if timeout is None else time.monotonic() + timeout
        payload = self._read_frame(deadline)
        if action == "reorder":
            # Swap this frame with its successor; if the successor never
            # arrives in time the held frame is simply delayed one call.
            self._holdin = payload
            payload = self._read_frame(deadline)
        return pickle.loads(payload)

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class Listener:
    """Non-blocking accept loop for worker (re)connections."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 injector: NetFaultInjector | None = None):
        self._injector = injector
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(64)
        sock.setblocking(False)
        self._sock: socket.socket | None = sock
        self.address: tuple[str, int] = sock.getsockname()[:2]

    def accept(self, timeout: float = 0.0) -> FrameChannel | None:
        """One pending connection as a channel, or ``None``.

        While a partition refusal is armed, accepted redials are closed
        on sight — the worker sees a connection reset and backs off.
        """
        if self._sock is None:
            return None
        ready, _, _ = select.select([self._sock], [], [], timeout)
        if not ready:
            return None
        try:
            conn, _ = self._sock.accept()
        except OSError:
            return None
        if self._injector is not None and self._injector.refuse_dial():
            try:
                conn.close()
            except OSError:
                pass
            return None
        return FrameChannel(conn, injector=self._injector)

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


def connect(host: str, port: int, timeout: float) -> FrameChannel:
    """Dial the pool's listener (worker side; no injector)."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ChannelClosed(f"dial {host}:{port} failed: {exc}") from exc
    return FrameChannel(sock)
