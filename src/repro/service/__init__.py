"""Sharded streaming service: the production lift of the paper's loop.

The ROADMAP's north star is a system that serves heavy traffic, and the
repo's summaries are *mergeable* — the one property that makes
horizontal scaling free.  This package supplies the layer that uses it:

* :class:`ShardedMiner` — N independent miner pipelines behind one
  ingest/query facade, with merge-on-query and documented combined-error
  accounting (no error beyond the configured ``eps``);
* :class:`StreamService` — the asyncio front-end: bounded per-shard
  queues (backpressure), optional load shedding, texture-batch
  coalescing, and parallel shard workers;
* :class:`ServiceMetrics` / :class:`ShardMetrics` — the observability
  surface (ingest rate, queue depth, per-shard latencies, shed count,
  fault/retry/degradation counters, shard health);
* :class:`MpShardedMiner` — the multiprocess executor: one worker
  *process* per shard, shared-memory batch transport
  (:mod:`~repro.service.shm_ring`), supervised restart with
  ack/replay, merge-on-query over gathered estimator states;
* :class:`NetShardedMiner` — the network executor: the same ack/replay
  protocol over framed TCP (:mod:`~repro.service.net_transport`) with
  per-connection deadlines, heartbeats, worker reconnect, elastic
  resharding (:func:`resharded_snapshot`) and keyspace takeover when a
  shard dies for good;
* the executor registry (:mod:`~repro.service.executors`) naming the
  four ways to run the pool — ``inline`` / ``async`` / ``mp`` /
  ``net`` — all answer-identical, differing only in throughput and
  failure-domain isolation;
* fault tolerance — :class:`RetryPolicy`, :class:`CircuitBreaker` and
  :class:`ShardGuard` (:mod:`~repro.service.resilience`) around the
  dispatch path, and :class:`CheckpointStore`
  (:mod:`~repro.service.checkpoint`) for durable snapshot/restore of
  the whole pool under any executor;
* partitioners in :mod:`~repro.service.sharding` and the ``repro
  serve`` demo driver in :mod:`~repro.service.runner`.
"""

from .async_service import StreamService
from .checkpoint import CheckpointStore
from .executors import (InlineService, register_executor,
                        registered_executors, resolve_executor)
from .metrics import ServiceMetrics, ShardMetrics
from .mp_executor import MpShardedMiner
from .net_executor import NetShardedMiner
from .net_transport import NetFaultInjector, NetFaultPlan
from .policies import DEFAULT_POLICIES, ServicePolicies
from .reshard import resharded_snapshot
from .resilience import CircuitBreaker, RetryPolicy, ShardGuard
from .runner import ServeResult, format_result, run_service_demo
from .sharded import ShardedMiner
from .sharding import (ConsistentHashPartitioner, HashPartitioner,
                       RoundRobinPartitioner, default_partitioner,
                       partitioner_from_state)
from .shm_ring import ShmRing

__all__ = [
    "CheckpointStore",
    "CircuitBreaker",
    "ConsistentHashPartitioner",
    "DEFAULT_POLICIES",
    "HashPartitioner",
    "InlineService",
    "MpShardedMiner",
    "NetFaultInjector",
    "NetFaultPlan",
    "NetShardedMiner",
    "RetryPolicy",
    "RoundRobinPartitioner",
    "ServeResult",
    "ServiceMetrics",
    "ServicePolicies",
    "ShardGuard",
    "ShardMetrics",
    "ShardedMiner",
    "ShmRing",
    "StreamService",
    "default_partitioner",
    "format_result",
    "partitioner_from_state",
    "register_executor",
    "registered_executors",
    "resolve_executor",
    "resharded_snapshot",
    "run_service_demo",
]
