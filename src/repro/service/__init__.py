"""Sharded streaming service: the production lift of the paper's loop.

The ROADMAP's north star is a system that serves heavy traffic, and the
repo's summaries are *mergeable* — the one property that makes
horizontal scaling free.  This package supplies the layer that uses it:

* :class:`ShardedMiner` — N independent miner pipelines behind one
  ingest/query facade, with merge-on-query and documented combined-error
  accounting (no error beyond the configured ``eps``);
* :class:`StreamService` — the asyncio front-end: bounded per-shard
  queues (backpressure), optional load shedding, texture-batch
  coalescing, and parallel shard workers;
* :class:`ServiceMetrics` / :class:`ShardMetrics` — the observability
  surface (ingest rate, queue depth, per-shard latencies, shed count,
  fault/retry/degradation counters, shard health);
* fault tolerance — :class:`RetryPolicy` and :class:`CircuitBreaker`
  (:mod:`~repro.service.resilience`) around the dispatch path, and
  :class:`CheckpointStore` (:mod:`~repro.service.checkpoint`) for
  durable snapshot/restore of the whole pool;
* partitioners in :mod:`~repro.service.sharding` and the ``repro
  serve`` demo driver in :mod:`~repro.service.runner`.
"""

from .async_service import StreamService
from .checkpoint import CheckpointStore
from .metrics import ServiceMetrics, ShardMetrics
from .resilience import CircuitBreaker, RetryPolicy
from .runner import ServeResult, format_result, run_service_demo
from .sharded import ShardedMiner
from .sharding import (HashPartitioner, RoundRobinPartitioner,
                       default_partitioner)

__all__ = [
    "CheckpointStore",
    "CircuitBreaker",
    "HashPartitioner",
    "RetryPolicy",
    "RoundRobinPartitioner",
    "ServeResult",
    "ServiceMetrics",
    "ShardMetrics",
    "ShardedMiner",
    "StreamService",
    "default_partitioner",
    "format_result",
    "run_service_demo",
]
