"""Retry, backoff, and circuit breaking for the shard dispatch path.

The GPU is a co-processor behind a bus; the fault model
(:mod:`repro.gpu.faults`) says any transfer or render pass may fail
*transiently*.  The engine makes a failed batch perfectly retryable
(:meth:`StreamMiner.pump` is transactional), so the service's job is
policy, not mechanism:

* :class:`RetryPolicy` — how many times to retry a faulted batch and
  how long to wait between attempts (exponential backoff with seeded
  jitter, so concurrent shards don't retry in lockstep);
* :class:`CircuitBreaker` — when to stop trusting the GPU path
  entirely.  After ``failure_threshold`` consecutive faulted batches
  the breaker *opens* and the shard degrades to the CPU fallback that
  :func:`repro.backends.cpu_fallback_for` resolved from the backend
  registry when the shard was built — the sorted output is identical,
  only the cost model differs, so degradation is invisible to every
  epsilon guarantee.  (Only the simulated-GPU sorter earns a fallback;
  a custom registered backend without one escalates instead.)  After
  ``cooldown_batches`` successful fallback batches the breaker goes
  *half-open* and probes the GPU once: success closes it, another
  fault re-opens it.

Both are deliberately deterministic given their seeds/counters — no
wall-clock reads — so failure scenarios replay exactly in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ServiceError, ShardFailedError
from ..gpu.faults import TRANSIENT_GPU_ERRORS
from ..obs import collector

__all__ = ["CircuitBreaker", "RetryPolicy", "ShardGuard",
           "TRANSIENT_GPU_ERRORS"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient dispatch faults.

    Parameters
    ----------
    max_attempts:
        Total tries per batch (first attempt included) before the
        dispatch escalates to the fallback backend for that batch.
    base_delay / multiplier / max_delay:
        Attempt ``k`` (1-based) sleeps
        ``min(base_delay * multiplier**(k-1), max_delay)`` seconds
        before the jitter is applied.  The defaults are tuned for the
        in-process simulator — milliseconds, not the seconds a remote
        service would use.
    jitter:
        Fraction of the delay randomized: the actual sleep is drawn
        uniformly from ``[delay * (1 - jitter), delay]``.
    """

    max_attempts: int = 4
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ServiceError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ServiceError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ServiceError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Jittered sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ServiceError(f"attempt must be >= 1, got {attempt}")
        ceiling = min(self.base_delay * self.multiplier ** (attempt - 1),
                      self.max_delay)
        floor = ceiling * (1.0 - self.jitter)
        return float(floor + (ceiling - floor) * rng.random())


class CircuitBreaker:
    """Per-shard GPU-trust state machine: closed -> open -> half-open.

    ``closed``: the primary (GPU) backend is used.  Each *batch* that
    ultimately fails on the primary counts one failure; a batch that
    succeeds resets the count.  ``failure_threshold`` consecutive
    failures open the breaker.

    ``open``: the fallback (CPU) backend is used.  Every successful
    fallback batch counts toward ``cooldown_batches``; when the budget
    is spent the breaker half-opens.

    ``half-open``: the next batch probes the primary once.  Success
    closes the breaker; a fault re-opens it with a fresh cooldown.

    Counters, not clocks, drive every transition — scenarios replay
    deterministically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 3,
                 cooldown_batches: int = 16):
        if failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_batches < 1:
            raise ServiceError(
                f"cooldown_batches must be >= 1, got {cooldown_batches}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_batches = int(cooldown_batches)
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self._cooldown_left = 0

    def allow_primary(self) -> bool:
        """Should the next batch try the primary (GPU) backend?"""
        return self.state != self.OPEN

    def record_success(self, *, primary: bool) -> None:
        """Account one batch that completed on the given backend."""
        if primary:
            # A primary success closes a half-open breaker and clears
            # the failure streak.
            self.state = self.CLOSED
            self.consecutive_failures = 0
        elif self.state == self.OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = self.HALF_OPEN

    def record_failure(self) -> None:
        """Account one batch that exhausted its retries on the primary."""
        self.consecutive_failures += 1
        if (self.state == self.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self.state = self.OPEN
            self.opens += 1
            self._cooldown_left = self.cooldown_batches


class ShardGuard:
    """Retry + circuit-breaking + degradation around one shard's engine.

    This is the per-shard dispatch policy extracted into a reusable
    object so *every* executor applies it identically: the in-process
    :class:`~repro.service.sharded.ShardedMiner` holds one guard per
    shard, and each multiprocess worker
    (:mod:`repro.service.mp_executor`) holds one around its private
    miner — degradation semantics do not depend on where the shard
    lives.

    ``step`` callables passed to :meth:`run` must be transactional
    (:meth:`StreamMiner.pump` / :meth:`StreamMiner.flush` are): a
    transient fault leaves the engine untouched so re-running the step
    is exactly a retry of the failed texture batch.  Policy:

    1. breaker open -> run directly on the CPU fallback (degraded);
    2. otherwise try the primary, sleeping a jittered backoff after
       each transient fault, up to ``retry.max_attempts`` tries;
    3. retries exhausted -> count a breaker failure and run this batch
       on the fallback anyway (no batch is ever dropped);
    4. no fallback exists (already-CPU shard) -> escalate to
       :class:`~repro.errors.ShardFailedError`.
    """

    def __init__(self, shard_id: int, miner, primary, fallback,
                 retry: RetryPolicy, breaker: CircuitBreaker,
                 rng: np.random.Generator, metrics):
        self.shard_id = int(shard_id)
        self.miner = miner
        self.primary = primary
        self.fallback = fallback
        self.retry = retry
        self.breaker = breaker
        self.rng = rng
        #: duck-typed :class:`~repro.service.metrics.ShardMetrics`
        #: (faults / retries / degraded_batches / breaker_state /
        #: last_error are the attributes written here).
        self.metrics = metrics

    def run(self, step) -> None:
        """Run one faultable engine step under the full policy."""
        shard = self.metrics
        breaker = self.breaker
        try:
            use_primary = self.fallback is None or breaker.allow_primary()
            if use_primary:
                self.miner.swap_sorter(self.primary)
                attempt = 1
                while True:
                    try:
                        step()
                        breaker.record_success(primary=True)
                        return
                    except TRANSIENT_GPU_ERRORS as exc:
                        shard.faults += 1
                        shard.last_error = repr(exc)
                        if attempt >= self.retry.max_attempts:
                            breaker.record_failure()
                            if self.fallback is None:
                                raise ShardFailedError(
                                    self.shard_id,
                                    f"shard {self.shard_id}: retries "
                                    "exhausted and no fallback backend"
                                ) from exc
                            break
                        time.sleep(self.retry.delay(attempt, self.rng))
                        shard.retries += 1
                        attempt += 1
            # Degraded path: breaker open, or this batch exhausted its
            # retries on the primary.
            self.miner.swap_sorter(self.fallback)
            col = collector()
            if col.enabled:
                col.record("service.degrade", 0.0, shard=self.shard_id,
                           breaker=breaker.state)
            try:
                step()
            except Exception as exc:
                shard.last_error = repr(exc)
                raise ShardFailedError(
                    self.shard_id,
                    f"shard {self.shard_id} failed on the fallback "
                    f"backend too: {exc!r}") from exc
            shard.degraded_batches += 1
            breaker.record_success(primary=False)
        finally:
            shard.breaker_state = breaker.state
