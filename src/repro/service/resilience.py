"""Retry, backoff, and circuit breaking for the shard dispatch path.

The GPU is a co-processor behind a bus; the fault model
(:mod:`repro.gpu.faults`) says any transfer or render pass may fail
*transiently*.  The engine makes a failed batch perfectly retryable
(:meth:`StreamMiner.pump` is transactional), so the service's job is
policy, not mechanism:

* :class:`RetryPolicy` — how many times to retry a faulted batch and
  how long to wait between attempts (exponential backoff with seeded
  jitter, so concurrent shards don't retry in lockstep);
* :class:`CircuitBreaker` — when to stop trusting the GPU path
  entirely.  After ``failure_threshold`` consecutive faulted batches
  the breaker *opens* and the shard degrades to the CPU fallback that
  :func:`repro.backends.cpu_fallback_for` resolved from the backend
  registry when the shard was built — the sorted output is identical,
  only the cost model differs, so degradation is invisible to every
  epsilon guarantee.  (Only the simulated-GPU sorter earns a fallback;
  a custom registered backend without one escalates instead.)  After
  ``cooldown_batches`` successful fallback batches the breaker goes
  *half-open* and probes the GPU once: success closes it, another
  fault re-opens it.

Both are deliberately deterministic given their seeds/counters — no
wall-clock reads — so failure scenarios replay exactly in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ServiceError
from ..gpu.faults import TRANSIENT_GPU_ERRORS

__all__ = ["CircuitBreaker", "RetryPolicy", "TRANSIENT_GPU_ERRORS"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient dispatch faults.

    Parameters
    ----------
    max_attempts:
        Total tries per batch (first attempt included) before the
        dispatch escalates to the fallback backend for that batch.
    base_delay / multiplier / max_delay:
        Attempt ``k`` (1-based) sleeps
        ``min(base_delay * multiplier**(k-1), max_delay)`` seconds
        before the jitter is applied.  The defaults are tuned for the
        in-process simulator — milliseconds, not the seconds a remote
        service would use.
    jitter:
        Fraction of the delay randomized: the actual sleep is drawn
        uniformly from ``[delay * (1 - jitter), delay]``.
    """

    max_attempts: int = 4
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ServiceError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ServiceError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ServiceError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Jittered sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ServiceError(f"attempt must be >= 1, got {attempt}")
        ceiling = min(self.base_delay * self.multiplier ** (attempt - 1),
                      self.max_delay)
        floor = ceiling * (1.0 - self.jitter)
        return float(floor + (ceiling - floor) * rng.random())


class CircuitBreaker:
    """Per-shard GPU-trust state machine: closed -> open -> half-open.

    ``closed``: the primary (GPU) backend is used.  Each *batch* that
    ultimately fails on the primary counts one failure; a batch that
    succeeds resets the count.  ``failure_threshold`` consecutive
    failures open the breaker.

    ``open``: the fallback (CPU) backend is used.  Every successful
    fallback batch counts toward ``cooldown_batches``; when the budget
    is spent the breaker half-opens.

    ``half-open``: the next batch probes the primary once.  Success
    closes the breaker; a fault re-opens it with a fresh cooldown.

    Counters, not clocks, drive every transition — scenarios replay
    deterministically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 3,
                 cooldown_batches: int = 16):
        if failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_batches < 1:
            raise ServiceError(
                f"cooldown_batches must be >= 1, got {cooldown_batches}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_batches = int(cooldown_batches)
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self._cooldown_left = 0

    def allow_primary(self) -> bool:
        """Should the next batch try the primary (GPU) backend?"""
        return self.state != self.OPEN

    def record_success(self, *, primary: bool) -> None:
        """Account one batch that completed on the given backend."""
        if primary:
            # A primary success closes a half-open breaker and clears
            # the failure streak.
            self.state = self.CLOSED
            self.consecutive_failures = 0
        elif self.state == self.OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = self.HALF_OPEN

    def record_failure(self) -> None:
        """Account one batch that exhausted its retries on the primary."""
        self.consecutive_failures += 1
        if (self.state == self.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self.state = self.OPEN
            self.opens += 1
            self._cooldown_left = self.cooldown_batches
