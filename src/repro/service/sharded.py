"""A pool of miner shards behind one ingest/query facade.

:class:`ShardedMiner` scales the paper's co-processor loop horizontally:
N independent :class:`~repro.core.engine.StreamMiner` instances each run
the window -> sort -> summarize -> merge -> compress pipeline over their
slice of the stream, and queries are answered *on demand* by combining
the per-shard mergeable state — there is no shared summary to contend
on, so shards never synchronise during ingestion.

Combined-error accounting (why sharding is free, per statistic):

* **Quantiles** (GK-04 model).  Shards run their exponential histograms
  at ``eps / 2``, so every live bucket summary has error ``<= eps / 2``.
  A query merges *all* buckets of *all* shards with
  :meth:`QuantileSummary.merge_all` — merge is lossless (error is the
  max of the inputs, Section 5.2) — then prunes the merged summary to
  ``B = ceil(1 / eps)`` entries, adding ``1 / (2B) <= eps / 2``.  The
  served summary therefore answers within ``eps * N`` ranks of the
  population of all shards combined: partitioning and merging added no
  error beyond the configured ``eps``.
* **Frequencies** (Manku-Motwani).  Tuples are hash-partitioned by
  value, so a value's global count *is* its home shard's count and the
  per-shard undercount bound ``eps * N_shard <= eps * N`` carries over
  to the union query unchanged.  No false negatives at support ``s``;
  nothing reported below ``(s - eps) * N``.
* **Distinct counts** (KMV).  Sketches share ``k`` and the hash seed,
  so the union sketch over shards is exactly the sketch of the union
  stream — the usual mergeable-sketch argument.

Queries reflect the tuples that have been *processed*; each miner may
hold up to one texture batch (4 windows) of accepted-but-unprocessed
elements, visible via :attr:`buffered` and flushed by :meth:`drain`.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..core.engine import EngineReport, StreamMiner
from ..core.quantiles.window import QuantileSummary
from ..errors import QueryError, ServiceError
from .metrics import ServiceMetrics, ShardMetrics
from .sharding import HashPartitioner, default_partitioner


class ShardedMiner:
    """Hash/round-robin sharded stream mining with merge-on-query.

    Parameters
    ----------
    statistic:
        ``"quantile"``, ``"frequency"`` or ``"distinct"`` (history mode;
        sliding windows are order-sensitive and stay single-shard).
    eps:
        End-to-end approximation fraction *after* cross-shard merging.
    num_shards:
        Independent miner pipelines.
    backend:
        Sorting backend for every shard (``"gpu"`` or ``"cpu"``).
    window_size:
        Per-shard window width (quantile/distinct statistics).
    partitioner:
        Tuple router; defaults to hash-by-value for frequencies and
        round-robin otherwise (see :mod:`repro.service.sharding`).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service import ShardedMiner
    >>> miner = ShardedMiner("quantile", eps=0.05, num_shards=4,
    ...                      backend="cpu", window_size=512)
    >>> miner.ingest(np.random.default_rng(0).random(20_000))
    >>> miner.drain()
    >>> 0.45 <= miner.quantile(0.5) <= 0.55
    True
    """

    def __init__(self, statistic: str = "quantile", eps: float = 0.01,
                 num_shards: int = 4, backend: str = "cpu",
                 window_size: int | None = None,
                 partitioner=None,
                 stream_length_hint: int = 100_000_000):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        if statistic not in ("quantile", "frequency", "distinct"):
            raise ServiceError(f"unknown statistic {statistic!r}")
        if not 0.0 < eps < 1.0:
            raise ServiceError(f"eps must be in (0, 1), got {eps}")
        self.statistic = statistic
        self.eps = float(eps)
        self.num_shards = int(num_shards)
        self.partitioner = (partitioner if partitioner is not None
                            else default_partitioner(statistic, num_shards))
        if statistic == "frequency" and not hasattr(
                self.partitioner, "shard_of"):
            raise ServiceError(
                "frequency sharding needs a value-routing partitioner")
        # Quantile shards run at eps/2 so the query-time prune (budget
        # ceil(1/eps), adding 1/(2B) <= eps/2) lands the served summary
        # back at eps exactly — see the module docstring.
        shard_eps = eps / 2.0 if statistic == "quantile" else eps
        # Hint each shard with its own expected share so the exponential
        # histogram's error schedule is not over-provisioned.
        shard_hint = max(1, math.ceil(stream_length_hint / num_shards))
        self._miners = [
            StreamMiner(statistic, eps=shard_eps, backend=backend,
                        mode="history", window_size=window_size,
                        stream_length_hint=shard_hint)
            for _ in range(self.num_shards)]
        self.metrics = ServiceMetrics(
            shards=[ShardMetrics(i) for i in range(self.num_shards)])

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, chunk: np.ndarray | list[float]) -> None:
        """Route one chunk across the shard pool (synchronous path)."""
        parts = self.partitioner.split(chunk)
        for shard_id, part in enumerate(parts):
            self.dispatch(shard_id, part)
        self.metrics.ingested += sum(int(p.size) for p in parts)

    def dispatch(self, shard_id: int, values: np.ndarray) -> None:
        """Feed one pre-routed batch into a single shard (timed).

        The async front-end calls this from per-shard workers; batches
        for different shards may run concurrently because shards share
        no state.
        """
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        start = time.perf_counter()
        self._miners[shard_id].update(arr)
        self.metrics.shards[shard_id].record_batch(
            arr.size, time.perf_counter() - start)

    def drain(self) -> None:
        """Flush every shard's partial texture batch and tail window."""
        for miner in self._miners:
            miner.flush()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        """The shard pipelines' window width (largest across shards)."""
        return max(int(m.window_size) for m in self._miners)

    @property
    def processed(self) -> int:
        """Elements fully through the per-shard pipelines."""
        if self.statistic == "frequency":
            return sum(m.estimator.count + m.estimator.pending
                       for m in self._miners)
        return sum(m.estimator.count for m in self._miners)

    @property
    def buffered(self) -> int:
        """Elements accepted by shards but not yet summarised."""
        return sum(m.buffered for m in self._miners)

    def shard_reports(self) -> list[EngineReport]:
        """Per-shard per-operation latency accounting (wall + modelled)."""
        return [m.report for m in self._miners]

    # ------------------------------------------------------------------
    # merge-on-query
    # ------------------------------------------------------------------
    def combined_summary(self, prune_budget: int | str | None = "auto"
                         ) -> QuantileSummary:
        """Merge every shard's quantile buckets into one served summary.

        ``prune_budget="auto"`` (the default) prunes to
        ``ceil(1 / eps)`` entries, giving total error ``<= eps``;
        ``None`` skips the prune (error ``<= eps / 2``, larger summary);
        an integer prunes to that budget (error grows by ``1/(2B)``).
        """
        if self.statistic != "quantile":
            raise QueryError("this service does not estimate quantiles")
        summaries = [s for m in self._miners for s in m.quantile_summaries()]
        merged = QuantileSummary.merge_all(summaries)
        if merged.count == 0:
            raise QueryError("no data processed yet")
        if prune_budget == "auto":
            prune_budget = math.ceil(1.0 / self.eps)
        if prune_budget is not None and len(merged) > prune_budget + 1:
            merged = merged.prune(prune_budget)
        return merged

    def quantile(self, phi: float) -> float:
        """The phi-quantile over all shards, within ``eps * N`` ranks."""
        result = self.combined_summary().quantile(phi)
        self.metrics.queries += 1
        return result

    def frequent_items(self, support: float) -> list[tuple[float, int]]:
        """Heavy hitters over all shards: union of home-shard counts.

        Returns every value whose estimated global count reaches
        ``(support - eps) * N``; contains all values with true frequency
        ``>= support * N`` and nothing below the threshold.
        """
        if self.statistic != "frequency":
            raise QueryError("this service does not estimate frequencies")
        if not 0.0 <= support <= 1.0:
            raise QueryError(f"support must be in [0, 1], got {support}")
        if support < self.eps:
            raise QueryError(
                f"support {support} below eps {self.eps}: the guarantee "
                "threshold (s - eps) N would be vacuous")
        total = self.processed
        threshold = (support - self.eps) * total
        result = [(value, estimate)
                  for miner in self._miners
                  for value, estimate in miner.frequency_items()
                  if estimate >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        self.metrics.queries += 1
        return result

    def estimate(self, value: float) -> int:
        """Estimated global count of ``value`` (its home shard's count)."""
        if self.statistic != "frequency":
            raise QueryError("this service does not estimate frequencies")
        shard_id = self.partitioner.shard_of(value)
        self.metrics.queries += 1
        return self._miners[shard_id].estimate(value)

    def distinct(self) -> float:
        """Distinct-count estimate from the union of shard KMV sketches."""
        if self.statistic != "distinct":
            raise QueryError("this service does not count distinct values")
        sketches = [m.distinct_sketch() for m in self._miners]
        union = sketches[0]
        for sketch in sketches[1:]:
            union = union.merge(sketch)
        self.metrics.queries += 1
        return union.estimate()
