"""A pool of miner shards behind one ingest/query facade.

:class:`ShardedMiner` scales the paper's co-processor loop horizontally:
N independent :class:`~repro.core.engine.StreamMiner` instances each run
the window -> sort -> summarize -> merge -> compress pipeline over their
slice of the stream, and queries are answered *on demand* by combining
the per-shard mergeable state — there is no shared summary to contend
on, so shards never synchronise during ingestion.

Combined-error accounting (why sharding is free, per statistic):

* **Quantiles** (GK-04 model).  Shards run their exponential histograms
  at ``eps / 2``, so every live bucket summary has error ``<= eps / 2``.
  A query merges *all* buckets of *all* shards with
  :meth:`QuantileSummary.merge_all` — merge is lossless (error is the
  max of the inputs, Section 5.2) — then prunes the merged summary to
  ``B = ceil(1 / eps)`` entries, adding ``1 / (2B) <= eps / 2``.  The
  served summary therefore answers within ``eps * N`` ranks of the
  population of all shards combined: partitioning and merging added no
  error beyond the configured ``eps``.
* **Frequencies** (Manku-Motwani).  Tuples are hash-partitioned by
  value, so a value's global count *is* its home shard's count and the
  per-shard undercount bound ``eps * N_shard <= eps * N`` carries over
  to the union query unchanged.  No false negatives at support ``s``;
  nothing reported below ``(s - eps) * N``.
* **Distinct counts** (KMV).  Sketches share ``k`` and the hash seed,
  so the union sketch over shards is exactly the sketch of the union
  stream — the usual mergeable-sketch argument.

Queries reflect the tuples that have been *processed*; each miner may
hold up to one texture batch (4 windows) of accepted-but-unprocessed
elements, visible via :attr:`buffered` and flushed by :meth:`drain`.

Fault tolerance.  The GPU path may fault transiently (see
:mod:`repro.gpu.faults`); :meth:`dispatch` first buffers the chunk
(pure CPU — cannot fault, no data at risk) and then pumps the engine
under a retry policy with exponential backoff.  A batch that exhausts
its retries escalates to the per-shard circuit breaker, which degrades
the shard to the CPU sorting baseline — sorted output is identical, so
degradation changes only the cost model, never an answer.  The whole
pool snapshots to a versioned dict (:meth:`snapshot`) and restores
(:meth:`from_snapshot` / :meth:`restore_shard`), including the
partitioner cursor, so a restored service routes replayed tuples
identically.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..backends import cpu_fallback_for
from ..core.engine import EngineReport, StreamMiner
from ..core.estimators import (default_kind_for, estimator_capabilities,
                               estimator_from_state)
from ..core.quantiles.window import QuantileSummary
from ..errors import QueryError, ServiceError
from ..gpu.device import GpuDevice
from ..obs import collector
from ..gpu.faults import FaultInjector, FaultPlan
from .metrics import ServiceMetrics, ShardMetrics
from .policies import DEFAULT_POLICIES, ServicePolicies
from .resilience import CircuitBreaker, RetryPolicy, ShardGuard
from .sharding import default_partitioner, partitioner_from_state


def merge_quantile_summaries(summaries, eps: float,
                             prune_budget: int | str | None = "auto"
                             ) -> QuantileSummary:
    """Merge shard bucket summaries into one served summary.

    The combined-error accounting (module docstring) is shared by every
    executor: shards run at ``eps / 2``, merge is lossless, and the
    query-time prune to ``B = ceil(1 / eps)`` entries adds
    ``1 / (2B) <= eps / 2`` — so the served summary answers within
    ``eps * N`` ranks regardless of where the shards live (in-process
    or in worker processes).
    """
    merged = QuantileSummary.merge_all(summaries)
    if merged.count == 0:
        raise QueryError("no data processed yet")
    if prune_budget == "auto":
        prune_budget = math.ceil(1.0 / eps)
    if prune_budget is not None and len(merged) > prune_budget + 1:
        merged = merged.prune(prune_budget)
    return merged


def dispatch_query(pool, metric: str, params: dict):
    """Route one metric-keyed query to a pool's typed query method.

    The continuous-query front-end (:mod:`repro.query`) speaks metrics
    (``"quantile"``, ``"heavy_hitters"``, ``"top_k"``, ``"estimate"``,
    ``"distinct"``); this is the one translation point onto the typed
    query surface, shared by every pool that grows an ``answer`` method
    (:class:`ShardedMiner`, the mp/net pools via ``_PoolQueryMixin``,
    and single :class:`~repro.core.engine.StreamMiner` adapters — all
    expose the same method names and an ``eps``).

    ``top_k`` reads the frequency structure at ``support = pool.eps``:
    the report threshold ``(support - eps) * N`` collapses to zero, so
    every tracked item comes back (already sorted by estimated count,
    ties broken by value) and the first ``k`` are the answer — the
    ordering guarantee comes from the sketch's eps grade, which the
    front-end's planner chose as ``min(eps, 1/(2k))``.
    """
    if metric == "quantile":
        return pool.quantile(float(params["phi"]))
    if metric == "heavy_hitters":
        return pool.frequent_items(float(params["support"]))
    if metric == "top_k":
        items = pool.frequent_items(float(pool.eps))
        return items[:int(params["k"])]
    if metric == "estimate":
        return pool.estimate(float(params["value"]))
    if metric == "distinct":
        return pool.distinct()
    raise QueryError(f"unknown query metric {metric!r}")


class ShardedMiner:
    """Hash/round-robin sharded stream mining with merge-on-query.

    Parameters
    ----------
    statistic:
        ``"quantile"``, ``"frequency"`` or ``"distinct"`` (history mode;
        sliding windows are order-sensitive and stay single-shard).
    eps:
        End-to-end approximation fraction *after* cross-shard merging.
    num_shards:
        Independent miner pipelines.
    backend:
        Sorting backend for every shard (``"gpu"`` or ``"cpu"``).
    window_size:
        Per-shard window width (quantile/distinct statistics).
    kind:
        Explicit estimator kind from the registry (``"ddsketch"``,
        ``"kll"``, ``"tdigest"``, ``"count-min"``, ...).  Must be
        capability-mergeable: queries fold the per-shard estimators
        with their family ``merge()`` instead of the GK summary path.
    partitioner:
        Tuple router; defaults to hash-by-value for frequencies and
        round-robin otherwise (see :mod:`repro.service.sharding`).
    fault_plan:
        Optional :class:`~repro.gpu.faults.FaultPlan` (GPU backend
        only); each shard gets its own device with an injector reseeded
        by shard id, so faults are independent across shards but the
        whole scenario replays deterministically.
    retry:
        Backoff policy for transiently faulted batches (defaults to
        :class:`~repro.service.resilience.RetryPolicy`).
    breaker_failure_threshold / breaker_cooldown_batches:
        Circuit-breaker tuning (see
        :class:`~repro.service.resilience.CircuitBreaker`).
    policies:
        A :class:`~repro.service.policies.ServicePolicies` bundle
        providing defaults for ``retry`` and the breaker knobs;
        explicit arguments win.
    retired:
        Internal (used by :meth:`from_snapshot`): ghost estimator
        states carried over from shards retired by a reshard.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service import ShardedMiner
    >>> miner = ShardedMiner("quantile", eps=0.05, num_shards=4,
    ...                      backend="cpu", window_size=512)
    >>> miner.ingest(np.random.default_rng(0).random(20_000))
    >>> miner.drain()
    >>> 0.45 <= miner.quantile(0.5) <= 0.55
    True
    """

    def __init__(self, statistic: str = "quantile", eps: float = 0.01,
                 num_shards: int = 4, backend: str = "cpu",
                 window_size: int | None = None,
                 partitioner=None,
                 stream_length_hint: int = 100_000_000,
                 fault_plan: FaultPlan | None = None,
                 retry: RetryPolicy | None = None,
                 breaker_failure_threshold: int | None = None,
                 breaker_cooldown_batches: int | None = None, *,
                 kind: str | None = None,
                 policies: ServicePolicies | None = None,
                 retired: list[dict] | None = None):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        if statistic not in ("quantile", "frequency", "distinct"):
            raise ServiceError(f"unknown statistic {statistic!r}")
        if not 0.0 < eps < 1.0:
            raise ServiceError(f"eps must be in (0, 1), got {eps}")
        if kind is not None and kind == default_kind_for(statistic):
            kind = None
        if kind is not None:
            caps = estimator_capabilities(kind)
            if caps.statistic != statistic:
                raise ServiceError(
                    f"estimator kind {kind!r} serves statistic "
                    f"{caps.statistic!r}, not {statistic!r}")
            if not caps.mergeable:
                raise ServiceError(
                    f"estimator kind {kind!r} is not mergeable; the "
                    "sharded pools answer by merge-on-query")
        self.kind = kind
        if fault_plan is not None and backend != "gpu":
            raise ServiceError(
                "fault injection targets the simulated GPU; "
                f"backend is {backend!r}")
        pol = policies if policies is not None else DEFAULT_POLICIES
        if not isinstance(pol, ServicePolicies):
            raise ServiceError(
                f"policies must be a ServicePolicies, got {pol!r}")
        self.policies = pol
        if breaker_failure_threshold is None:
            breaker_failure_threshold = pol.breaker_failure_threshold
        if breaker_cooldown_batches is None:
            breaker_cooldown_batches = pol.breaker_cooldown_batches
        self.statistic = statistic
        self.eps = float(eps)
        self.num_shards = int(num_shards)
        self.partitioner = (partitioner if partitioner is not None
                            else default_partitioner(statistic, num_shards))
        if statistic == "frequency" and not hasattr(
                self.partitioner, "shard_of"):
            raise ServiceError(
                "frequency sharding needs a value-routing partitioner")
        self._backend_kind = (backend if isinstance(backend, str)
                              else getattr(backend, "name", "custom"))
        self._window_size_arg = (int(window_size) if window_size is not None
                                 else None)
        self._stream_length_hint = int(stream_length_hint)
        self.fault_plan = fault_plan
        self.retry = retry if retry is not None else pol.retry
        self._breaker_config = (int(breaker_failure_threshold),
                                int(breaker_cooldown_batches))
        #: ghost estimator states from shards retired by a reshard —
        #: frozen history every query folds in (see frequent_items /
        #: combined_summary / distinct).
        self.retired = [dict(state) for state in (retired or [])]
        # Quantile shards run at eps/2 so the query-time prune (budget
        # ceil(1/eps), adding 1/(2B) <= eps/2) lands the served summary
        # back at eps exactly — see the module docstring.  Non-default
        # kinds merge within their own family losslessly (bucket /
        # table / centroid addition), so their shards run at full eps.
        shard_eps = (eps / 2.0 if statistic == "quantile" and kind is None
                     else eps)
        # Hint each shard with its own expected share so the exponential
        # histogram's error schedule is not over-provisioned.
        shard_hint = max(1, math.ceil(stream_length_hint / num_shards))
        self._devices: list[GpuDevice | None] = []
        self.fault_injectors: list[FaultInjector | None] = []
        self._miners: list[StreamMiner] = []
        for shard_id in range(self.num_shards):
            device = None
            injector = None
            if backend == "gpu" and fault_plan is not None:
                injector = FaultInjector(
                    fault_plan.reseeded(fault_plan.seed + shard_id))
                device = GpuDevice(fault_injector=injector)
            self._devices.append(device)
            self.fault_injectors.append(injector)
            self._miners.append(
                StreamMiner(statistic, eps=shard_eps, backend=backend,
                            mode="history", window_size=window_size,
                            device=device, stream_length_hint=shard_hint,
                            kind=kind))
        self.metrics = ServiceMetrics(
            shards=[ShardMetrics(i) for i in range(self.num_shards)])
        # One dispatch guard per shard: a CPU fallback exists wherever
        # the primary sorts on the (fault-prone) simulated GPU — results
        # are identical either way — and the retry RNG is seeded per
        # shard so concurrent shards don't back off in lockstep yet
        # scenarios stay reproducible.
        self._guards = [self._build_guard(shard_id)
                        for shard_id in range(self.num_shards)]
        # Merge-on-query memoization: between two state changes (pump,
        # flush, restore) every answer sees identical shard summaries,
        # so the merged view is computed once per state version — 1,000
        # standing queries cost one merge, not 1,000.  Bump
        # ``_state_version`` from every path that can alter what a
        # query reads.
        self._state_version = 0
        self._answer_cache: dict[str, tuple[int, object]] = {}

    def _build_guard(self, shard_id: int) -> ShardGuard:
        miner = self._miners[shard_id]
        return ShardGuard(
            shard_id, miner, miner.sorter,
            cpu_fallback_for(miner.sorter, cpu_speedup=miner._cpu_speedup),
            self.retry, CircuitBreaker(*self._breaker_config),
            np.random.default_rng((2005, shard_id)),
            self.metrics.shards[shard_id])

    # Compatibility views over the per-shard guards (tests and tools
    # introspect these; the guards are the source of truth).
    @property
    def _primary_sorters(self) -> list:
        return [g.primary for g in self._guards]

    @property
    def _fallback_sorters(self) -> list:
        return [g.fallback for g in self._guards]

    @property
    def _breakers(self) -> list[CircuitBreaker]:
        return [g.breaker for g in self._guards]

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, chunk: np.ndarray | list[float]) -> None:
        """Route one chunk across the shard pool (synchronous path)."""
        parts = self.partitioner.split(chunk)
        for shard_id, part in enumerate(parts):
            self.dispatch(shard_id, part)
        self.metrics.ingested += sum(int(p.size) for p in parts)

    def dispatch(self, shard_id: int, values: np.ndarray) -> None:
        """Feed one pre-routed batch into a single shard (timed).

        The async front-end calls this from per-shard workers; batches
        for different shards may run concurrently because shards share
        no state.

        Fault handling: the chunk is buffered first (pure CPU, cannot
        fault), then the engine pump runs under the retry policy; see
        :meth:`_run_protected`.  By the time this raises
        :class:`ShardFailedError`, every element of ``values`` is still
        safely buffered in the shard's engine — nothing is lost.
        """
        arr = np.asarray(values, dtype=np.float32).ravel()
        if arr.size == 0:
            return
        start = time.perf_counter()
        miner = self._miners[shard_id]
        col = collector()
        if col.enabled:
            # The dispatch span parents every pipeline.* span the engine
            # emits while pumping this batch.
            with col.span("service.dispatch", shard=shard_id,
                          elements=int(arr.size)):
                miner.buffer_chunk(arr)
                self._run_protected(shard_id, miner.pump)
        else:
            miner.buffer_chunk(arr)
            self._run_protected(shard_id, miner.pump)
        self.metrics.shards[shard_id].record_batch(
            arr.size, time.perf_counter() - start)
        self._state_version += 1

    def _run_protected(self, shard_id: int, step) -> None:
        """Run one faultable engine step under retry + circuit breaking.

        ``step`` is :meth:`StreamMiner.pump` or :meth:`StreamMiner.flush`
        — both transactional, so re-running after a transient fault is
        exactly a retry of the failed texture batch.  The policy lives
        in :class:`~repro.service.resilience.ShardGuard`, shared with
        the multiprocess executor's workers.
        """
        self._guards[shard_id].run(step)

    def drain(self) -> None:
        """Flush every shard's partial texture batch and tail window.

        Runs under the same retry/degradation policy as dispatch, so a
        drain over a faulty GPU still completes with no data loss.
        """
        for shard_id, miner in enumerate(self._miners):
            self._run_protected(shard_id, miner.flush)
        self._state_version += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        """The shard pipelines' window width (largest across shards)."""
        return max(int(m.window_size) for m in self._miners)

    def _memo(self, op: str, build):
        """Value of ``build()`` memoized against the pool's state version.

        Cached values are shared across calls — treat them as
        read-only.  Invalidation is a version bump, never deletion, so
        a stale entry costs one recompute and no correctness.
        """
        entry = self._answer_cache.get(op)
        if entry is not None and entry[0] == self._state_version:
            return entry[1]
        value = build()
        self._answer_cache[op] = (self._state_version, value)
        return value

    def _retired_estimators(self) -> list:
        return self._memo("retired", lambda: [
            estimator_from_state(state) for state in self.retired])

    @property
    def processed(self) -> int:
        """Elements fully through the per-shard pipelines (incl. ghosts).

        Uniform across statistics via the estimator protocol's
        ``processed`` property (frequency estimators fold their pending
        partial window in themselves).
        """
        return (sum(m.estimator.processed for m in self._miners)
                + sum(int(est.processed)
                      for est in self._retired_estimators()))

    @property
    def buffered(self) -> int:
        """Elements accepted by shards but not yet summarised."""
        return sum(m.buffered for m in self._miners)

    def shard_reports(self) -> list[EngineReport]:
        """Per-shard per-operation latency accounting (wall + modelled)."""
        return [m.report for m in self._miners]

    # ------------------------------------------------------------------
    # merge-on-query
    # ------------------------------------------------------------------
    def combined_summary(self, prune_budget: int | str | None = "auto"
                         ) -> QuantileSummary:
        """Merge every shard's quantile buckets into one served summary.

        ``prune_budget="auto"`` (the default) prunes to
        ``ceil(1 / eps)`` entries, giving total error ``<= eps``;
        ``None`` skips the prune (error ``<= eps / 2``, larger summary);
        an integer prunes to that budget (error grows by ``1/(2B)``).
        """
        if self.statistic != "quantile":
            raise QueryError("this service does not estimate quantiles")
        if self.kind is not None:
            raise QueryError(
                f"estimator kind {self.kind!r} merges within its own "
                "family, not through GK bucket summaries — query via "
                "quantile()")

        def merge() -> QuantileSummary:
            summaries = [s for m in self._miners
                         for s in m.quantile_summaries()]
            for estimator in self._retired_estimators():
                summaries.extend(estimator.summaries())
            return merge_quantile_summaries(summaries, self.eps,
                                            prune_budget)

        if prune_budget == "auto":
            # The served-summary path every quantile answer takes:
            # memoized per state version, shared, read-only.
            return self._memo("summary", merge)
        return merge()

    def _merged_estimator(self):
        """Every shard's estimator (plus ghosts) folded with the
        family's own ``merge()`` — the generic-kind query path,
        memoized per state version like the GK summary."""

        def merge():
            estimators = [m.estimator for m in self._miners]
            estimators.extend(self._retired_estimators())
            live = [est for est in estimators if int(est.processed) > 0]
            if not live:
                raise QueryError("no data processed yet")
            merged = live[0]
            for estimator in live[1:]:
                merged = merged.merge(estimator)
            return merged

        return self._memo("merged", merge)

    def quantile(self, phi: float) -> float:
        """The phi-quantile over all shards, within the kind's bound."""
        if self.kind is not None:
            if self.statistic != "quantile":
                raise QueryError("this service does not estimate quantiles")
            result = self._merged_estimator().quantile(phi)
        else:
            result = self.combined_summary().quantile(phi)
        self.metrics.queries += 1
        return result

    def frequent_items(self, support: float) -> list[tuple[float, int]]:
        """Heavy hitters over all shards: union of home-shard counts.

        Returns every value whose estimated global count reaches
        ``(support - eps) * N``; contains all values with true frequency
        ``>= support * N`` and nothing below the threshold.
        """
        if self.statistic != "frequency":
            raise QueryError("this service does not estimate frequencies")
        if self.kind is not None and "heavy_hitters" not in \
                estimator_capabilities(self.kind).metrics:
            raise QueryError(
                f"estimator kind {self.kind!r} answers point estimates "
                "only; it cannot enumerate heavy hitters")
        if not 0.0 <= support <= 1.0:
            raise QueryError(f"support must be in [0, 1], got {support}")
        if support < self.eps:
            raise QueryError(
                f"support {support} below eps {self.eps}: the guarantee "
                "threshold (s - eps) N would be vacuous")
        total = self.processed
        threshold = (support - self.eps) * total

        def global_counts() -> dict[float, int]:
            counts: dict[float, int] = {}
            for miner in self._miners:
                for value, estimate in miner.frequency_items():
                    counts[value] = counts.get(value, 0) + estimate
            for estimator in self._retired_estimators():
                for value, estimate in estimator.items():
                    counts[value] = counts.get(value, 0) + estimate
            return counts

        counts = self._memo("counts", global_counts)
        result = [(value, count) for value, count in counts.items()
                  if count >= threshold]
        result.sort(key=lambda pair: (-pair[1], pair[0]))
        self.metrics.queries += 1
        return result

    def estimate(self, value: float) -> int:
        """Estimated global count of ``value`` (summed over shards).

        Under value-affine routing every term but the home shard's is
        zero, so this matches the home-shard lookup bit for bit; after
        a reshard it also folds in the ghost contributions.  Occurrences
        of a value partition across the structures and lossy counting
        never overcounts its own occurrences, so the sum never
        overcounts the global count.
        """
        if self.statistic != "frequency":
            raise QueryError("this service does not estimate frequencies")
        self.metrics.queries += 1
        total = sum(m.estimate(value) for m in self._miners)
        total += sum(est.estimate(value)
                     for est in self._retired_estimators())
        return total

    def distinct(self) -> float:
        """Distinct-count estimate from the union of shard KMV sketches."""
        if self.statistic != "distinct":
            raise QueryError("this service does not count distinct values")

        def union_estimate() -> float:
            sketches = [m.distinct_sketch() for m in self._miners]
            sketches.extend(self._retired_estimators())
            union = sketches[0]
            for sketch in sketches[1:]:
                union = union.merge(sketch)
            return union.estimate()

        self.metrics.queries += 1
        return self._memo("distinct", union_estimate)

    def answer(self, metric: str, **params):
        """Metric-keyed query routing (the continuous-query seam).

        ``pool.answer("quantile", phi=0.99)`` ==
        ``pool.quantile(0.99)``; see :func:`dispatch_query` for the
        full metric vocabulary.  Every executor's pool exposes this
        same method, so the front-end never branches on pool type.
        """
        return dispatch_query(self, metric, params)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Versioned JSON-serializable snapshot of the whole pool.

        Includes every shard engine's summary *and* buffered state plus
        the partitioner cursor, so replaying the stream suffix from a
        restored pool routes and answers exactly as the original would
        have.
        """
        return {
            "version": 1,
            "kind": "sharded-miner",
            "statistic": self.statistic,
            "eps": self.eps,
            "estimator_kind": self.kind,
            "num_shards": self.num_shards,
            "backend": self._backend_kind,
            "window_size": self._window_size_arg,
            "stream_length_hint": self._stream_length_hint,
            "partitioner": self.partitioner.to_state(),
            "ingested": int(self.metrics.ingested),
            "shards": [
                {"miner": miner.snapshot(),
                 "elements": int(shard.elements),
                 "batches": int(shard.batches)}
                for miner, shard in zip(self._miners, self.metrics.shards)],
            "retired": [dict(state) for state in self.retired],
        }

    def restore_shard(self, shard_id: int, shard_state: dict) -> None:
        """Rebuild one shard from its slice of a :meth:`snapshot`.

        Used both by :meth:`from_snapshot` and to restart a single
        killed shard in place: the replacement engine resumes from the
        checkpointed summary + buffer, losing at most whatever was
        dispatched after the checkpoint was cut.  The shard's breaker
        resets (the replacement starts by trusting its primary again).
        """
        if not 0 <= shard_id < self.num_shards:
            raise ServiceError(f"no shard {shard_id}")
        restored = StreamMiner.from_snapshot(
            shard_state["miner"], backend=self._backend_kind,
            device=self._devices[shard_id])
        self._miners[shard_id] = restored
        self._guards[shard_id] = self._build_guard(shard_id)
        shard = self.metrics.shards[shard_id]
        shard.elements = int(shard_state.get("elements", 0))
        shard.batches = int(shard_state.get("batches", 0))
        shard.breaker_state = CircuitBreaker.CLOSED
        self._state_version += 1

    @classmethod
    def from_snapshot(cls, state: dict, backend: str | None = None,
                      **kwargs) -> "ShardedMiner":
        """Rebuild a whole pool from :meth:`snapshot` output.

        ``backend`` overrides the checkpointed backend (sorter state is
        transient, so a checkpoint written on the GPU path restores
        fine onto the CPU baseline and vice versa); extra keyword
        arguments (``fault_plan``, ``retry``, breaker tuning, a custom
        ``partitioner``) pass through to the constructor.
        """
        if state.get("kind") != "sharded-miner" or state.get("version") != 1:
            raise ServiceError(
                f"not a v1 sharded-miner state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        window_size = state.get("window_size")
        if "partitioner" not in kwargs:
            # Rebuild the exact router kind the checkpoint was cut
            # under (round-robin / hash / consistent-hash).
            kwargs["partitioner"] = partitioner_from_state(
                state["partitioner"])
        pool = cls(state["statistic"], eps=float(state["eps"]),
                   num_shards=int(state["num_shards"]),
                   backend=backend if backend is not None
                   else state["backend"],
                   window_size=(int(window_size) if window_size is not None
                                else None),
                   stream_length_hint=int(state["stream_length_hint"]),
                   kind=state.get("estimator_kind"),
                   retired=state.get("retired"),
                   **kwargs)
        pool.partitioner.restore_state(state["partitioner"])
        pool.metrics.ingested = int(state["ingested"])
        shards = state["shards"]
        if len(shards) != pool.num_shards:
            raise ServiceError(
                f"state has {len(shards)} shards, pool has "
                f"{pool.num_shards}")
        for shard_id, shard_state in enumerate(shards):
            pool.restore_shard(shard_id, shard_state)
        return pool

    # ------------------------------------------------------------------
    # elastic resharding
    # ------------------------------------------------------------------
    def reshard(self, num_shards: int) -> None:
        """Live shard split/merge: migrate state onto a new pool size.

        Drains, snapshots, rewrites the snapshot for ``num_shards`` via
        :func:`repro.service.reshard.resharded_snapshot` (old shard
        histories become ghost entries in ``retired``; the partitioner
        is rebuilt over the new count), then adopts a fresh pool in
        place.  The eps accounting is preserved: ghost summaries merge
        losslessly into quantile queries, ghost counts are summed into
        frequency queries (occurrences partition across structures —
        never an overcount, undercount still ``<= eps * N``), and ghost
        KMV sketches union exactly.
        """
        from .reshard import resharded_snapshot
        self.drain()
        state = resharded_snapshot(self.snapshot(), num_shards)
        fresh = type(self).from_snapshot(
            state, fault_plan=self.fault_plan, retry=self.retry,
            breaker_failure_threshold=self._breaker_config[0],
            breaker_cooldown_batches=self._breaker_config[1],
            policies=self.policies)
        self.__dict__.update(fresh.__dict__)
