"""Network shard executor: the ack/replay protocol over TCP.

:class:`NetShardedMiner` lifts the multiprocess executor's worker
protocol (per-shard sequence numbers, in-order acks, bounded replay
log, supervised restarts — DESIGN.md §12) onto framed TCP channels
(:mod:`repro.service.net_transport`), which buys three things pipes
cannot give:

* **failure-domain isolation** — a worker and its parent share no OS
  resources beyond the socket, so the failure modes of a real
  deployment (connection loss, partition, reordering, silent peer
  death) all exist and are all handled explicitly;
* **a deadline/heartbeat/reconnect protocol** — every framed send and
  receive carries a deadline; an idle worker heartbeats its ``applied``
  watermark; a worker that loses its connection re-dials with jittered
  backoff and resumes from the parent's replay log.  Two *sequence
  spaces* keep this safe: batches/flushes use contiguous stream
  sequence numbers (the worker applies them strictly in order, stashing
  out-of-order arrivals, and re-acks duplicates below its watermark),
  while state/snapshot/stop requests use separate request ids that are
  only issued on a settled link and re-issued fresh after a reconnect —
  so a lost request can never wedge the stream behind a sequence gap;
* **elastic degradation** — when a shard exhausts reconnects *and* its
  restart budget, the pool can *take over* its keyspace instead of
  failing it: the last snapshot's estimator joins the ``retired`` ghost
  list (merge-on-query folds it in forever), the snapshot's buffered
  elements and the replay log's batches are re-routed to survivors, and
  the partitioner routes the dead shard's values elsewhere.  No
  acknowledged element is lost, and the served bounds degrade from
  "bit-identical" to the ordinary merge bounds (see
  :class:`~repro.service.mp_executor._PoolQueryMixin`).

The worker side (:func:`_net_worker_main`) reuses the multiprocess
worker's guarded dispatch (:func:`~repro.service.mp_executor._run_guarded`)
verbatim, so retry/degradation semantics do not depend on the
transport.  Fault injection is parent-side only
(:class:`~repro.service.net_transport.NetFaultInjector`): workers
experience injected drops/partitions as disconnects — exactly what the
reconnect protocol must absorb.
"""

from __future__ import annotations

import multiprocessing
import time
import uuid
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from threading import RLock

import numpy as np

from ..backends import cpu_fallback_for
from ..core.distinct.kmv import hash_values
from ..core.engine import StreamMiner
from ..core.estimators import default_kind_for, estimator_capabilities
from ..errors import ServiceError, ShardFailedError
from ..gpu.device import GpuDevice
from ..gpu.faults import FaultInjector, FaultPlan
from ..obs import collecting, collector
from .metrics import ServiceMetrics, ShardMetrics
from .mp_executor import (_counter_delta, _pack_spans, _PoolQueryMixin,
                          _report_state, _run_guarded, _WorkerDied)
from .net_transport import (ChannelClosed, ChannelTimeout, FrameChannel,
                            Listener, NetFaultInjector, NetFaultPlan, connect)
from .policies import DEFAULT_POLICIES, ServicePolicies
from .resilience import CircuitBreaker, RetryPolicy, ShardGuard
from .sharding import default_partitioner, partitioner_from_state

__all__ = ["NetShardedMiner"]


@dataclass
class _NetLink:
    """Parent-side bookkeeping for one remote shard."""

    shard_id: int
    lock: RLock = field(default_factory=RLock)
    proc: multiprocessing.Process | None = None
    chan: FrameChannel | None = None
    window_size: int = 0
    next_seq: int = 0
    next_req: int = 0
    #: highest batch/flush sequence sent (requests have their own ids).
    sent: int = 0
    #: highest sequence acknowledged on the current connection epoch.
    acked: int = 0
    #: contiguous metrics watermark (acks can arrive out of order over
    #: TCP with injected reordering; ``counted_extra`` holds counted
    #: sequences above the watermark until the gap closes).
    counted: int = 0
    counted_extra: set = field(default_factory=set)
    #: seq -> element count, unacknowledged work (backpressure + loss
    #: accounting).
    pending: OrderedDict = field(default_factory=OrderedDict)
    #: (seq, kind, float32 array | None) entries since the last snapshot.
    replay: list = field(default_factory=list)
    #: last worker snapshot ({"miner": state}) — restart/takeover point.
    snap: dict | None = None
    snap_seq: int = 0
    acks_since_snap: int = 0
    results: dict = field(default_factory=dict)
    failed: ShardFailedError | None = None
    #: True once this shard's keyspace was reassigned to survivors.
    taken_over: bool = False
    #: the next attached connection must be fed the replay log first.
    needs_replay: bool = False
    #: hellos seen from the *current* worker process (>1 == reconnect).
    proc_sessions: int = 0
    #: monotonic time of the last frame received (liveness input).
    last_recv: float = 0.0
    #: monotonic time the current parent-side wait began (so liveness
    #: measures silence *during a wait*, not since some old activity).
    wait_anchor: float = 0.0


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _net_worker_main(shard_id: int, host: str, port: int, token: str,
                     config: dict) -> None:
    """One shard's process: dial the pool, serve commands, survive
    disconnects by re-dialing and resuming from ``applied``."""
    device = None
    plan = config["fault_plan"]
    if config["backend"] == "gpu" and plan is not None:
        device = GpuDevice(fault_injector=FaultInjector(
            plan.reseeded(plan.seed + shard_id)))
    snap = config["snapshot"]
    if snap is not None:
        miner = StreamMiner.from_snapshot(
            snap["miner"], backend=config["backend"], device=device)
    else:
        miner = StreamMiner(
            config["statistic"], eps=config["eps"],
            backend=config["backend"], mode="history",
            window_size=config["window_size"], device=device,
            stream_length_hint=config["length_hint"],
            kind=config.get("kind"))
    metrics = ShardMetrics(shard_id)
    guard = ShardGuard(
        shard_id, miner, miner.sorter,
        cpu_fallback_for(miner.sorter, cpu_speedup=miner._cpu_speedup),
        config["retry"], CircuitBreaker(*config["breaker"]),
        np.random.default_rng((2005, shard_id)), metrics)
    reported = {"faults": 0, "retries": 0, "degraded_batches": 0}
    # The applied watermark lives in a mutable holder: _net_serve
    # advances it per applied batch, and it must survive the exception
    # that ends a connection — a stale watermark would make the worker
    # re-apply replayed batches it already summarised.
    progress = {"applied": int(config["applied"])}
    #: out-of-order stream messages waiting for their predecessors.
    stash: dict[int, tuple] = {}
    rng = np.random.default_rng((2005, shard_id, 101))
    reconnect: RetryPolicy = config["reconnect"]
    attempt = 0
    try:
        while True:
            try:
                chan = connect(host, port, config["connect_timeout"])
            except ChannelClosed:
                attempt += 1
                if attempt >= reconnect.max_attempts:
                    return  # parent is gone for good
                time.sleep(reconnect.delay(attempt, rng))
                continue
            attempt = 0
            stash.clear()
            try:
                chan.send(("hello", shard_id, token, progress["applied"],
                           int(miner.window_size)),
                          timeout=config["io_deadline"])
                _net_serve(chan, miner, guard, reported, progress,
                           stash, config)
                return  # clean stop
            except (ChannelClosed, ChannelTimeout):
                chan.close()
                continue  # re-dial; miner state is intact
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        return
    except _NetStop:
        return
    except Exception as exc:  # pragma: no cover - supervised restart path
        try:
            chan.send(("fatal", repr(exc)), timeout=5.0)
        except (ChannelClosed, ChannelTimeout, UnboundLocalError):
            pass
        raise


class _NetStop(Exception):
    """Internal: clean worker shutdown requested by the parent."""


def _net_serve(chan: FrameChannel, miner, guard, reported, progress: dict,
               stash: dict, config: dict) -> None:
    """Serve one connection until it breaks or the parent says stop."""
    deadline = config["io_deadline"]
    while True:
        try:
            message = chan.recv(timeout=config["heartbeat"])
        except ChannelTimeout:
            # Nothing inbound: prove liveness with the applied watermark.
            chan.send(("hb", progress["applied"]), timeout=deadline)
            continue
        kind = message[0]
        if kind in ("batch", "flush"):
            seq = int(message[1])
            if seq <= progress["applied"]:
                # Replayed work this miner already applied (its ack was
                # lost with the old connection): re-ack synthetically so
                # the parent's watermark catches up.
                elements = 0
                if kind == "batch":
                    elements = int(np.asarray(message[2]).size)
                chan.send(("ack", seq, kind == "batch", elements, 0.0,
                           _counter_delta(guard.metrics, reported), []),
                          timeout=deadline)
                continue
            stash[seq] = message
            while progress["applied"] + 1 in stash:
                progress["applied"] += 1
                _net_apply(chan, miner, guard, reported,
                           stash.pop(progress["applied"]), deadline)
        elif kind == "state":
            chan.send(("result", message[1], {
                "estimator": miner.estimator.to_state(),
                "processed": int(miner.estimator.processed),
                "buffered": int(miner.buffered),
                "report": _report_state(miner.report)}), timeout=deadline)
        elif kind == "snapshot":
            chan.send(("result", message[1], miner.snapshot()),
                      timeout=deadline)
        elif kind == "stop":
            chan.send(("result", message[1], None), timeout=deadline)
            raise _NetStop()
        else:  # pragma: no cover - protocol error
            raise ServiceError(f"unknown command {kind!r}")


def _net_apply(chan, miner, guard, reported, message, deadline) -> None:
    """Apply one in-order batch/flush and acknowledge it."""
    kind, seq = message[0], int(message[1])
    if kind == "batch":
        arr = np.asarray(message[2], dtype=np.float32).ravel()
        trace = message[3]
        elements = int(arr.size)
    else:
        arr, elements = None, 0
        trace = message[2]
    began = time.process_time()
    spans: list = []
    try:
        if trace:
            with collecting() as col:
                _run_guarded(miner, guard, kind, arr)
            spans = _pack_spans(col.snapshot())
        else:
            _run_guarded(miner, guard, kind, arr)
    except ShardFailedError as exc:
        chan.send(("error", seq, repr(exc)), timeout=deadline)
        return
    busy = time.process_time() - began
    if kind == "batch" and trace:
        spans.append(("service.dispatch", busy, 1, {"elements": elements}))
    chan.send(("ack", seq, kind == "batch", elements, busy,
               _counter_delta(guard.metrics, reported), spans),
              timeout=deadline)


def _release_net_links(links, listener) -> None:
    """GC/exit safety net: reap workers, close sockets."""
    for link in links:
        proc = link.proc
        if proc is not None and proc.is_alive():
            proc.terminate()
        if link.chan is not None:
            link.chan.close()
    listener.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class NetShardedMiner(_PoolQueryMixin):
    """Network drop-in for :class:`~repro.service.sharded.ShardedMiner`.

    Parameters mirror :class:`~repro.service.mp_executor.MpShardedMiner`
    minus the shared-memory knobs (batches ride the framed channel);
    the extras are:

    net_fault_plan:
        A :class:`~repro.service.net_transport.NetFaultPlan` injected on
        the parent side of every channel (deterministic network chaos:
        drops, delays, reorders, partitions).
    host:
        Listener bind address (default loopback — workers are local
        processes; the protocol itself is location-transparent).
    policies:
        :class:`~repro.service.policies.ServicePolicies` also supplies
        the net-specific knobs: ``heartbeat_interval``,
        ``liveness_timeout``, ``io_deadline``, ``connect_timeout``,
        ``reconnect`` (worker re-dial backoff), ``reconnect_deadline``
        (how long the parent waits for a re-dial before a supervised
        restart), ``max_inflight_batches`` (backpressure window) and
        ``takeover`` (degrade to survivors instead of failing).
    """

    def __init__(self, statistic: str = "quantile", eps: float = 0.01,
                 num_shards: int = 4, backend: str = "cpu",
                 window_size: int | None = None,
                 partitioner=None,
                 stream_length_hint: int = 100_000_000,
                 fault_plan: FaultPlan | None = None,
                 retry: RetryPolicy | None = None,
                 breaker_failure_threshold: int | None = None,
                 breaker_cooldown_batches: int | None = None, *,
                 snapshot_every: int | None = None,
                 max_restarts: int | None = None,
                 policies: ServicePolicies | None = None,
                 net_fault_plan: NetFaultPlan | None = None,
                 host: str = "127.0.0.1",
                 mp_context: str = "spawn",
                 kind: str | None = None,
                 shard_states: list[dict] | None = None,
                 retired: list[dict] | None = None):
        if num_shards < 1:
            raise ServiceError(f"need >= 1 shard, got {num_shards}")
        if statistic not in ("quantile", "frequency", "distinct"):
            raise ServiceError(f"unknown statistic {statistic!r}")
        if kind is not None and kind == default_kind_for(statistic):
            kind = None
        if kind is not None:
            caps = estimator_capabilities(kind)
            if caps.statistic != statistic:
                raise ServiceError(
                    f"estimator kind {kind!r} serves statistic "
                    f"{caps.statistic!r}, not {statistic!r}")
            if not caps.mergeable:
                raise ServiceError(
                    f"estimator kind {kind!r} is not mergeable; the "
                    "sharded pools need merge-on-query")
        if not 0.0 < eps < 1.0:
            raise ServiceError(f"eps must be in (0, 1), got {eps}")
        if not isinstance(backend, str):
            raise ServiceError(
                "the net executor ships the backend name to worker "
                "processes; pass a registered backend name, not an object")
        if fault_plan is not None and backend != "gpu":
            raise ServiceError(
                "fault injection targets the simulated GPU; "
                f"backend is {backend!r}")
        pol = policies if policies is not None else DEFAULT_POLICIES
        if not isinstance(pol, ServicePolicies):
            raise ServiceError(
                f"policies must be a ServicePolicies, got {pol!r}")
        self.policies = pol
        if snapshot_every is None:
            snapshot_every = pol.snapshot_every
        if max_restarts is None:
            max_restarts = pol.max_restarts
        if breaker_failure_threshold is None:
            breaker_failure_threshold = pol.breaker_failure_threshold
        if breaker_cooldown_batches is None:
            breaker_cooldown_batches = pol.breaker_cooldown_batches
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}")
        if snapshot_every < 1:
            raise ServiceError(
                f"snapshot_every must be >= 1, got {snapshot_every}")
        if shard_states is not None and len(shard_states) != num_shards:
            raise ServiceError(
                f"got {len(shard_states)} shard states for "
                f"{num_shards} shards")
        self.statistic = statistic
        self.kind = kind
        self.eps = float(eps)
        self.num_shards = int(num_shards)
        self.partitioner = (partitioner if partitioner is not None
                            else default_partitioner(statistic, num_shards))
        if statistic == "frequency" and not hasattr(
                self.partitioner, "shard_of"):
            raise ServiceError(
                "frequency sharding needs a value-routing partitioner")
        self._backend_kind = backend
        self._window_size_arg = (int(window_size) if window_size is not None
                                 else None)
        self._stream_length_hint = int(stream_length_hint)
        self.fault_plan = fault_plan
        self.net_fault_plan = net_fault_plan
        self.retry = retry if retry is not None else pol.retry
        self._breaker_config = (int(breaker_failure_threshold),
                                int(breaker_cooldown_batches))
        self.snapshot_every = int(snapshot_every)
        self.max_restarts = int(max_restarts)
        self.retired = [dict(state) for state in (retired or [])]
        self._ctx = multiprocessing.get_context(mp_context)
        #: pool identity: hellos must present it, so a stray dialer (or
        #: a worker from a previous pool on a recycled port) is refused.
        self._token = uuid.uuid4().hex
        self._injector = (NetFaultInjector(net_fault_plan)
                          if net_fault_plan is not None else None)
        self._listener = Listener(host, 0, injector=self._injector)
        self._host = host
        self.metrics = ServiceMetrics(
            shards=[ShardMetrics(i) for i in range(self.num_shards)])
        self._closed = False
        #: survivor rotation for non-value-routed takeover traffic.
        self._reroute_cursor = 0
        self._links = [_NetLink(shard_id)
                       for shard_id in range(self.num_shards)]
        if shard_states is not None:
            for link, state in zip(self._links, shard_states):
                link.snap = state
        self._finalizer = weakref.finalize(
            self, _release_net_links, self._links, self._listener)
        try:
            for link in self._links:
                self._spawn(link)
            for link in self._links:
                self._await_attach(link)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _worker_config(self, link: _NetLink) -> dict:
        pol = self.policies
        return {"statistic": self.statistic, "eps": self._shard_eps,
                "kind": self.kind,
                "backend": self._backend_kind,
                "window_size": self._window_size_arg,
                "length_hint": self._shard_hint,
                "fault_plan": self.fault_plan,
                "retry": self.retry,
                "breaker": self._breaker_config,
                "snapshot": link.snap,
                "applied": link.snap_seq,
                "heartbeat": pol.heartbeat_interval,
                "io_deadline": pol.io_deadline,
                "connect_timeout": pol.connect_timeout,
                "reconnect": pol.reconnect}

    def _spawn(self, link: _NetLink) -> None:
        proc = self._ctx.Process(
            target=_net_worker_main,
            args=(link.shard_id, self._listener.address[0],
                  self._listener.address[1], self._token,
                  self._worker_config(link)),
            name=f"repro-net-shard-{link.shard_id}", daemon=True)
        proc.start()
        link.proc = proc
        link.proc_sessions = 0

    def _pump_listener(self) -> None:
        """Attach any pending worker (re)connections to their links."""
        while True:
            chan = self._listener.accept(0.0)
            if chan is None:
                return
            try:
                hello = chan.recv(timeout=self.policies.io_deadline)
            except (ChannelClosed, ChannelTimeout):
                chan.close()
                continue
            self._attach(chan, hello)

    def _attach(self, chan: FrameChannel, hello) -> None:
        if not (isinstance(hello, tuple) and len(hello) == 5
                and hello[0] == "hello"):
            chan.close()
            return
        _, shard_id, token, applied, window_size = hello
        if token != self._token or not 0 <= shard_id < self.num_shards:
            chan.close()
            return
        link = self._links[shard_id]
        if link.taken_over or link.failed is not None:
            chan.close()
            return
        if link.chan is not None:
            link.chan.close()
        link.chan = chan
        link.window_size = int(window_size)
        link.proc_sessions += 1
        if link.proc_sessions > 1:
            self.metrics.shards[shard_id].reconnects += 1
        # Every fresh connection resumes from the replay log; for the
        # first connection of a fresh pool the log is simply empty.
        link.needs_replay = True
        link.last_recv = time.monotonic()

    def _await_attach(self, link: _NetLink) -> None:
        deadline = time.monotonic() + self.policies.ready_timeout
        while link.chan is None:
            self._pump_listener()
            if link.chan is not None:
                break
            if link.proc is None or not link.proc.is_alive():
                raise ServiceError(
                    f"shard {link.shard_id} worker exited during startup "
                    f"with code "
                    f"{link.proc.exitcode if link.proc else None}")
            if time.monotonic() > deadline:  # pragma: no cover
                raise ServiceError(
                    f"shard {link.shard_id} worker did not dial in within "
                    f"{self.policies.ready_timeout:.0f}s")
            time.sleep(0.005)

    def _cleanup_worker(self, link: _NetLink) -> None:
        if link.chan is not None:
            link.chan.close()
            link.chan = None
        if link.proc is not None:
            if link.proc.is_alive():
                link.proc.terminate()
            link.proc.join(timeout=10.0)
        link.proc = None

    # ------------------------------------------------------------------
    # replay / recovery
    # ------------------------------------------------------------------
    def _replay(self, link: _NetLink) -> None:
        """Feed the replay log to a freshly attached connection."""
        link.needs_replay = False
        link.pending.clear()
        link.acked = link.snap_seq
        shard = self.metrics.shards[link.shard_id]
        for seq, kind, arr in list(link.replay):
            if kind == "batch":
                shard.replayed_batches += 1
            self._transmit(link, seq, kind, arr, trace=False)

    def _restart(self, link: _NetLink, cause) -> None:
        """Supervised respawn from the last snapshot (no replay yet).

        Raises :class:`ShardFailedError` once the restart budget is
        exhausted — *without* mutating loss accounting, so the caller
        can still choose takeover over permanent failure.
        """
        shard = self.metrics.shards[link.shard_id]
        self._cleanup_worker(link)
        if shard.restarts >= self.max_restarts:
            exc = ShardFailedError(
                link.shard_id,
                f"shard {link.shard_id} worker died and the restart "
                f"budget ({self.max_restarts}) is exhausted")
            if isinstance(cause, BaseException):
                exc.__cause__ = cause
            raise exc
        shard.restarts += 1
        link.results.clear()
        link.acked = link.snap_seq
        link.acks_since_snap = 0
        link.needs_replay = False
        self._spawn(link)
        self._await_attach(link)

    def _restart_and_replay(self, link: _NetLink, cause) -> None:
        while True:
            self._restart(link, cause)
            try:
                self._replay(link)
                return
            except _WorkerDied as died:  # died again mid-replay
                cause = died.cause
                shard = self.metrics.shards[link.shard_id]
                shard.failures += 1
                shard.last_error = repr(cause)

    def _recover(self, link: _NetLink, cause) -> bool:
        """Bring the shard back after a link failure.

        Escalation ladder: wait for the worker to re-dial (it keeps its
        miner state, so resuming costs one replay of the unacked
        suffix) -> supervised restart from the last snapshot -> take
        over the shard's keyspace -> permanent failure.  Returns True
        if the shard is live again, False if it was taken over (the
        caller must not touch the link further); raises
        :class:`ShardFailedError` on permanent failure.
        """
        shard = self.metrics.shards[link.shard_id]
        shard.failures += 1
        shard.last_error = repr(cause)
        if link.chan is not None:
            link.chan.close()
            link.chan = None
        deadline = time.monotonic() + self.policies.reconnect_deadline
        while time.monotonic() < deadline:
            self._pump_listener()
            if link.chan is not None:
                try:
                    self._replay(link)
                    return True
                except _WorkerDied as died:
                    cause = died.cause
                    shard.last_error = repr(cause)
                    if link.chan is not None:
                        link.chan.close()
                        link.chan = None
                    continue
            if link.proc is None or not link.proc.is_alive():
                break  # nobody left to re-dial; go supervise
            time.sleep(0.01)
        try:
            self._restart_and_replay(link, cause)
            return True
        except ShardFailedError as exc:
            survivors = [other for other in self._links
                         if other is not link and not other.taken_over
                         and other.failed is None]
            if self.policies.takeover and survivors:
                self._take_over(link, exc)
                return False
            shard.healthy = False
            shard.lost_elements += sum(link.pending.values())
            link.failed = exc
            raise

    def _take_over(self, link: _NetLink, cause) -> None:
        """Reassign a dead shard's keyspace to the survivors.

        The last snapshot's estimator becomes a ghost (its history joins
        every future merge); the snapshot's buffered elements plus the
        replay log's batches — everything accepted but not yet in that
        estimator — are re-routed to surviving shards.  No acknowledged
        element is lost; the bit-identical guarantee degrades to the
        ordinary merge bounds.
        """
        shard = self.metrics.shards[link.shard_id]
        link.taken_over = True
        link.failed = None
        shard.taken_over = True
        shard.healthy = False
        shard.last_error = repr(cause)
        self._cleanup_worker(link)
        carry: list[np.ndarray] = []
        if link.snap is not None:
            miner_state = link.snap["miner"]
            estimator_state = dict(miner_state["estimator"])
            self.retired.append(estimator_state)
            buffered = list(miner_state.get("buffer", []))
            for window in miner_state.get("pending_windows", []):
                buffered.extend(window)
            if buffered:
                carry.append(np.asarray(buffered, dtype=np.float32))
        carry.extend(arr for _, kind, arr in link.replay if kind == "batch")
        link.replay = []
        link.pending.clear()
        link.results.clear()
        link.snap = None
        if hasattr(self.partitioner, "mark_dead"):
            self.partitioner.mark_dead(link.shard_id)
        col = collector()
        if col.enabled:
            col.record("service.takeover", 0.0, shard=link.shard_id,
                       carried=int(sum(arr.size for arr in carry)),
                       survivors=len(self._live_links()))
        for arr in carry:
            self._reroute(arr)

    def _reroute(self, values: np.ndarray) -> None:
        """Dispatch elements that belonged to a taken-over shard."""
        arr = np.ascontiguousarray(
            np.asarray(values, dtype=np.float32).ravel())
        if arr.size == 0:
            return
        alive = [other for other in self._links
                 if not other.taken_over and other.failed is None]
        if not alive:
            raise ShardFailedError(
                -1, "every shard is failed or taken over")
        if self.statistic == "frequency":
            if hasattr(self.partitioner, "mark_dead"):
                # The partitioner already routes around dead shards:
                # re-split and dispatch normally.
                parts = self.partitioner.split(arr)
                for shard_id, part in enumerate(parts):
                    if part.size == 0:
                        continue
                    target = self._links[shard_id]
                    if target.taken_over or target.failed is not None:
                        self._failover_dispatch(part, alive)
                    else:
                        self._dispatch_link(target, part)
            else:
                self._failover_dispatch(arr, alive)
        else:
            # Order-insensitive statistics: spread over survivors.
            target = alive[self._reroute_cursor % len(alive)]
            self._reroute_cursor += 1
            self._dispatch_link(target, arr)

    def _failover_dispatch(self, arr: np.ndarray, alive: list) -> None:
        """Value-affine routing over the survivor list (plain-hash
        partitioners cannot re-route internally, so the pool hashes the
        values onto the alive set itself — deterministically)."""
        seed = int(getattr(self.partitioner, "seed", 1)) + 7919
        slots = hash_values(arr, seed) * len(alive)
        idx = np.minimum(slots.astype(np.int64), len(alive) - 1)
        for i, target in enumerate(alive):
            part = arr[idx == i]
            if part.size:
                self._dispatch_link(target, part)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _fresh_seq(self, link: _NetLink) -> int:
        link.next_seq += 1
        return link.next_seq

    def _transmit(self, link: _NetLink, seq: int, kind: str,
                  arr: np.ndarray | None, trace: bool) -> None:
        if link.chan is None:
            raise _WorkerDied(RuntimeError(
                f"shard {link.shard_id} has no connection"))
        shard = self.metrics.shards[link.shard_id]
        began = time.perf_counter()
        if kind == "flush":
            message = ("flush", seq, trace)
            link.pending[seq] = 0
        else:
            message = ("batch", seq, arr, trace)
            link.pending[seq] = int(arr.size)
        try:
            link.chan.send(message, timeout=self.policies.io_deadline)
        except ChannelTimeout as exc:
            shard.deadline_timeouts += 1
            raise _WorkerDied(exc) from exc
        except ChannelClosed as exc:
            raise _WorkerDied(exc) from exc
        if kind == "batch":
            shard.net_batches += 1
        shard.transport_seconds += time.perf_counter() - began

    def _wait_one_message(self, link: _NetLink, timeout: float) -> bool:
        """Receive and apply one worker frame; detect a dead link."""
        self._pump_listener()
        if link.needs_replay and link.chan is not None:
            self._replay(link)
        if link.chan is None:
            raise _WorkerDied(RuntimeError(
                f"shard {link.shard_id} has no connection"))
        try:
            # A zero deadline would expire before the socket is read even
            # once; the floor lets an already-arrived frame be drained.
            message = link.chan.recv(timeout=max(timeout, 0.002))
        except ChannelTimeout:
            if link.proc is None or not link.proc.is_alive():
                raise _WorkerDied(RuntimeError(
                    f"shard {link.shard_id} worker exited with code "
                    f"{link.proc.exitcode if link.proc else None}"))
            idle = time.monotonic() - max(link.last_recv, link.wait_anchor)
            if idle > self.policies.liveness_timeout:
                self.metrics.shards[link.shard_id].deadline_timeouts += 1
                raise _WorkerDied(RuntimeError(
                    f"shard {link.shard_id} silent for {idle:.1f}s "
                    f"(liveness timeout "
                    f"{self.policies.liveness_timeout:.1f}s)"))
            return False
        except ChannelClosed as exc:
            raise _WorkerDied(exc) from exc
        link.last_recv = time.monotonic()
        self._apply_message(link, message)
        return True

    def _apply_message(self, link: _NetLink, message) -> None:
        kind = message[0]
        if kind == "ack":
            self._apply_ack(link, message)
        elif kind == "result":
            link.results[message[1]] = message[2]
        elif kind == "hb":
            pass  # liveness only; last_recv is already refreshed
        elif kind == "error":
            # The guard escalated (no fallback + persistent faults):
            # the worker is alive but the shard cannot make progress.
            _, seq, detail = message
            link.pending.pop(seq, None)
            link.acked = max(link.acked, seq)
            shard = self.metrics.shards[link.shard_id]
            shard.healthy = False
            shard.last_error = detail
            link.failed = ShardFailedError(
                link.shard_id, f"shard {link.shard_id}: {detail}")
        elif kind == "fatal":
            raise _WorkerDied(RuntimeError(message[1]))

    def _apply_ack(self, link: _NetLink, message) -> None:
        _, seq, is_batch, elements, busy, delta, spans = message
        link.pending.pop(seq, None)
        link.acked = max(link.acked, seq)
        link.acks_since_snap += 1
        if seq <= link.counted or seq in link.counted_extra:
            return  # replayed work: already accounted before the loss
        if seq == link.counted + 1:
            link.counted = seq
            while link.counted + 1 in link.counted_extra:
                link.counted_extra.discard(link.counted + 1)
                link.counted += 1
        else:
            link.counted_extra.add(seq)
        shard = self.metrics.shards[link.shard_id]
        if is_batch:
            shard.record_batch(elements, busy)
        else:
            shard.update_seconds += busy
        shard.faults += delta["faults"]
        shard.retries += delta["retries"]
        shard.degraded_batches += delta["degraded_batches"]
        shard.breaker_state = delta["breaker_state"]
        if delta["last_error"]:
            shard.last_error = delta["last_error"]
        if spans:
            col = collector()
            if col.enabled:
                for name, wall, count, attrs in spans:
                    attrs = {k: v for k, v in attrs.items()
                             if k not in ("shard", "count")}
                    col.record(name, wall, shard=link.shard_id,
                               count=count, **attrs)

    def _pump_until(self, link: _NetLink, predicate,
                    deadline: float | None = None) -> bool:
        """Pump frames until ``predicate()``; False on deadline expiry."""
        while not predicate():
            if link.failed is not None:
                raise link.failed
            if deadline is not None and time.monotonic() > deadline:
                return False
            self._wait_one_message(link, 0.05)
        return True

    def _settle(self, link: _NetLink) -> None:
        """Block until every sent batch/flush of this shard is acked
        (or the shard is taken over — then there is nothing to await)."""
        while not link.taken_over:
            try:
                self._pump_until(link, lambda: link.acked >= link.sent)
                return
            except _WorkerDied as died:
                if not self._recover(link, died.cause):
                    return  # taken over; pending was re-routed

    def _request(self, link: _NetLink, command: str):
        """Settled synchronous round-trip (state/snapshot gathers).

        Requests ride their own id space and are only issued on a
        settled link, so they can always be re-issued fresh after a
        reconnect.  A request frame swallowed by injected reordering is
        retried after ``io_deadline`` (the worker heartbeats, so
        liveness alone would not notice).  If the shard is taken over
        mid-request, an empty state is returned — its history already
        moved to ``retired``.
        """
        with link.lock:
            if link.failed is not None:
                raise link.failed
            link.wait_anchor = time.monotonic()
            link.results.clear()
            self._settle(link)
            while not link.taken_over:
                rid = link.next_req = link.next_req + 1
                try:
                    if link.chan is None:
                        raise _WorkerDied(RuntimeError(
                            f"shard {link.shard_id} has no connection"))
                    link.chan.send((command, rid),
                                   timeout=self.policies.io_deadline)
                    deadline = (time.monotonic()
                                + self.policies.io_deadline)
                    if self._pump_until(link, lambda: rid in link.results,
                                        deadline):
                        return link.results.pop(rid)
                    # Deadline passed with a live worker: the request
                    # frame was lost; re-issue under a fresh id.
                    self.metrics.shards[link.shard_id].deadline_timeouts \
                        += 1
                except (ChannelClosed, ChannelTimeout) as exc:
                    if not self._recover(link, exc):
                        break
                    self._settle(link)
                except _WorkerDied as died:
                    if not self._recover(link, died.cause):
                        break
                    self._settle(link)
            return self._empty_request_payload(command)

    def _empty_request_payload(self, command: str):
        """What a gather sees for a shard taken over mid-request."""
        if command == "snapshot":
            return self._fresh_miner_state()
        state = self._fresh_miner_state()
        return {"estimator": state["estimator"], "processed": 0,
                "buffered": 0,
                "report": {"backend": self._backend_kind,
                           "statistic": self.statistic, "elements": 0,
                           "windows": 0, "wall": {}, "modelled": {}}}

    def _maybe_snapshot(self, link: _NetLink) -> None:
        """Cut an internal restart point; truncate the replay log."""
        if link.taken_over or link.acks_since_snap < self.snapshot_every:
            return
        state = self._request(link, "snapshot")
        if link.taken_over:
            return  # the takeover raced the request; keep its ghost
        link.snap = {"miner": state}
        link.snap_seq = link.sent
        link.replay = [entry for entry in link.replay
                       if entry[0] > link.snap_seq]
        link.acks_since_snap = 0

    # ------------------------------------------------------------------
    # ingestion (the ShardedMiner surface)
    # ------------------------------------------------------------------
    def ingest(self, chunk: np.ndarray | list[float]) -> None:
        """Route one chunk across the worker pool (synchronous path)."""
        parts = self.partitioner.split(chunk)
        for shard_id, part in enumerate(parts):
            self.dispatch(shard_id, part)
        self.metrics.ingested += sum(int(p.size) for p in parts)

    def dispatch(self, shard_id: int, values: np.ndarray) -> None:
        """Send one pre-routed batch to a shard's worker (pipelined)."""
        arr = np.ascontiguousarray(
            np.asarray(values, dtype=np.float32).ravel())
        if arr.size == 0:
            return
        link = self._links[shard_id]
        if link.taken_over:
            self._reroute(arr)
            return
        if link.failed is not None:
            raise link.failed
        self._dispatch_link(link, arr)

    def _dispatch_link(self, link: _NetLink, arr: np.ndarray) -> None:
        with link.lock:
            if link.failed is not None:
                raise link.failed
            if link.taken_over:
                self._reroute(arr)
                return
            link.wait_anchor = time.monotonic()
            # Fold in any ready acks (and absorb pending re-dials).
            try:
                while self._wait_one_message(link, 0.0):
                    pass
            except _WorkerDied as died:
                if not self._recover(link, died.cause):
                    self._reroute(arr)
                    return
            # Backpressure: bound the unacknowledged window.
            while len(link.pending) >= self.policies.max_inflight_batches:
                try:
                    self._wait_one_message(link, 0.05)
                except _WorkerDied as died:
                    if not self._recover(link, died.cause):
                        self._reroute(arr)
                        return
            seq = self._fresh_seq(link)
            link.replay.append((seq, "batch", arr))
            link.sent = seq
            try:
                self._transmit(link, seq, "batch", arr,
                               trace=collector().enabled)
            except _WorkerDied as died:
                # The batch is already in the replay log: a recovery
                # re-sends it, a takeover re-routes it — either way it
                # is owned downstream, so don't re-route it here too.
                self._recover(link, died.cause)
                return
            self._maybe_snapshot(link)

    def drain(self) -> None:
        """Flush every worker's partial batch and wait for the acks.

        Flushes go to *all* live shards first, then are awaited — the
        shards drain concurrently.  If a settle triggers a takeover,
        the re-routed elements landed on survivors *after* their flush,
        so the round is repeated until a full round completes with no
        new takeover.
        """
        while True:
            taken_before = sum(
                1 for link in self._links if link.taken_over)
            for link in self._links:
                if link.taken_over:
                    continue
                with link.lock:
                    if link.failed is not None:
                        raise link.failed
                    link.wait_anchor = time.monotonic()
                    seq = self._fresh_seq(link)
                    link.replay.append((seq, "flush", None))
                    link.sent = seq
                    try:
                        self._transmit(link, seq, "flush", None,
                                       trace=collector().enabled)
                    except _WorkerDied as died:
                        self._recover(link, died.cause)
            for link in self._links:
                if link.taken_over:
                    continue
                with link.lock:
                    if link.failed is not None:
                        raise link.failed
                    link.wait_anchor = time.monotonic()
                    self._settle(link)
                    self._maybe_snapshot(link)
            if sum(1 for link in self._links
                   if link.taken_over) == taken_before:
                return

    # ------------------------------------------------------------------
    # checkpoint/restore (same "sharded-miner" v1 format)
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, state: dict, backend: str | None = None,
                      **kwargs) -> "NetShardedMiner":
        """Rebuild a worker pool from a ``sharded-miner`` v1 snapshot."""
        if state.get("kind") != "sharded-miner" or state.get("version") != 1:
            raise ServiceError(
                f"not a v1 sharded-miner state: {state.get('kind')!r} "
                f"v{state.get('version')!r}")
        window_size = state.get("window_size")
        shards = state["shards"]
        if "partitioner" not in kwargs:
            kwargs["partitioner"] = partitioner_from_state(
                state["partitioner"])
        pool = cls(state["statistic"], eps=float(state["eps"]),
                   num_shards=int(state["num_shards"]),
                   backend=backend if backend is not None
                   else state["backend"],
                   window_size=(int(window_size) if window_size is not None
                                else None),
                   stream_length_hint=int(state["stream_length_hint"]),
                   kind=state.get("estimator_kind"),
                   shard_states=[{"miner": s["miner"]} for s in shards],
                   retired=state.get("retired"),
                   **kwargs)
        pool.partitioner.restore_state(state["partitioner"])
        pool.metrics.ingested = int(state["ingested"])
        for shard, shard_state in zip(pool.metrics.shards, shards):
            shard.elements = int(shard_state.get("elements", 0))
            shard.batches = int(shard_state.get("batches", 0))
        return pool

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers and close every socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        for link in self._links:
            with link.lock:
                if (link.chan is not None and link.failed is None
                        and not link.taken_over):
                    rid = link.next_req = link.next_req + 1
                    try:
                        link.chan.send(("stop", rid), timeout=1.0)
                    except (ChannelClosed, ChannelTimeout):
                        pass
                if link.proc is not None:
                    link.proc.join(timeout=timeout)
                    if link.proc.is_alive():
                        link.proc.terminate()
                        link.proc.join(timeout=timeout)
                if link.chan is not None:
                    link.chan.close()
                link.proc = link.chan = None
        self._listener.close()

    def _reshard_kwargs(self) -> dict:
        """Constructor extras :meth:`reshard` carries onto the new pool."""
        return {"fault_plan": self.fault_plan, "retry": self.retry,
                "breaker_failure_threshold": self._breaker_config[0],
                "breaker_cooldown_batches": self._breaker_config[1],
                "policies": self.policies,
                "net_fault_plan": self.net_fault_plan,
                "host": self._host,
                "snapshot_every": self.snapshot_every,
                "max_restarts": self.max_restarts}

    def _rebind_finalizer(self) -> None:
        self._finalizer = weakref.finalize(
            self, _release_net_links, self._links, self._listener)
