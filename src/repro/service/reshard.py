"""Elastic resharding: rewrite a pool snapshot for a new shard count.

Changing the shard count of a running pool cannot simply re-route new
tuples — per-shard summaries are *not* splittable in general (a lossy
counting structure cannot be divided between two new homes without
breaking its per-bucket invariants).  What mergeable summaries *do*
guarantee is the other direction: any shard's frozen state can join a
query-time merge forever.  So resharding retires instead of splitting:

1. the pool is drained (so no shard holds buffered elements — the
   windower buffer belongs to a specific element *sequence* and must
   not be re-routed mid-window);
2. every old shard's estimator state is frozen into the snapshot's
   ``retired`` ghost list;
3. ``num_shards`` fresh, empty shard slots are synthesized and the
   partitioner is rebuilt over the new count (same seed for hash
   kinds, so value affinity is preserved within each epoch).

Queries after the migration merge live shards + ghosts:

* **quantiles** — ghost summaries were built at ``eps/2`` and merging
  is lossless; the single query-time prune still adds ``<= eps/2``, so
  the served bound stays ``eps * N`` across the reshard;
* **frequencies** — a value's occurrences partition across the ghost
  and live structures (pre-epoch counts in the ghost, post-epoch counts
  on the new home).  Summing per value never overcounts, and the
  undercount is ``sum(eps * N_i) <= eps * N``;
* **distinct** — KMV sketches union exactly.

The transform is *pure* (snapshot dict in, snapshot dict out), so it
also works offline on checkpoints; the pools' ``reshard()`` methods
wrap it with drain + snapshot + adopt for the live path.
"""

from __future__ import annotations

import math

from ..core.engine import StreamMiner
from ..core.estimators import estimator_from_state
from ..errors import ServiceError
from .sharding import partitioner_from_state

__all__ = ["resharded_snapshot"]


def _require_drained(shard_state: dict, shard_id: int) -> None:
    miner = shard_state["miner"]
    buffered = len(miner.get("buffer", []))
    buffered += sum(len(window) for window in
                    miner.get("pending_windows", []))
    if buffered:
        raise ServiceError(
            f"shard {shard_id} holds {buffered} buffered elements; "
            "drain() the pool before resharding — a windower buffer "
            "belongs to one element sequence and cannot be re-routed")


def resharded_snapshot(state: dict, num_shards: int) -> dict:
    """A ``sharded-miner`` v1 snapshot migrated to ``num_shards`` shards.

    Old shard histories move to the ``retired`` ghost list; fresh empty
    shard states are synthesized at the same per-shard eps; the
    partitioner state is rebuilt over the new count (preserving kind
    and seed).  Raises :class:`ServiceError` if the snapshot is not a
    drained v1 ``sharded-miner`` state.
    """
    if state.get("kind") != "sharded-miner" or state.get("version") != 1:
        raise ServiceError(
            f"not a v1 sharded-miner state: {state.get('kind')!r} "
            f"v{state.get('version')!r}")
    if num_shards < 1:
        raise ServiceError(f"need >= 1 shard, got {num_shards}")
    num_shards = int(num_shards)
    statistic = state["statistic"]
    eps = float(state["eps"])
    estimator_kind = state.get("estimator_kind")
    # Mirror the pool's eps accounting: only the default GK quantile
    # path halves eps for the query-time prune; explicit kinds merge
    # within their family at full eps.
    shard_eps = (eps / 2.0 if statistic == "quantile"
                 and estimator_kind is None else eps)
    hint = int(state["stream_length_hint"])
    shard_hint = max(1, math.ceil(hint / num_shards))
    window_size = state.get("window_size")

    retired = [dict(ghost) for ghost in state.get("retired", [])]
    for shard_id, shard_state in enumerate(state["shards"]):
        _require_drained(shard_state, shard_id)
        est_state = dict(shard_state["miner"]["estimator"])
        # Shards that never processed anything leave no history worth
        # carrying; skipping them keeps repeated reshards from piling
        # up empty ghosts.
        if int(estimator_from_state(est_state).processed) > 0:
            retired.append(est_state)

    partitioner = partitioner_from_state(state["partitioner"])
    new_partitioner = partitioner.with_num_shards(num_shards)

    fresh = []
    for _ in range(num_shards):
        miner = StreamMiner(
            statistic, eps=shard_eps, backend="cpu", mode="history",
            window_size=(int(window_size) if window_size is not None
                         else None),
            stream_length_hint=shard_hint, kind=estimator_kind)
        fresh.append({"miner": miner.snapshot(), "elements": 0,
                      "batches": 0})

    migrated = dict(state)
    migrated["num_shards"] = num_shards
    migrated["partitioner"] = new_partitioner.to_state()
    migrated["shards"] = fresh
    migrated["retired"] = retired
    return migrated
