"""Shared-memory ring buffer for cross-process batch transport.

The multiprocess executor (:mod:`repro.service.mp_executor`) moves
float32 stream batches from the parent into shard worker processes.
Pickling every batch over a pipe would copy each element three times
(serialize, kernel buffer, deserialize); this ring gives the common
case a single copy instead: the parent writes the batch into a
:class:`multiprocessing.shared_memory.SharedMemory` block and sends
only a ``(offset, length)`` descriptor over the pipe, and the worker
maps the same physical pages as a numpy view.

Framing format
--------------
The block is a bare ``capacity * 4`` byte arena interpreted as float32
slots — there are no in-band headers.  All framing travels out-of-band
in the pipe message: ``("shm", offset, length)`` means *length* floats
starting at slot *offset*.  Allocation is FIFO-circular:

* segments are carved off at ``head`` and appended to a live queue;
* the worker acknowledges batches **in send order**, and each ack frees
  the *oldest* live segment — so the free pointer (the first live
  segment's offset) chases ``head`` around the ring exactly like a
  classic SPSC ring buffer;
* a segment that does not fit in the tail gap wraps to slot 0 (the
  skipped gap is implicitly reclaimed when the wrapped segment's
  predecessors are freed).

Only the parent allocates and frees; the worker side is read-only
(:meth:`ShmRing.attach` + :meth:`view`).  The worker must **copy** the
view (``np.array(view)``) before handing it to the engine — the engine
buffers references, and the parent recycles the slots on ack.

Ownership: the creating side unlinks the block in :meth:`close`; an
attached side only detaches.  On Python < 3.13 the resource tracker of
an *attaching* process would unlink the block when that process exits
(even by SIGKILL — the tracker is a separate helper process), yanking
the memory out from under the parent; :meth:`attach` therefore keeps
the mapping out of the tracker entirely.
"""

from __future__ import annotations

from collections import deque
from multiprocessing import shared_memory

import numpy as np

from ..errors import ServiceError

__all__ = ["ShmRing"]

_FLOAT_BYTES = 4


class ShmRing:
    """FIFO-circular float32 arena in POSIX shared memory.

    Parameters
    ----------
    capacity:
        Arena size in float32 elements.
    name:
        Attach to an existing block instead of creating one (worker
        side; see :meth:`attach`).
    """

    def __init__(self, capacity: int, *, name: str | None = None):
        if capacity < 1:
            raise ServiceError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._owner = name is None
        if self._owner:
            self._shm = shared_memory.SharedMemory(
                create=True, size=self.capacity * _FLOAT_BYTES)
        else:
            self._shm = self._attach_untracked(name)
        #: live segments as (offset, length), oldest first (owner only).
        self._live: deque[tuple[int, int]] = deque()
        self._head = 0
        self._closed = False

    @staticmethod
    def _attach_untracked(name: str) -> shared_memory.SharedMemory:
        """Attach without registering with the resource tracker.

        The creator's tracker keeps the block registered (it owns the
        unlink); an attacher must not register it too, or its tracker
        destroys the shared block when the attacher dies — precisely
        the wrong thing during a worker crash the parent wants to
        survive.  Spawned workers share the parent's tracker process,
        so an unregister-after-attach would also erase the *creator's*
        entry; suppressing the registration at attach time is the only
        variant that leaves the creator's bookkeeping intact.
        (Python 3.13 exposes this as ``track=False``.)
        """
        try:  # pragma: no cover - tracker internals vary by version
            from multiprocessing import resource_tracker
            original = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        except Exception:
            return shared_memory.SharedMemory(name=name)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        """Map an existing ring read-only (worker side)."""
        return cls(capacity, name=name)

    @property
    def name(self) -> str:
        """The OS-level block name workers attach by."""
        return self._shm.name

    # ------------------------------------------------------------------
    # allocation (owner side)
    # ------------------------------------------------------------------
    @property
    def live_segments(self) -> int:
        """Segments currently allocated and not yet freed."""
        return len(self._live)

    def try_write(self, arr: np.ndarray) -> tuple[int, int] | None:
        """Copy ``arr`` into a fresh segment; ``None`` when full.

        Returns the ``(offset, length)`` descriptor to ship over the
        pipe.  Allocation keeps ``head`` strictly ahead of the oldest
        live offset while wrapped, so a full ring is always reported as
        ``None`` rather than silently overlapping live data.
        """
        n = int(arr.size)
        if n == 0 or n > self.capacity:
            return None
        if not self._live:
            self._head = 0
            segment = (0, n)
        else:
            tail = self._live[0][0]
            if self._head >= tail:  # live data sits in [tail, head)
                if self._head + n <= self.capacity:
                    segment = (self._head, n)
                elif n < tail:  # wrap; gap [head, capacity) reclaims later
                    segment = (0, n)
                else:
                    return None
            else:  # wrapped: free space is [head, tail)
                if self._head + n < tail:
                    segment = (self._head, n)
                else:
                    return None
        offset, length = segment
        self.view(offset, length)[:] = arr
        self._live.append(segment)
        self._head = offset + length
        return segment

    def free(self, offset: int, length: int) -> None:
        """Release the *oldest* live segment (FIFO ack order)."""
        if not self._live or self._live[0] != (offset, length):
            expected = self._live[0] if self._live else None
            raise ServiceError(
                f"out-of-order ring free: got ({offset}, {length}), "
                f"oldest live segment is {expected}")
        self._live.popleft()
        if not self._live:
            self._head = 0

    def reset(self) -> None:
        """Drop every live segment (after the consumer died)."""
        self._live.clear()
        self._head = 0

    # ------------------------------------------------------------------
    # access (both sides)
    # ------------------------------------------------------------------
    def view(self, offset: int, length: int) -> np.ndarray:
        """A zero-copy float32 view of one segment."""
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise ServiceError(
                f"segment ({offset}, {length}) outside ring of "
                f"{self.capacity} elements")
        return np.ndarray((length,), dtype=np.float32,
                          buffer=self._shm.buf,
                          offset=offset * _FLOAT_BYTES)

    def close(self) -> None:
        """Detach; the creating side also destroys the block."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
