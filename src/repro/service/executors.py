"""Executor registry: where do the shards run?

Mirrors the sorting-backend registry (:mod:`repro.backends`): a small
name -> factory table that is the single construction point for the
service stack, so the runner, the CLI, benchmarks, and tests all build
services the same way and a new executor (NUMA-pinned pools, one GPU
per worker, remote shards) plugs in by registering a factory.

Built-in executors:

``inline``
    :class:`ShardedMiner` behind a synchronous adapter
    (:class:`InlineService`) that speaks the :class:`StreamService`
    coroutine surface — the zero-concurrency baseline every
    equivalence test compares against.
``async``
    :class:`StreamService` over an in-process :class:`ShardedMiner`:
    bounded queues, coalescing, thread-dispatched shards (the GIL still
    serialises compute).
``mp``
    :class:`StreamService` over :class:`MpShardedMiner`: one worker
    *process* per shard with shared-memory batch transport — compute
    genuinely parallel across cores.
``net``
    :class:`StreamService` over :class:`NetShardedMiner`: the same
    ack/replay protocol over framed TCP, adding deadlines, heartbeats,
    worker reconnect, and keyspace takeover when a shard dies for good
    (:mod:`repro.service.net_executor`).

Every executor produces **bit-identical answers** over the same stream
(``tests/service/test_mp_equivalence.py``); they differ only in where
the work happens and therefore in throughput.
"""

from __future__ import annotations

import numpy as np

from ..errors import ServiceError
from .async_service import StreamService
from .checkpoint import CheckpointStore
from .metrics import ServiceMetrics
from .mp_executor import MpShardedMiner
from .net_executor import NetShardedMiner
from .sharded import ShardedMiner

__all__ = [
    "InlineService",
    "register_executor",
    "registered_executors",
    "resolve_executor",
]


class InlineService:
    """Synchronous pool behind the :class:`StreamService` surface.

    Runs every ingest and query inline on the caller — no queues, no
    workers, no processes.  The coroutine signatures exist so the demo
    driver and the equivalence tests can swap executors without
    branching; each ``await`` completes immediately.

    Accepts (and ignores) the queueing/shedding knobs of the real
    service: a synchronous pool has no queue to bound and applies
    backpressure trivially by blocking the caller.  A configured
    ``checkpoint_store`` is honoured — :meth:`checkpoint` on demand and
    one final snapshot on a draining :meth:`stop`.
    """

    def __init__(self, miner: ShardedMiner, *,
                 checkpoint_store: CheckpointStore | None = None,
                 **_queue_knobs):
        self.miner = miner
        self.checkpoint_store = checkpoint_store
        self._started = False

    @property
    def metrics(self) -> ServiceMetrics:
        """Live metrics snapshot of the wrapped pool."""
        return self.miner.metrics.snapshot()

    async def start(self) -> None:
        if self._started:
            raise ServiceError("service already started")
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        if not self._started:
            return
        if drain:
            self.miner.drain()
            if self.checkpoint_store is not None:
                self.checkpoint_store.save(self.miner.snapshot())
                self.miner.metrics.checkpoints += 1
        self._started = False

    async def __aenter__(self) -> "InlineService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def ingest(self, chunk: np.ndarray | list[float]) -> int:
        if not self._started:
            raise ServiceError("service not started")
        before = self.miner.metrics.ingested
        self.miner.ingest(chunk)
        return int(self.miner.metrics.ingested - before)

    async def drain(self, flush: bool = True) -> None:
        if not self._started:
            raise ServiceError("service not started")
        if flush:
            self.miner.drain()

    async def checkpoint(self):
        if self.checkpoint_store is None:
            raise ServiceError("no checkpoint store configured")
        path = self.checkpoint_store.save(self.miner.snapshot())
        self.miner.metrics.checkpoints += 1
        return path

    async def quantile(self, phi: float, *, fresh: bool = False) -> float:
        if fresh:
            self.miner.drain()
        return self.miner.quantile(phi)

    async def frequent_items(self, support: float, *,
                             fresh: bool = False) -> list[tuple[float, int]]:
        if fresh:
            self.miner.drain()
        return self.miner.frequent_items(support)

    async def estimate(self, value: float) -> int:
        return self.miner.estimate(value)

    async def distinct(self, *, fresh: bool = False) -> float:
        if fresh:
            self.miner.drain()
        return self.miner.distinct()

    async def answer(self, metric: str, *, fresh: bool = False, **params):
        """Metric-keyed query routing (the continuous-query seam)."""
        if fresh:
            self.miner.drain()
        return self.miner.answer(metric, **params)


def _build_inline(miner_kwargs: dict, service_kwargs: dict) -> InlineService:
    kwargs = dict(service_kwargs)
    kwargs.pop("queue_chunks", None)
    kwargs.pop("shed_capacity", None)
    kwargs.pop("checkpoint_interval", None)
    kwargs.pop("max_restarts", None)
    return InlineService(ShardedMiner(**miner_kwargs), **kwargs)


def _build_async(miner_kwargs: dict, service_kwargs: dict) -> StreamService:
    return StreamService(ShardedMiner(**miner_kwargs), **service_kwargs)


def _build_mp(miner_kwargs: dict, service_kwargs: dict) -> StreamService:
    return StreamService(MpShardedMiner(**miner_kwargs), **service_kwargs)


def _build_net(miner_kwargs: dict, service_kwargs: dict) -> StreamService:
    return StreamService(NetShardedMiner(**miner_kwargs), **service_kwargs)


_EXECUTORS: dict[str, object] = {}


def register_executor(name: str, factory, *, replace: bool = False) -> None:
    """Register ``factory(miner_kwargs, service_kwargs) -> service``.

    The returned object must speak the :class:`StreamService` coroutine
    surface (``start/stop/ingest/drain`` + the query methods) and expose
    the pool as ``.miner``.
    """
    if name in _EXECUTORS and not replace:
        raise ServiceError(f"executor {name!r} already registered")
    _EXECUTORS[name] = factory


def registered_executors() -> tuple[str, ...]:
    """Sorted names the ``--executor`` flag accepts."""
    return tuple(sorted(_EXECUTORS))


def resolve_executor(name: str):
    """The factory registered under ``name``."""
    try:
        return _EXECUTORS[name]
    except KeyError:
        raise ServiceError(
            f"unknown executor {name!r}; registered executors: "
            f"{', '.join(registered_executors())}") from None


register_executor("inline", _build_inline)
register_executor("async", _build_async)
register_executor("mp", _build_mp)
register_executor("net", _build_net)
