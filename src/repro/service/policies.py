"""One tunable home for every executor's resilience policy.

Retry backoff, circuit-breaker thresholds, snapshot cadence, restart
budgets, and the network executor's deadline/heartbeat/reconnect knobs
used to live as scattered constants across
:mod:`repro.service.resilience` and :mod:`repro.service.mp_executor`.
:class:`ServicePolicies` consolidates them into a single frozen
dataclass that the in-process, multiprocess, and network pools all
consume, and that ``repro serve`` exposes as flags — one place to tune,
one object to thread through.

The dataclass is deliberately *policy only*: it carries numbers, not
behaviour.  Mechanisms stay where they were (:class:`RetryPolicy` and
:class:`CircuitBreaker` in :mod:`~repro.service.resilience`, the
ack/replay protocol in the executors); the policies object just decides
how hard each mechanism tries before giving up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ServiceError
from .resilience import RetryPolicy

__all__ = ["DEFAULT_POLICIES", "ServicePolicies"]

#: batches at or below this many elements skip the shared-memory ring
#: and ride the pipe directly (mp executor's transport cutover).
SMALL_BATCH_ELEMENTS = 256

#: acks between internal worker snapshots (bounds the replay log).
SNAPSHOT_EVERY = 64

#: seconds a freshly spawned worker gets to come up before the pool
#: declares the start failed.
READY_TIMEOUT = 120.0


def _default_reconnect() -> RetryPolicy:
    # Jittered exponential backoff for a worker redialing its parent:
    # network-scale delays (tens to hundreds of milliseconds), unlike
    # the microsecond-scale dispatch retry tuned for the simulator.
    return RetryPolicy(max_attempts=10, base_delay=0.05, multiplier=2.0,
                       max_delay=0.5, jitter=0.5)


@dataclass(frozen=True)
class ServicePolicies:
    """Every executor tuning knob, in one frozen bundle.

    Shared by all executors
    -----------------------
    retry:
        Backoff policy for transiently faulted dispatch batches (the
        :class:`~repro.service.resilience.ShardGuard` input).
    breaker_failure_threshold / breaker_cooldown_batches:
        Circuit-breaker tuning (see
        :class:`~repro.service.resilience.CircuitBreaker`).
    max_restarts:
        Worker deaths tolerated per shard before the shard is declared
        permanently failed (mp) or its keyspace is taken over (net).
    snapshot_every:
        Acks between internal worker snapshots; bounds both the replay
        log and the data at risk on a worker death.
    small_batch_elements:
        mp transport cutover: batches at or below this size ride the
        pipe instead of the shared-memory ring.
    ready_timeout:
        Seconds a spawned worker gets to report ready/hello.

    Network executor only
    ---------------------
    heartbeat_interval:
        Seconds between worker heartbeats while idle.
    liveness_timeout:
        Parent-side silence budget: no frame from a worker for this
        many seconds (while the parent is actively waiting on it)
        declares the connection dead.  Must exceed the worst single
        batch compute time — a busy worker cannot heartbeat mid-sort.
    io_deadline:
        Per-connection deadline on a single framed send or request
        round-trip; a blocked socket past this is a dead link, not a
        slow one.
    connect_timeout:
        Worker-side dial timeout per attempt.
    reconnect:
        Worker-side jittered backoff between redial attempts after a
        connection loss (a :class:`RetryPolicy`, reused as pure
        backoff schedule).
    reconnect_deadline:
        Parent-side window to wait for a live worker to redial before
        escalating to a supervised restart.
    max_inflight_batches:
        Parent-side backpressure: unacknowledged batches allowed on one
        link before dispatch blocks on acks.
    takeover:
        When a shard exhausts its restart budget, reassign its keyspace
        to the surviving shards from its last snapshot + replay log
        instead of failing the pool (the net executor's degradation
        mode; ``False`` restores the mp executor's fail-stop shape).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 3
    breaker_cooldown_batches: int = 16
    max_restarts: int = 2
    snapshot_every: int = SNAPSHOT_EVERY
    small_batch_elements: int = SMALL_BATCH_ELEMENTS
    ready_timeout: float = READY_TIMEOUT
    heartbeat_interval: float = 0.5
    liveness_timeout: float = 15.0
    io_deadline: float = 30.0
    connect_timeout: float = 10.0
    reconnect: RetryPolicy = field(default_factory=_default_reconnect)
    reconnect_deadline: float = 5.0
    max_inflight_batches: int = 64
    takeover: bool = True

    def __post_init__(self) -> None:
        if self.breaker_failure_threshold < 1:
            raise ServiceError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}")
        if self.breaker_cooldown_batches < 1:
            raise ServiceError(
                "breaker_cooldown_batches must be >= 1, got "
                f"{self.breaker_cooldown_batches}")
        if self.max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.snapshot_every < 1:
            raise ServiceError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}")
        if self.small_batch_elements < 0:
            raise ServiceError(
                "small_batch_elements must be >= 0, got "
                f"{self.small_batch_elements}")
        if self.max_inflight_batches < 1:
            raise ServiceError(
                "max_inflight_batches must be >= 1, got "
                f"{self.max_inflight_batches}")
        for name in ("ready_timeout", "heartbeat_interval",
                     "liveness_timeout", "io_deadline", "connect_timeout",
                     "reconnect_deadline"):
            if getattr(self, name) <= 0:
                raise ServiceError(
                    f"{name} must be > 0, got {getattr(self, name)}")

    @property
    def breaker(self) -> tuple[int, int]:
        """Constructor args for a :class:`CircuitBreaker`."""
        return (self.breaker_failure_threshold,
                self.breaker_cooldown_batches)


#: The canonical defaults every pool resolves against when no explicit
#: override is given.
DEFAULT_POLICIES = ServicePolicies()
