"""Synthetic data-stream generators.

The paper's evaluation uses "a random database of 100 million elements"
with 32-bit values.  Real network / finance / sensor traces (the
motivating applications of Section 1) are not redistributable, so this
module provides parameterised synthetic equivalents:

* :func:`uniform_stream` — the paper's benchmark workload;
* :func:`zipf_stream` — skewed item frequencies, the regime where heavy-
  hitter queries are interesting;
* :func:`normal_stream` — smooth value distribution for quantile queries;
* :func:`sorted_stream` / :func:`reversed_stream` — adversarial orders for
  the CPU baselines (sorting networks are data-oblivious);
* :func:`network_trace_stream` — packet-size-like mixture mimicking the
  bimodal shape of internet traffic (many small ACKs, many MTU-sized
  packets);
* :func:`financial_tick_stream` — a geometric random walk of trade
  prices with occasional jumps, for sliding-window quantile demos.

All generators return float32 arrays (the GPU's native precision) and are
deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import StreamError


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def _check_n(n: int) -> None:
    if n <= 0:
        raise StreamError(f"stream length must be positive, got {n}")


def uniform_stream(n: int, low: float = 0.0, high: float = 1000.0,
                   seed: int | None = 0) -> np.ndarray:
    """Uniform random values in ``[low, high)`` (the paper's workload)."""
    _check_n(n)
    if not high > low:
        raise StreamError(f"need high > low, got [{low}, {high})")
    return _rng(seed).uniform(low, high, n).astype(np.float32)


def zipf_stream(n: int, alpha: float = 1.2, universe: int = 10_000,
                seed: int | None = 0) -> np.ndarray:
    """Zipf-distributed item identifiers over ``universe`` distinct values.

    Item ``k`` (1-based) appears with probability proportional to
    ``k**-alpha`` — the classic skew of web/network traffic where
    frequency estimation earns its keep.
    """
    _check_n(n)
    if alpha <= 0:
        raise StreamError(f"alpha must be positive, got {alpha}")
    if universe <= 0:
        raise StreamError(f"universe must be positive, got {universe}")
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    probs = ranks ** -alpha
    probs /= probs.sum()
    return _rng(seed).choice(ranks, size=n, p=probs).astype(np.float32)


def normal_stream(n: int, mean: float = 500.0, std: float = 100.0,
                  seed: int | None = 0) -> np.ndarray:
    """Gaussian values — a smooth distribution for quantile queries."""
    _check_n(n)
    if std <= 0:
        raise StreamError(f"std must be positive, got {std}")
    return _rng(seed).normal(mean, std, n).astype(np.float32)


def sorted_stream(n: int, low: float = 0.0, high: float = 1000.0,
                  seed: int | None = 0) -> np.ndarray:
    """Already-ascending values — a pathological order for quicksort."""
    return np.sort(uniform_stream(n, low, high, seed))


def reversed_stream(n: int, low: float = 0.0, high: float = 1000.0,
                    seed: int | None = 0) -> np.ndarray:
    """Descending values — the mirror adversarial order."""
    return sorted_stream(n, low, high, seed)[::-1].copy()


def network_trace_stream(n: int, seed: int | None = 0) -> np.ndarray:
    """Packet sizes drawn from a bimodal internet-like mixture.

    ~40% small control packets (40-80 bytes), ~35% MTU-sized data
    packets (1400-1500 bytes), and a lognormal middle.  Used by the
    heavy-hitter example: the repeated discrete sizes give genuinely
    frequent items.
    """
    _check_n(n)
    rng = _rng(seed)
    kind = rng.choice(3, size=n, p=[0.40, 0.35, 0.25])
    small = rng.integers(40, 81, size=n)
    mtu = rng.integers(1400, 1501, size=n)
    middle = np.clip(rng.lognormal(5.5, 0.8, size=n), 81, 1399).astype(np.int64)
    sizes = np.where(kind == 0, small, np.where(kind == 1, mtu, middle))
    return sizes.astype(np.float32)


def financial_tick_stream(n: int, start_price: float = 100.0,
                          volatility: float = 1e-4,
                          jump_prob: float = 1e-4,
                          seed: int | None = 0) -> np.ndarray:
    """Trade prices following a geometric random walk with rare jumps.

    Used by the sliding-window quantile example (tracking the median and
    tail latching of recent prices), matching the "finance logs" use case
    of the paper's introduction.
    """
    _check_n(n)
    if start_price <= 0:
        raise StreamError(f"start_price must be positive, got {start_price}")
    rng = _rng(seed)
    log_returns = rng.normal(0.0, volatility, n)
    jumps = rng.random(n) < jump_prob
    log_returns[jumps] += rng.normal(0.0, 50 * volatility, int(jumps.sum()))
    prices = start_price * np.exp(np.cumsum(log_returns))
    return prices.astype(np.float32)


GENERATORS = {
    "uniform": uniform_stream,
    "zipf": zipf_stream,
    "normal": normal_stream,
    "sorted": sorted_stream,
    "reversed": reversed_stream,
    "network": network_trace_stream,
    "financial": financial_tick_stream,
}
"""Registry used by the benchmark harness's ``--workload`` switches."""
