"""Window buffering utilities.

Two pieces of machinery used by the engine:

* :class:`ChannelBuffer` — Section 4.1's four-window staging buffer: "we
  buffer four windows of data values and represent each of the windows in
  a color component of the 2D texture".  The engine fills it window by
  window and flushes four-at-a-time to the GPU.
* :class:`SlidingWindowSpec` — configuration of a count-based sliding
  window (fixed or variable width), used by the Section 5.3 estimators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StreamError


class ChannelBuffer:
    """Accumulates up to four equal-sized windows for RGBA channel packing.

    Parameters
    ----------
    window_size:
        The stream-algorithm window size (``1/eps`` for frequency
        estimation, ``W`` for quantiles).

    Notes
    -----
    The final flush of a stream may hold fewer than four windows, and the
    last window may be short; :meth:`drain` returns whatever is pending.
    """

    CAPACITY = 4

    def __init__(self, window_size: int):
        if window_size <= 0:
            raise StreamError(f"window_size must be positive, got {window_size}")
        self.window_size = int(window_size)
        self._pending: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        """Whether four windows are buffered and ready to flush."""
        return len(self._pending) >= self.CAPACITY

    def push(self, window: np.ndarray) -> None:
        """Add one window; raises if the buffer is already full."""
        if self.full:
            raise StreamError("channel buffer already holds four windows")
        window = np.asarray(window, dtype=np.float32).ravel()
        if window.size == 0 or window.size > self.window_size:
            raise StreamError(
                f"window of {window.size} values does not fit window_size "
                f"{self.window_size}")
        self._pending.append(window)

    def drain(self) -> list[np.ndarray]:
        """Return and clear the buffered windows (1 to 4 of them)."""
        pending, self._pending = self._pending, []
        return pending


@dataclass(frozen=True)
class SlidingWindowSpec:
    """Configuration of a count-based sliding window (Section 5.3).

    Parameters
    ----------
    size:
        Number of most recent elements the queries cover.
    variable:
        If true, queries may also ask about any suffix smaller than
        ``size`` (variable-width windows); the estimator must then retain
        enough structure to answer every suffix length.
    """

    size: int
    variable: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise StreamError(f"sliding window size must be positive, got {self.size}")
