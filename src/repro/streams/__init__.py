"""Data-stream substrate: sources, generators and windowing."""

from .io import (DEFAULT_CHUNK, read_binary_stream, read_csv_stream,
                 write_binary_stream, write_csv_stream)
from .load_shedding import (LoadShedder, ShedderStats, bursty_arrivals)
from .generators import (GENERATORS, financial_tick_stream,
                         network_trace_stream, normal_stream,
                         reversed_stream, sorted_stream, uniform_stream,
                         zipf_stream)
from .stream import DataStream
from .windows import ChannelBuffer, SlidingWindowSpec

__all__ = [
    "ChannelBuffer",
    "DataStream",
    "GENERATORS",
    "LoadShedder",
    "read_binary_stream",
    "read_csv_stream",
    "ShedderStats",
    "SlidingWindowSpec",
    "bursty_arrivals",
    "financial_tick_stream",
    "network_trace_stream",
    "normal_stream",
    "reversed_stream",
    "sorted_stream",
    "uniform_stream",
    "write_binary_stream",
    "write_csv_stream",
    "zipf_stream",
]
