"""Load shedding and spilling under bursty arrivals (paper Section 1).

"It can be challenging to satisfy these constraints, especially when
there are irregularities and bursts in the data arrival rates. ... In
such cases, some DSMS resort to load-shedding, i.e. dropping excess data
items.  The other option is to allow spilling of data items to the
disks."  The paper's answer is a faster processor (the GPU); this module
supplies the DSMS-side machinery those sentences describe, so the
examples and benchmarks can show *when* the faster sorter removes the
need to shed.

Time is modelled in ticks: each call to :meth:`LoadShedder.offer`
represents one arrival interval during which the processor can absorb
``capacity_per_tick`` elements.  Two overload policies:

* ``"shed"``  — drop the tick's excess arrivals (within a tick arrival
  order is arbitrary, so for exchangeable streams this behaves like a
  uniform sample and frequency estimates stay usable with support
  adjusted by the observed keep-rate);
* ``"spill"`` — queue the excess (bounded by ``queue_limit``; overflow
  beyond the queue is shed, keeping a uniform random sample of what fits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StreamError


@dataclass
class ShedderStats:
    """Conservation ledger of a :class:`LoadShedder`."""

    offered: int = 0
    processed: int = 0
    shed: int = 0
    max_queue: int = 0

    @property
    def keep_rate(self) -> float:
        """Fraction of offered elements that were (or will be) processed."""
        if self.offered == 0:
            return 1.0
        return 1.0 - self.shed / self.offered


class LoadShedder:
    """Admission control in front of a stream processor.

    Parameters
    ----------
    capacity_per_tick:
        Elements the downstream processor absorbs per arrival interval.
    policy:
        ``"shed"`` or ``"spill"``.
    queue_limit:
        Spill-queue capacity in elements (spill policy only);
        ``None`` = unbounded.
    seed:
        Seed for the random shedding decisions.

    Examples
    --------
    >>> import numpy as np
    >>> shedder = LoadShedder(capacity_per_tick=100, policy="shed", seed=0)
    >>> out = shedder.offer(np.arange(250, dtype=np.float32))
    >>> out.size
    100
    >>> shedder.stats.shed
    150
    """

    def __init__(self, capacity_per_tick: int, policy: str = "shed",
                 queue_limit: int | None = None, seed: int | None = 0):
        if capacity_per_tick <= 0:
            raise StreamError(
                f"capacity_per_tick must be positive, got {capacity_per_tick}")
        if policy not in ("shed", "spill"):
            raise StreamError(f"unknown policy {policy!r}")
        if queue_limit is not None and queue_limit < 0:
            raise StreamError(f"queue_limit must be >= 0, got {queue_limit}")
        self.capacity = int(capacity_per_tick)
        self.policy = policy
        self.queue_limit = queue_limit
        self.stats = ShedderStats()
        self._queue: list[np.ndarray] = []
        self._queued = 0
        self._rng = np.random.default_rng(seed)

    @property
    def queued(self) -> int:
        """Elements currently waiting in the spill queue."""
        return self._queued

    def offer(self, chunk: np.ndarray | list[float]) -> np.ndarray:
        """One arrival tick: admit ``chunk``, return what gets processed.

        Queued elements (spill policy) are served first, FIFO.
        """
        arr = np.asarray(chunk, dtype=np.float32).ravel()
        self.stats.offered += int(arr.size)

        budget = self.capacity
        served: list[np.ndarray] = []
        # drain the spill queue first (FIFO)
        while self._queue and budget > 0:
            head = self._queue[0]
            if head.size <= budget:
                served.append(head)
                budget -= head.size
                self._queued -= head.size
                self._queue.pop(0)
            else:
                served.append(head[:budget])
                self._queue[0] = head[budget:]
                self._queued -= budget
                budget = 0

        if arr.size <= budget:
            served.append(arr)
            budget -= arr.size
        else:
            admitted, excess = arr[:budget], arr[budget:]
            if budget:
                served.append(admitted)
            budget = 0
            self._handle_excess(excess)

        processed = (np.concatenate(served) if served
                     else np.empty(0, dtype=np.float32))
        self.stats.processed += int(processed.size)
        self.stats.max_queue = max(self.stats.max_queue, self._queued)
        return processed

    def _handle_excess(self, excess: np.ndarray) -> None:
        if self.policy == "shed":
            self.stats.shed += int(excess.size)
            return
        room = (excess.size if self.queue_limit is None
                else max(0, self.queue_limit - self._queued))
        if room >= excess.size:
            kept = excess
        else:
            # keep a uniform random sample of what fits; shed the rest
            keep_idx = self._rng.choice(excess.size, size=room,
                                        replace=False)
            keep_idx.sort()
            kept = excess[keep_idx]
            self.stats.shed += int(excess.size - room)
        if kept.size:
            self._queue.append(kept.copy())
            self._queued += int(kept.size)

    def drain(self) -> np.ndarray:
        """Flush the spill queue at end of stream (off-peak catch-up)."""
        if not self._queue:
            return np.empty(0, dtype=np.float32)
        out = np.concatenate(self._queue)
        self._queue = []
        self._queued = 0
        self.stats.processed += int(out.size)
        return out

    def check_conservation(self) -> None:
        """Raise :class:`StreamError` if the element ledger leaks."""
        accounted = self.stats.processed + self.stats.shed + self._queued
        if accounted != self.stats.offered:
            raise StreamError(
                f"ledger leak: offered {self.stats.offered}, accounted "
                f"{accounted}")


def bursty_arrivals(n: int, mean_rate: int, burst_rate: int,
                    burst_fraction: float = 0.1,
                    seed: int | None = 0):
    """Yield per-tick chunk sizes with on/off bursts.

    A fraction ``burst_fraction`` of ticks arrive at ``burst_rate``
    elements/tick, the rest at ``mean_rate`` — the "irregularities and
    bursts in the data arrival rates" of the paper's introduction.
    Yields chunk sizes until ``n`` elements have been produced.
    """
    if mean_rate <= 0 or burst_rate <= 0:
        raise StreamError("rates must be positive")
    if not 0.0 <= burst_fraction <= 1.0:
        raise StreamError(
            f"burst_fraction must be in [0, 1], got {burst_fraction}")
    rng = np.random.default_rng(seed)
    produced = 0
    while produced < n:
        rate = burst_rate if rng.random() < burst_fraction else mean_rate
        size = min(rate, n - produced)
        produced += size
        yield size
