"""File-backed streams.

Real deployments replay captured traces; this module reads and writes
them in the two formats that need no dependencies:

* **raw binary** — little-endian float32, the exact wire format the GPU
  consumes (and the natural dump format for 100M-element traces);
* **CSV / text** — one value per line (or a chosen column), for
  interoperability with logging pipelines.

Both readers yield fixed-size chunks suitable for
:class:`~repro.streams.stream.DataStream`, so a file can be mined
without ever holding it in memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import StreamError

#: Default chunk size for file readers (elements).
DEFAULT_CHUNK = 1 << 16


def write_binary_stream(path: str | Path, values: np.ndarray) -> int:
    """Write ``values`` as little-endian float32; returns bytes written."""
    arr = np.ascontiguousarray(values, dtype="<f4").ravel()
    if arr.size == 0:
        raise StreamError("refusing to write an empty stream")
    data = arr.tobytes()
    Path(path).write_bytes(data)
    return len(data)


def read_binary_stream(path: str | Path,
                       chunk_size: int = DEFAULT_CHUNK) -> Iterator[np.ndarray]:
    """Yield float32 chunks from a raw binary stream file."""
    if chunk_size <= 0:
        raise StreamError(f"chunk_size must be positive, got {chunk_size}")
    path = Path(path)
    if not path.exists():
        raise StreamError(f"no such stream file: {path}")
    if path.stat().st_size % 4:
        raise StreamError(
            f"{path}: size {path.stat().st_size} is not a multiple of 4 "
            "(expected float32 records)")
    with path.open("rb") as handle:
        while True:
            raw = handle.read(chunk_size * 4)
            if not raw:
                return
            yield np.frombuffer(raw, dtype="<f4").copy()


def write_csv_stream(path: str | Path, values: np.ndarray,
                     header: str | None = None) -> None:
    """Write one value per line (optionally with a header line)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise StreamError("refusing to write an empty stream")
    with Path(path).open("w") as handle:
        if header:
            handle.write(header + "\n")
        for value in arr:
            handle.write(f"{value:.9g}\n")


def read_csv_stream(path: str | Path, column: int = 0,
                    delimiter: str = ",", skip_header: bool = False,
                    chunk_size: int = DEFAULT_CHUNK) -> Iterator[np.ndarray]:
    """Yield float32 chunks from a text file, one record per line.

    Parameters
    ----------
    column:
        Zero-based field index when lines have several delimited fields.
    skip_header:
        Skip the first line.
    """
    if chunk_size <= 0:
        raise StreamError(f"chunk_size must be positive, got {chunk_size}")
    path = Path(path)
    if not path.exists():
        raise StreamError(f"no such stream file: {path}")
    buffer: list[float] = []
    with path.open() as handle:
        if skip_header:
            next(handle, None)
        for line_no, line in enumerate(handle, start=2 if skip_header else 1):
            line = line.strip()
            if not line:
                continue
            fields = line.split(delimiter)
            if column >= len(fields):
                raise StreamError(
                    f"{path}:{line_no}: no column {column} in {line!r}")
            try:
                buffer.append(float(fields[column]))
            except ValueError as exc:
                raise StreamError(
                    f"{path}:{line_no}: not a number: "
                    f"{fields[column]!r}") from exc
            if len(buffer) >= chunk_size:
                yield np.array(buffer, dtype=np.float32)
                buffer = []
    if buffer:
        yield np.array(buffer, dtype=np.float32)
