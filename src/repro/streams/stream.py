"""The data-stream abstraction.

Section 3.1: "A data stream is a continuous sequence of data values that
arrive in time."  :class:`DataStream` wraps any iterable of values (or a
generator function) and delivers them in arrival order, either one by one
or in fixed-size windows — the unit at which the paper's window-based
algorithms operate.  Streams are single-pass by construction: once a
value has been consumed it cannot be revisited, which keeps the
estimators honest about their memory footprint.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from ..errors import StreamError


class DataStream:
    """A single-pass sequence of float32 values arriving in order.

    Parameters
    ----------
    source:
        An array, an iterable of arrays/chunks, or a zero-argument
        callable returning either.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.streams import DataStream
    >>> s = DataStream(np.arange(5, dtype=np.float32))
    >>> [w.tolist() for w in s.windows(2)]
    [[0.0, 1.0], [2.0, 3.0], [4.0]]
    """

    def __init__(self, source: np.ndarray | Iterable | Callable[[], Iterable]):
        if callable(source):
            source = source()
        if isinstance(source, np.ndarray):
            if source.ndim != 1:
                raise StreamError(f"stream arrays must be 1-D, got {source.shape}")
            self._chunks: Iterator[np.ndarray] = iter([source])
        else:
            self._chunks = (np.asarray(chunk) for chunk in source)
        self._consumed = 0
        self._exhausted = False
        self._leftover = np.empty(0, dtype=np.float32)

    @property
    def consumed(self) -> int:
        """Number of values delivered so far."""
        return self._consumed

    def _next_chunk(self) -> np.ndarray | None:
        for chunk in self._chunks:
            chunk = np.asarray(chunk, dtype=np.float32).ravel()
            if chunk.size:
                return chunk
        self._exhausted = True
        return None

    def windows(self, window_size: int) -> Iterator[np.ndarray]:
        """Yield consecutive windows of ``window_size`` values.

        The final window may be shorter.  Windows are the unit of work of
        the paper's algorithms (Section 3.2: "a subset of the elements of
        a window are computed and inserted into the summary structure").
        """
        if window_size <= 0:
            raise StreamError(f"window_size must be positive, got {window_size}")
        buffer = [self._leftover] if self._leftover.size else []
        buffered = self._leftover.size
        self._leftover = np.empty(0, dtype=np.float32)
        while True:
            while buffered < window_size:
                chunk = self._next_chunk()
                if chunk is None:
                    break
                buffer.append(chunk)
                buffered += chunk.size
            if buffered == 0:
                return
            data = np.concatenate(buffer) if len(buffer) != 1 else buffer[0]
            if data.size >= window_size:
                window, rest = data[:window_size], data[window_size:]
                buffer = [rest] if rest.size else []
                buffered = rest.size
            else:
                window, buffer, buffered = data, [], 0
            self._consumed += window.size
            yield window
            if buffered == 0 and self._exhausted:
                return

    def __iter__(self) -> Iterator[float]:
        """Iterate value by value (the single-element insertion model)."""
        for window in self.windows(65536):
            # tolist() converts the whole window to Python floats in one C
            # call — far cheaper than a float() per NumPy scalar.
            yield from window.tolist()
