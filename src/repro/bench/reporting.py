"""Plain-text tables for the figure reproductions.

Every benchmark prints the series its figure plots as an aligned text
table (the closest a terminal gets to the paper's graphs) and can render
the same rows as Markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """An aligned text table with a title and a caption."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    caption: str = ""

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(values)

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if self.caption:
            lines.append("")
            lines.append(self.caption)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured Markdown table."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format_cell(v) for v in row) + " |")
        if self.caption:
            lines.append("")
            lines.append(f"*{self.caption}*")
        return "\n".join(lines)

    def column(self, name: str) -> list[Any]:
        """Extract one column by name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]
