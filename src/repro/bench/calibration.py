"""Calibration provenance: the anchor claims behind the cost model.

The performance model has four free parameters (per-pass overhead,
per-sort setup, CPU instructions-per-comparison/IPC, Intel-build
speedup).  They were fixed once against the *anchor claims* the paper
states in prose, and every figure then follows from exact op counts.
This module re-derives each anchor from the current constants so the
test suite can fail if a future change silently drifts the calibration.

Anchors (all from the paper's text):

1. §5 / Fig. 3 — "[our GPU algorithm's] performance is comparable to
   one of the fastest implementations of Quicksort" (Intel build, 8M).
2. §4.5 — "the performance of our algorithm is around 3 times slower
   than optimized CPU-based Quicksort for small values of n (n < 16K)".
3. §1.2/§4.5 — "almost one order of magnitude faster as compared to
   prior GPU-based sorting algorithms".
4. §4.5 — "the GPU requires 6-7 clock cycles to perform one blending
   operation".
5. §4.1 — bus transfers achieve "~800 MBps" and (Fig. 4) are not the
   bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.presets import AGP_8X, GEFORCE_6800_ULTRA
from ..gpu.timing import CPU_MODEL_INTEL, BitonicFragmentProgramModel
from .models import predicted_gpu_sort_time
from .report import Table


@dataclass(frozen=True)
class Anchor:
    """One calibration anchor: the paper's claim and our model's value."""

    name: str
    paper_claim: str
    model_value: float
    low: float
    high: float

    @property
    def holds(self) -> bool:
        """Whether the model value is inside the accepted band."""
        return self.low <= self.model_value <= self.high


def anchors() -> list[Anchor]:
    """Evaluate every anchor against the current model constants."""
    n_large = 1 << 23
    n_small = 1 << 13
    gpu_large = predicted_gpu_sort_time(n_large).total
    gpu_small = predicted_gpu_sort_time(n_small).total
    intel_large = CPU_MODEL_INTEL.time(n_large)
    intel_small = CPU_MODEL_INTEL.time(n_small)
    bitonic_large = BitonicFragmentProgramModel().time(n_large)
    return [
        Anchor("gpu_vs_intel_8m",
               "comparable to Intel quicksort at 8M",
               gpu_large / intel_large, 0.5, 2.0),
        Anchor("gpu_small_n_penalty",
               "~3x slower than optimized CPU below 16K",
               gpu_small / intel_small, 2.0, 8.0),
        Anchor("bitonic_gap_8m",
               "almost an order of magnitude vs prior GPU sort",
               bitonic_large / gpu_large, 8.0, 30.0),
        Anchor("cycles_per_blend",
               "6-7 clock cycles per blending operation",
               GEFORCE_6800_ULTRA.cycles_per_blend, 6.0, 7.0),
        Anchor("bus_bandwidth_mbps",
               "~800 MB/s observed bus bandwidth",
               AGP_8X.effective_bandwidth_bytes / 1e6, 700.0, 900.0),
        Anchor("transfer_fraction_8m",
               "transfer is not the bottleneck (Fig. 4)",
               predicted_gpu_sort_time(n_large).transfer
               / predicted_gpu_sort_time(n_large).sort, 0.0, 0.25),
    ]


def calibration_table() -> Table:
    """The anchor report as a printable table."""
    table = Table(
        title="Calibration anchors (paper claim vs. current model)",
        columns=["anchor", "claim", "model_value", "accepted_low",
                 "accepted_high", "holds"],
        caption="If any row reads False, the model constants drifted "
                "from the paper's stated behaviour.",
    )
    for anchor in anchors():
        table.add_row(anchor.name, anchor.paper_claim, anchor.model_value,
                      anchor.low, anchor.high, anchor.holds)
    return table
