"""Figure-reproduction tables: the renderer and the all-figures runner.

Every benchmark prints the series its figure plots as an aligned text
table (the closest a terminal gets to the paper's graphs) and can render
the same rows as Markdown for EXPERIMENTS.md.  This module holds both
the :class:`Table` renderer and the entry point that regenerates every
figure at once:

Usage::

    python -m repro.bench.report            # all figures, default sizes
    python -m repro.bench.report --fast     # smaller wall-clock workloads
    python -m repro.bench.report --markdown # Markdown tables (EXPERIMENTS.md)

The output is the complete set of data series behind the paper's
Figures 3-7, the Section 5.3 sliding-window study, and the reconstructed
accuracy tables.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """An aligned text table with a title and a caption."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    caption: str = ""

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(values)

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if self.caption:
            lines.append("")
            lines.append(self.caption)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured Markdown table."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format_cell(v) for v in row) + " |")
        if self.caption:
            lines.append("")
            lines.append(f"*{self.caption}*")
        return "\n".join(lines)

    def column(self, name: str) -> list[Any]:
        """Extract one column by name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]


def write_bench_json(area: str, payload: dict,
                     root: str | Path | None = None) -> Path:
    """Append one benchmark run to ``BENCH_<area>.json`` at the repo root.

    The file is a schema-versioned accumulator — each invocation appends
    ``payload`` to its ``runs`` list (creating the file on first use),
    so successive benchmark runs build a comparable history instead of
    overwriting each other.  A corrupt or foreign file is replaced, not
    crashed on.  ``root`` overrides the repo root (tests use tmp dirs).
    Returns the path written.
    """
    base = (Path(root) if root is not None
            else Path(__file__).resolve().parents[3])
    path = base / f"BENCH_{area}.json"
    doc: dict = {"version": 1, "area": area, "runs": []}
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
        if (isinstance(existing, dict) and existing.get("version") == 1
                and isinstance(existing.get("runs"), list)):
            doc["runs"] = existing["runs"]
    except (OSError, json.JSONDecodeError):
        pass
    doc["runs"].append(payload)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
    return path


def build_all(fast: bool = False) -> list[Table]:
    """Build every figure table (fast mode shrinks wall-clock workloads)."""
    # Imported lazily: the harness imports Table from this module, so a
    # module-level import here would cycle.
    from .harness import (accuracy_series, figure3_series, figure4_series,
                          figure5_series, figure6_series, figure7_series,
                          sliding_window_series)
    scale = 1 if fast else 4
    return [
        figure3_series(wall_limit=(1 << 12) * scale),
        figure4_series(),
        figure5_series(run_elements=25_000 * scale),
        figure6_series(run_elements=50_000 * scale),
        figure7_series(run_elements=25_000 * scale),
        sliding_window_series(run_elements=40_000 * scale),
        accuracy_series(run_elements=25_000 * scale),
    ]


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.bench.report``."""
    parser = argparse.ArgumentParser(
        description="Regenerate every figure of the paper's evaluation.")
    parser.add_argument("--fast", action="store_true",
                        help="smaller wall-clock workloads")
    parser.add_argument("--markdown", action="store_true",
                        help="emit Markdown tables instead of plain text")
    args = parser.parse_args(argv)
    for table in build_all(args.fast):
        print(table.render_markdown() if args.markdown else table.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
