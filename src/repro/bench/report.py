"""Figure-reproduction tables: the renderer and the all-figures runner.

Every benchmark prints the series its figure plots as an aligned text
table (the closest a terminal gets to the paper's graphs) and can render
the same rows as Markdown for EXPERIMENTS.md.  This module holds both
the :class:`Table` renderer and the entry point that regenerates every
figure at once:

Usage::

    python -m repro.bench.report            # all figures, default sizes
    python -m repro.bench.report --fast     # smaller wall-clock workloads
    python -m repro.bench.report --markdown # Markdown tables (EXPERIMENTS.md)

The output is the complete set of data series behind the paper's
Figures 3-7, the Section 5.3 sliding-window study, and the reconstructed
accuracy tables.

The module also hosts the **performance regression gate** CI runs over
the committed ``BENCH_<area>.json`` accumulators::

    python -m repro.bench.report --gate net --gate query \\
        --fresh-dir /tmp/bench --noise 0.5

Fresh runs (written by the benchmarks under ``REPRO_BENCH_ROOT``) are
matched against the committed baseline on ``(benchmark, elements)``
and every direction-aware metric (throughputs up, wall seconds down)
must stay inside the noise band — see :func:`gate_area`.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """An aligned text table with a title and a caption."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    caption: str = ""

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(values)

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if self.caption:
            lines.append("")
            lines.append(self.caption)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured Markdown table."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format_cell(v) for v in row) + " |")
        if self.caption:
            lines.append("")
            lines.append(f"*{self.caption}*")
        return "\n".join(lines)

    def column(self, name: str) -> list[Any]:
        """Extract one column by name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]


def write_bench_json(area: str, payload: dict,
                     root: str | Path | None = None) -> Path:
    """Append one benchmark run to ``BENCH_<area>.json`` at the repo root.

    The file is a schema-versioned accumulator — each invocation appends
    ``payload`` to its ``runs`` list (creating the file on first use),
    so successive benchmark runs build a comparable history instead of
    overwriting each other.  A corrupt or foreign file is replaced, not
    crashed on.  ``root`` overrides the repo root; so does the
    ``REPRO_BENCH_ROOT`` environment variable (CI points it at a scratch
    directory so fresh gate runs never touch the committed baselines).
    Returns the path written.
    """
    if root is None:
        root = os.environ.get("REPRO_BENCH_ROOT") or None
    base = (Path(root) if root is not None
            else Path(__file__).resolve().parents[3])
    path = base / f"BENCH_{area}.json"
    doc: dict = {"version": 1, "area": area, "runs": []}
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
        if (isinstance(existing, dict) and existing.get("version") == 1
                and isinstance(existing.get("runs"), list)):
            doc["runs"] = existing["runs"]
    except (OSError, json.JSONDecodeError):
        pass
    doc["runs"].append(payload)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# performance regression gate
# ----------------------------------------------------------------------
#: Metric-name substrings that say which direction is "better".  A
#: numeric field matching neither list is informational and not gated.
_LOWER_IS_BETTER = ("seconds", "latency", "lost", "shed")
_HIGHER_IS_BETTER = ("throughput", "per_s", "per_second", "speedup",
                     "rate", "eps_per")


def _metric_direction(name: str) -> int:
    """-1 when lower is better, +1 when higher is better, 0 to skip."""
    lowered = name.lower()
    if any(tag in lowered for tag in _LOWER_IS_BETTER):
        return -1
    if any(tag in lowered for tag in _HIGHER_IS_BETTER):
        return +1
    return 0


def load_bench_runs(path: str | Path) -> list[dict]:
    """The ``runs`` list of one ``BENCH_<area>.json``, else ``[]``."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    if isinstance(doc, dict) and isinstance(doc.get("runs"), list):
        return [run for run in doc["runs"] if isinstance(run, dict)]
    return []


def _run_key(run: dict) -> tuple:
    """The identity fresh and baseline runs are matched on."""
    return (run.get("benchmark"), run.get("elements"))


#: Fields that identify a series entry (sweep coordinates) in gate
#: output, checked in order; falls back to the entry's index.
_SERIES_LABELS = ("fault_rate", "workers", "shards", "kind")


def _series_label(entry: dict, index: int) -> str:
    for field_name in _SERIES_LABELS:
        if field_name in entry:
            return f"{field_name}={entry[field_name]}"
    return f"#{index}"


def compare_runs(fresh: dict, baseline: dict,
                 noise: float) -> list[tuple[str, float, float, bool]]:
    """Direction-aware comparison of two matched runs.

    Returns ``(metric, fresh_value, baseline_value, ok)`` rows for every
    gated metric.  ``ok`` is False when the fresh value is worse than the
    baseline by more than the fractional ``noise`` band.  Non-numeric
    fields and direction-less metrics are skipped, as are baselines at
    zero (no meaningful ratio).  A nested ``series`` list (a sweep over
    fault rates, worker counts, ...) is compared entry-by-entry when
    both runs sweep the same grid — benchmarks like
    ``fault_rate_overhead`` keep all their timings there, and a gate
    that skipped nested series would silently gate nothing for them.
    """
    rows = []
    for name, base_value in sorted(baseline.items()):
        direction = _metric_direction(name)
        if direction == 0:
            continue
        fresh_value = fresh.get(name)
        if not isinstance(base_value, (int, float)) or \
                not isinstance(fresh_value, (int, float)) or \
                isinstance(base_value, bool) or isinstance(fresh_value, bool):
            continue
        if base_value <= 0:
            continue
        if direction > 0:
            ok = fresh_value >= base_value * (1.0 - noise)
        else:
            ok = fresh_value <= base_value * (1.0 + noise)
        rows.append((name, float(fresh_value), float(base_value), ok))
    fresh_series = fresh.get("series")
    base_series = baseline.get("series")
    if isinstance(fresh_series, list) and isinstance(base_series, list) \
            and len(fresh_series) == len(base_series):
        for index, (fresh_entry, base_entry) in enumerate(
                zip(fresh_series, base_series)):
            if not isinstance(fresh_entry, dict) or \
                    not isinstance(base_entry, dict):
                continue
            label = _series_label(base_entry, index)
            rows.extend((f"series[{label}].{name}", fresh_v, base_v, ok)
                        for name, fresh_v, base_v, ok in compare_runs(
                            fresh_entry, base_entry, noise)
                        # sweep coordinates (fault_rate, workers) are
                        # inputs, not metrics — never gate on them.
                        if name not in _SERIES_LABELS)
    return rows


def gate_area(area: str, fresh_root: str | Path,
              baseline_root: str | Path,
              noise: float = 0.5) -> tuple[bool, list[str]]:
    """Gate one area's fresh runs against its committed baseline.

    Every fresh run is matched to the *latest* committed run with the
    same ``(benchmark, elements)`` identity — the committed files
    accumulate history at both full and smoke scale, so a smoke-scale
    CI run compares against a smoke-scale baseline.  A fresh run with
    no matching baseline passes with a note (first run of a new
    benchmark); an area with no fresh runs at all fails loudly, because
    a gate that silently gates nothing is how regressions ship.
    """
    fresh_runs = load_bench_runs(Path(fresh_root) / f"BENCH_{area}.json")
    baseline_runs = load_bench_runs(
        Path(baseline_root) / f"BENCH_{area}.json")
    if not fresh_runs:
        return False, [f"[{area}] no fresh runs found under {fresh_root}"]
    latest_baseline: dict[tuple, dict] = {}
    for run in baseline_runs:
        latest_baseline[_run_key(run)] = run
    ok = True
    lines = []
    for run in fresh_runs:
        key = _run_key(run)
        label = f"{key[0]} @ {key[1]}"
        baseline = latest_baseline.get(key)
        if baseline is None:
            lines.append(f"[{area}] {label}: no baseline, skipped")
            continue
        for name, fresh_v, base_v, metric_ok in compare_runs(
                run, baseline, noise):
            arrow = "ok" if metric_ok else "REGRESSION"
            lines.append(
                f"[{area}] {label}: {name} {base_v:.6g} -> {fresh_v:.6g} "
                f"({arrow})")
            ok = ok and metric_ok
    return ok, lines


def run_gate(areas: Sequence[str], fresh_root: str | Path,
             baseline_root: str | Path | None = None,
             noise: float = 0.5) -> int:
    """Gate several areas; prints the verdicts, returns an exit code."""
    if baseline_root is None:
        baseline_root = Path(__file__).resolve().parents[3]
    failed = False
    for area in areas:
        area_ok, lines = gate_area(area, fresh_root, baseline_root, noise)
        for line in lines:
            print(line)
        failed = failed or not area_ok
    print("gate: " + ("FAILED" if failed else "passed") +
          f" (noise band {noise:.0%})")
    return 1 if failed else 0


def build_all(fast: bool = False) -> list[Table]:
    """Build every figure table (fast mode shrinks wall-clock workloads)."""
    # Imported lazily: the harness imports Table from this module, so a
    # module-level import here would cycle.
    from .harness import (accuracy_series, figure3_series, figure4_series,
                          figure5_series, figure6_series, figure7_series,
                          sliding_window_series)
    scale = 1 if fast else 4
    return [
        figure3_series(wall_limit=(1 << 12) * scale),
        figure4_series(),
        figure5_series(run_elements=25_000 * scale),
        figure6_series(run_elements=50_000 * scale),
        figure7_series(run_elements=25_000 * scale),
        sliding_window_series(run_elements=40_000 * scale),
        accuracy_series(run_elements=25_000 * scale),
    ]


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.bench.report``."""
    parser = argparse.ArgumentParser(
        description="Regenerate every figure of the paper's evaluation.")
    parser.add_argument("--fast", action="store_true",
                        help="smaller wall-clock workloads")
    parser.add_argument("--markdown", action="store_true",
                        help="emit Markdown tables instead of plain text")
    parser.add_argument("--gate", action="append", default=[],
                        metavar="AREA",
                        help="regression-gate BENCH_<AREA>.json instead "
                             "of building figures (repeatable)")
    parser.add_argument("--fresh-dir", default=None,
                        help="directory holding the freshly generated "
                             "BENCH files (default: REPRO_BENCH_ROOT)")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory holding the committed baseline "
                             "BENCH files (default: the repo root)")
    parser.add_argument("--noise", type=float, default=0.5,
                        help="fractional noise band a gated metric may "
                             "move by before failing (default 0.5)")
    args = parser.parse_args(argv)
    if args.gate:
        fresh = args.fresh_dir or os.environ.get("REPRO_BENCH_ROOT")
        if not fresh:
            parser.error("--gate needs --fresh-dir or REPRO_BENCH_ROOT")
        return run_gate(args.gate, fresh, args.baseline_dir, args.noise)
    for table in build_all(args.fast):
        print(table.render_markdown() if args.markdown else table.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
