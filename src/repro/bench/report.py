"""Print every figure reproduction in one run.

Usage::

    python -m repro.bench.report            # all figures, default sizes
    python -m repro.bench.report --fast     # smaller wall-clock workloads
    python -m repro.bench.report --markdown # Markdown tables (EXPERIMENTS.md)

The output is the complete set of data series behind the paper's
Figures 3-7, the Section 5.3 sliding-window study, and the reconstructed
accuracy tables.
"""

from __future__ import annotations

import argparse

from .harness import (accuracy_series, figure3_series, figure4_series,
                      figure5_series, figure6_series, figure7_series,
                      sliding_window_series)


def build_all(fast: bool = False) -> list:
    """Build every figure table (fast mode shrinks wall-clock workloads)."""
    scale = 1 if fast else 4
    return [
        figure3_series(wall_limit=(1 << 12) * scale),
        figure4_series(),
        figure5_series(run_elements=25_000 * scale),
        figure6_series(run_elements=50_000 * scale),
        figure7_series(run_elements=25_000 * scale),
        sliding_window_series(run_elements=40_000 * scale),
        accuracy_series(run_elements=25_000 * scale),
    ]


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.bench.report``."""
    parser = argparse.ArgumentParser(
        description="Regenerate every figure of the paper's evaluation.")
    parser.add_argument("--fast", action="store_true",
                        help="smaller wall-clock workloads")
    parser.add_argument("--markdown", action="store_true",
                        help="emit Markdown tables instead of plain text")
    args = parser.parse_args(argv)
    for table in build_all(args.fast):
        print(table.render_markdown() if args.markdown else table.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
