"""Figure/series builders shared by the benchmark suite.

Each ``figureN_series`` function regenerates the data series of the
paper's corresponding figure and returns it as a
:class:`~repro.bench.report.Table`.  Wall-clock measurements run the
full simulated pipeline at laptop-feasible sizes; modelled times (the
paper-hardware estimates driven by exact op counts — see
:mod:`repro.bench.models`) extend every series to the paper's scales.

The benchmark files under ``benchmarks/`` call these builders, print the
tables, assert the paper's qualitative claims (who wins, by what factor,
where the crossover falls) and let pytest-benchmark time the underlying
kernels.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..backends import resolve_sorter
from ..core.engine import StreamMiner
from ..gpu.timing import (CPU_MODEL_INTEL, CPU_MODEL_MSVC,
                          BitonicFragmentProgramModel)
from ..streams.generators import uniform_stream, zipf_stream
from .models import (pbsn_comparison_count, predicted_gpu_sort_time,
                     streaming_modelled_time)
from .report import Table

#: Largest size at which the benchmarks run the real simulated pipeline.
WALL_CLOCK_LIMIT = 1 << 18


def figure3_series(sizes: list[int] | None = None,
                   wall_limit: int = WALL_CLOCK_LIMIT,
                   seed: int = 0) -> Table:
    """Figure 3: sorting time vs. n for the four implementations.

    Columns: modelled seconds for our GPU PBSN sorter, the prior GPU
    bitonic sorter [40], CPU quicksort compiled with MSVC, and the Intel
    Hyper-Threaded build; plus the measured wall seconds of the simulated
    pipeline where feasible (``nan`` above ``wall_limit``).
    """
    if sizes is None:
        sizes = [1 << k for k in range(10, 24)]
    bitonic = BitonicFragmentProgramModel()
    table = Table(
        title="Figure 3 — sorting performance (seconds)",
        columns=["n", "gpu_pbsn", "gpu_bitonic", "cpu_msvc", "cpu_intel",
                 "gpu_wall"],
        caption=("Modelled GeForce-6800/Pentium-IV seconds from exact op "
                 "counts; gpu_wall is this machine's simulator wall time."),
    )
    rng = np.random.default_rng(seed)
    for n in sizes:
        gpu = predicted_gpu_sort_time(n).total
        wall = math.nan
        if n <= wall_limit:
            sorter = resolve_sorter("gpu")
            data = rng.random(n).astype(np.float32)
            start = time.perf_counter()
            sorter.sort(data)
            wall = time.perf_counter() - start
        table.add_row(n, gpu, bitonic.time(n), CPU_MODEL_MSVC.time(n),
                      CPU_MODEL_INTEL.time(n), wall)
    return table


def figure4_series(sizes: list[int] | None = None,
                   base_n: int = 1 << 23) -> Table:
    """Figure 4: GPU sort-vs-transfer breakdown and O(n log^2 n) estimation.

    Reproduces the paper's methodology: take the ``base_n`` (8M) point as
    the reference, estimate every other size by scaling with
    ``n log^2 (n/4)``, and compare with the directly-modelled time.
    """
    if sizes is None:
        sizes = [1 << k for k in range(12, 24)]
    base = predicted_gpu_sort_time(base_n)
    base_comparisons = pbsn_comparison_count(base_n)
    table = Table(
        title="Figure 4 — GPU sorting breakdown (seconds)",
        columns=["n", "sort", "transfer", "estimated_sort", "estimate_error"],
        caption=("'estimated_sort' scales the 8M-element base point by "
                 "n log^2(n/4), the paper's extrapolation; 'sort' is the "
                 "direct model."),
    )
    for n in sizes:
        breakdown = predicted_gpu_sort_time(n)
        estimated = (base.sort * pbsn_comparison_count(n) / base_comparisons)
        table.add_row(n, breakdown.sort, breakdown.transfer, estimated,
                      abs(estimated - breakdown.sort))
    return table


def _streaming_series(statistic: str, eps_values: list[float],
                      stream_length: int, run_elements: int,
                      seed: int) -> Table:
    """Shared Figure 5/7 builder: GPU vs CPU across epsilon values."""
    figure = "5" if statistic == "frequency" else "7"
    table = Table(
        title=(f"Figure {figure} — {statistic} estimation over a "
               f"{stream_length:,}-element stream (seconds)"),
        columns=["eps", "window", "gpu_total", "gpu_transfer", "cpu_total",
                 "gpu_wall", "cpu_wall"],
        caption=("Modelled paper-hardware seconds for the full stream; "
                 "wall columns run the pipeline on a "
                 f"{run_elements:,}-element prefix on this machine."),
    )
    for eps in eps_values:
        window = max(1, math.ceil(1.0 / eps))
        gpu = streaming_modelled_time(stream_length, window, "gpu")
        cpu = streaming_modelled_time(stream_length, window, "cpu",
                                      cpu_time_fn=CPU_MODEL_INTEL.time)
        wall = {}
        for backend in ("gpu", "cpu"):
            miner = StreamMiner(statistic, eps=eps, backend=backend,
                                window_size=window,
                                stream_length_hint=stream_length)
            data = uniform_stream(run_elements, seed=seed)
            start = time.perf_counter()
            miner.process(data)
            wall[backend] = time.perf_counter() - start
        table.add_row(eps, window, sum(gpu.values()), gpu["transfer"],
                      sum(cpu.values()), wall["gpu"], wall["cpu"])
    return table


def figure5_series(eps_values: list[float] | None = None,
                   stream_length: int = 100_000_000,
                   run_elements: int = 200_000,
                   seed: int = 0) -> Table:
    """Figure 5: frequency estimation, GPU vs CPU, varying epsilon."""
    if eps_values is None:
        eps_values = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6]
    return _streaming_series("frequency", eps_values, stream_length,
                             run_elements, seed)


def figure7_series(eps_values: list[float] | None = None,
                   stream_length: int = 100_000_000,
                   run_elements: int = 200_000,
                   seed: int = 0) -> Table:
    """Figure 7: quantile estimation, GPU vs CPU, varying epsilon."""
    if eps_values is None:
        eps_values = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6]
    return _streaming_series("quantile", eps_values, stream_length,
                             run_elements, seed)


def figure6_series(eps_values: list[float] | None = None,
                   run_elements: int = 400_000,
                   seed: int = 0) -> Table:
    """Figure 6: share of time per summary operation (sort/merge/compress).

    Measured on the CPU backend of our implementation, as in the paper
    ("the majority of the computational time is spent in sorting").
    """
    if eps_values is None:
        eps_values = [1e-2, 1e-3, 1e-4]
    table = Table(
        title="Figure 6 — cost of summary operations (fraction of time)",
        columns=["eps", "window", "sort", "histogram", "merge", "compress"],
        caption="Operation shares of the frequency pipeline (modelled "
                "Pentium-IV decomposition from exact op counts).",
    )
    for eps in eps_values:
        miner = StreamMiner("frequency", eps=eps, backend="cpu")
        miner.process(uniform_stream(run_elements, seed=seed))
        shares = miner.report.modelled_shares()
        table.add_row(eps, miner.window_size, shares["sort"],
                      shares["histogram"], shares["merge"],
                      shares["compress"])
    return table


def sliding_window_series(window_sizes: list[int] | None = None,
                          eps: float = 0.01,
                          run_elements: int = 200_000,
                          seed: int = 0) -> Table:
    """Section 5.3: sliding-window estimation across window widths.

    For each width: modelled GPU and CPU time for the run, retained
    space, and the observed worst rank error of sliding quantile queries
    against the exact window contents (must stay below ``eps * W``).
    """
    if window_sizes is None:
        window_sizes = [2_000, 10_000, 50_000]
    table = Table(
        title=(f"Section 5.3 — sliding-window quantiles over "
               f"{run_elements:,} elements (eps={eps})"),
        columns=["window", "subwindow", "gpu_total", "cpu_total",
                 "space_entries", "worst_rank_err", "bound"],
        caption="Deterministic error bound is eps * W; worst_rank_err is "
                "measured against the exact window contents.",
    )
    data = uniform_stream(run_elements, seed=seed)
    for window in window_sizes:
        results = {}
        for backend in ("gpu", "cpu"):
            miner = StreamMiner("quantile", eps=eps, backend=backend,
                                mode="sliding", sliding_window=window)
            miner.process(data)
            results[backend] = miner
        miner = results["cpu"]
        exact = np.sort(data[-window:])
        worst = 0
        for phi in np.linspace(0.05, 0.95, 19):
            est = miner.quantile(phi)
            rank = max(1, math.ceil(phi * window))
            lo = int(np.searchsorted(exact, est, "left")) + 1
            hi = int(np.searchsorted(exact, est, "right"))
            worst = max(worst, lo - rank, rank - hi, 0)
        table.add_row(window, miner.estimator.subwindow,
                      results["gpu"].report.modelled_total,
                      results["cpu"].report.modelled_total,
                      miner.estimator.space(), worst, math.ceil(eps * window))
    return table


def accuracy_series(eps_values: list[float] | None = None,
                    run_elements: int = 100_000,
                    seed: int = 0) -> Table:
    """Reconstructed accuracy table: observed error vs. the eps guarantee."""
    if eps_values is None:
        eps_values = [0.05, 0.01, 0.001]
    table = Table(
        title="Accuracy — observed error vs. deterministic bound",
        columns=["eps", "statistic", "workload", "worst_observed",
                 "bound", "summary_entries"],
        caption="Worst observed rank error (quantiles) / count error "
                "(frequencies) across the query range; both must stay "
                "below eps * N.",
    )
    for eps in eps_values:
        data = uniform_stream(run_elements, seed=seed)
        miner = StreamMiner("quantile", eps=eps, backend="cpu",
                            window_size=max(1024, math.ceil(1 / eps)),
                            stream_length_hint=run_elements)
        miner.process(data)
        exact = np.sort(data)
        worst = 0
        for phi in np.linspace(0.0, 1.0, 41):
            est = miner.quantile(phi)
            rank = max(1, math.ceil(phi * run_elements))
            lo = int(np.searchsorted(exact, est, "left")) + 1
            hi = int(np.searchsorted(exact, est, "right"))
            worst = max(worst, lo - rank, rank - hi, 0)
        table.add_row(eps, "quantile", "uniform", worst,
                      math.ceil(eps * run_elements),
                      miner.estimator.space())

        zdata = zipf_stream(run_elements, alpha=1.3, universe=5000,
                            seed=seed)
        miner = StreamMiner("frequency", eps=eps, backend="cpu")
        miner.process(zdata)
        values, counts = np.unique(zdata, return_counts=True)
        worst = 0
        for value, true_count in zip(values.tolist(), counts.tolist()):
            est = miner.estimate(value)
            if est > true_count or true_count - est > worst:
                worst = max(worst, true_count - est, est - true_count)
        table.add_row(eps, "frequency", "zipf(1.3)", worst,
                      math.ceil(eps * run_elements), len(miner.estimator))
    return table
