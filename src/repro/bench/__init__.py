"""Benchmark support: figure-series builders, op-count models, tables."""

from .calibration import Anchor, anchors, calibration_table
from .harness import (WALL_CLOCK_LIMIT, accuracy_series, figure3_series,
                      figure4_series, figure5_series, figure6_series,
                      figure7_series, sliding_window_series)
from .models import (pbsn_comparison_count, pbsn_texture_shape,
                     predict_pbsn_counters, predicted_gpu_sort_time,
                     streaming_modelled_time)
from .report import Table

__all__ = [
    "Anchor",
    "Table",
    "WALL_CLOCK_LIMIT",
    "accuracy_series",
    "anchors",
    "calibration_table",
    "figure3_series",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "figure7_series",
    "pbsn_comparison_count",
    "pbsn_texture_shape",
    "predict_pbsn_counters",
    "predicted_gpu_sort_time",
    "sliding_window_series",
    "streaming_modelled_time",
]
