"""Analytic op-count predictions for paper-scale extrapolation.

The wall-clock benchmarks run the full simulated pipeline up to ~10^6
elements.  The paper's figures extend to 8 million (sorting) and 100
million (streaming) elements; re-running the simulator there would take
hours without telling us anything new, because the PBSN pass structure is
completely deterministic.  This module predicts the exact perf counters
for any input size — the prediction is validated against the simulator's
actual counters in the test suite — so the figure harnesses can extend
their modelled-time series to the paper's scales.

This mirrors the paper's own methodology: Figure 4 extrapolates the
O(n log^2 n) behaviour from an 8M-element base measurement and finds the
estimates "closely match the observed timings (within a few
milli-seconds)".
"""

from __future__ import annotations

import math

from ..gpu.counters import PerfCounters
from ..gpu.presets import GEFORCE_6800_ULTRA, GpuSpec
from ..gpu.texture import BYTES_PER_TEXEL, CHANNELS
from ..gpu.timing import GpuCostModel, GpuTimeBreakdown
from ..sorting.networks import next_power_of_two


def pbsn_texture_shape(n: int, spec: GpuSpec = GEFORCE_6800_ULTRA,
                       channels: int = CHANNELS) -> tuple[int, int]:
    """Texture (width, height) the GPU sorter would pick for ``n`` values."""
    chunk = -(-n // channels)
    per_channel = next_power_of_two(max(chunk, 1))
    log_n = max(0, per_channel.bit_length() - 1)
    width = 1 << ((log_n + 1) // 2)
    height = 1 << (log_n // 2)
    return width, height


def predict_pbsn_counters(n: int, spec: GpuSpec = GEFORCE_6800_ULTRA,
                          channels: int = CHANNELS) -> PerfCounters:
    """Exact perf counters of a GPU PBSN sort of ``n`` values.

    Matches :meth:`repro.sorting.gpu_sorter.GpuSorter.sort` counter for
    counter (verified by ``tests/sorting/test_prediction.py``).
    """
    counters = PerfCounters()
    if n <= 0:
        return counters
    width, height = pbsn_texture_shape(n, spec, channels)
    pixels = width * height
    texture_bytes = pixels * BYTES_PER_TEXEL

    counters.record_upload(texture_bytes)
    counters.record_readback(texture_bytes)

    if pixels < 2:
        return counters

    # Routine 4.1: one unblended full-texture copy.
    counters.record_pass(pixels, blended=False,
                         bytes_per_texel=BYTES_PER_TEXEL, label="copy")

    log_n = pixels.bit_length() - 1
    for _stage in range(log_n):
        block = pixels
        while block >= 2:
            if block <= width:
                quads = 2 * (width // block)
                fragments_each = (block // 2) * height
                labels = ("row_min", "row_max")
            else:
                quads = 2 * (pixels // block)
                fragments_each = width * (block // width) // 2
                labels = ("min", "max")
            for i in range(quads):
                counters.record_pass(fragments_each, blended=True,
                                     bytes_per_texel=BYTES_PER_TEXEL,
                                     label=labels[i % 2])
            block //= 2
    return counters


def predicted_gpu_sort_time(n: int,
                            model: GpuCostModel | None = None) -> GpuTimeBreakdown:
    """Modelled GeForce-6800 time of a PBSN sort of ``n`` values."""
    if model is None:
        model = GpuCostModel()
    return model.breakdown(predict_pbsn_counters(n, model.spec))


def pbsn_comparison_count(n: int, channels: int = CHANNELS) -> int:
    """Total comparisons of the paper's Section 4.5 analysis.

    Four channels of ``n/4`` values cost ``4 * (n/4) * log^2(n/4)``
    stored comparison results on the GPU plus ``n`` CPU merge
    comparisons; the paper folds this to ``n + n log^2(n/4)``.
    """
    if n <= 0:
        return 0
    per_channel = next_power_of_two(-(-n // channels))
    log_n = max(1, per_channel.bit_length() - 1)
    return n + n * log_n * log_n


def streaming_modelled_time(total_elements: int, window: int,
                            backend: str,
                            model: GpuCostModel | None = None,
                            cpu_time_fn=None,
                            merge_cycles: float = 40.0,
                            compress_cycles: float = 10.0,
                            histogram_cycles: float = 8.0,
                            summary_size: int | None = None,
                            cpu_clock_hz: float = 3.4e9) -> dict[str, float]:
    """Modelled per-operation seconds of a whole streaming run.

    Used by the Figure 5/7 harnesses to extend their series to the
    paper's 100M-element streams: the engine's measured runs validate the
    model at feasible sizes and this closed form extends it.

    Parameters
    ----------
    total_elements:
        Stream length ``N``.
    window:
        Window size (``ceil(1/eps)`` for frequencies).
    backend:
        ``"gpu"`` (four windows per sort) or ``"cpu"`` (one per sort).
    cpu_time_fn:
        Callable ``n -> seconds`` for the CPU sort model (required for
        the cpu backend).
    summary_size:
        Average summary size scanned per compress; defaults to ``window``
        (the uniform-random worst case where every value is distinct).
    """
    windows = math.ceil(total_elements / window)
    times = {op: 0.0 for op in
             ("sort", "transfer", "histogram", "merge", "compress")}
    if backend == "gpu":
        batches = math.ceil(windows / CHANNELS)
        breakdown = predicted_gpu_sort_time(4 * window, model)
        # In a continuous streaming loop the textures and buffers are
        # allocated once and reused, so the per-sort setup cost is paid
        # once for the whole run rather than per batch.
        per_batch = breakdown.sort - breakdown.setup
        times["sort"] = breakdown.setup + batches * per_batch
        times["transfer"] = batches * breakdown.transfer
    elif backend == "cpu":
        if cpu_time_fn is None:
            raise ValueError("cpu backend requires cpu_time_fn")
        times["sort"] = windows * cpu_time_fn(window)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    if summary_size is None:
        summary_size = window
    times["histogram"] = windows * window * histogram_cycles / cpu_clock_hz
    times["merge"] = windows * window * merge_cycles / cpu_clock_hz
    times["compress"] = windows * summary_size * compress_cycles / cpu_clock_hz
    return times
