"""Command-line interface.

Usage::

    python -m repro sort      --n 100000 --backend gpu
    python -m repro quantiles --n 500000 --eps 0.01 --phi 0.5 0.9 0.99
    python -m repro frequent  --n 500000 --eps 0.001 --support 0.01
    python -m repro distinct  --n 500000 --universe 50000
    python -m repro serve     --n 200000 --shards 4 --producers 2
    python -m repro serve     --n 200000 --metrics-port 9107
    python -m repro serve     --n 200000 --query-port 9108 --linger 30
    python -m repro query     register quantile --phi 0.99
    python -m repro query     list
    python -m repro query     answer --fresh
    python -m repro trace     --n 100000 --statistic quantile
    python -m repro figures   --fast

Each subcommand generates a synthetic stream (``--workload`` picks the
generator), runs the corresponding pipeline, and prints results plus the
modelled paper-hardware timing.  ``repro query`` is different: it is an
HTTP client for the standing-query control plane of an already-running
``repro serve --query-port`` process.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from .backends import registered_backends, resolve_sorter
from .bench.report import build_all
from .core.distinct import WindowedDistinctCounter
from .core.estimators import (QUERY_METRICS, estimator_capabilities,
                              registered_capabilities)
from .core.pipeline.timing import OPERATIONS
from .errors import QueryError
from .obs import collecting, render_tree, stage_shares
from .query import (QuerySpec, answer_query, build_miner, list_queries,
                    register_query, unregister_query)
from .service.executors import registered_executors
from .service.policies import ServicePolicies
from .service.runner import format_result, run_service_demo
from .sorting.cpu import optimized_sort
from .streams.generators import GENERATORS


def _add_backend_arg(parser: argparse.ArgumentParser,
                     default: str) -> None:
    """``--backend`` offering every registered sorter, not a fixed pair."""
    parser.add_argument("--backend", choices=list(registered_backends()),
                        default=default,
                        help="sorting backend from the registry "
                             f"(default {default})")


def _add_stream_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=100_000,
                        help="stream length (default 100000)")
    parser.add_argument("--workload", choices=sorted(GENERATORS),
                        default="uniform", help="synthetic generator")
    parser.add_argument("--seed", type=int, default=0)


def _make_stream(args: argparse.Namespace) -> np.ndarray:
    return GENERATORS[args.workload](args.n, seed=args.seed)


def cmd_sort(args: argparse.Namespace) -> int:
    """``repro sort``: sort a synthetic stream, print counters + timing."""
    data = _make_stream(args)
    start = time.perf_counter()
    if args.backend == "gpu":
        sorter = resolve_sorter("gpu", network=args.network)
        out = sorter.sort(data)
        wall = time.perf_counter() - start
        counters = sorter.last_counters
        breakdown = sorter.modelled_time()
        print(f"sorted {data.size:,} values ({args.workload}) on the "
              f"simulated GPU [{args.network}]")
        print(f"  wall time (simulator)     : {wall:.3f} s")
        print(f"  rendering passes          : {counters.passes:,}")
        print(f"  blend ops                 : {counters.blend_ops:,}")
        print(f"  modelled GeForce-6800 time: {breakdown.total * 1e3:.2f} ms")
    elif args.backend == "cpu":
        out = optimized_sort(data)
        wall = time.perf_counter() - start
        print(f"sorted {data.size:,} values ({args.workload}) on the CPU")
        print(f"  wall time: {wall:.3f} s")
    else:
        sorter = resolve_sorter(args.backend)
        out = (sorter.sort(data) if hasattr(sorter, "sort")
               else sorter.sort_batch([data])[0])
        wall = time.perf_counter() - start
        print(f"sorted {data.size:,} values ({args.workload}) with the "
              f"{args.backend} backend")
        print(f"  wall time: {wall:.3f} s")
    assert np.all(out[1:] >= out[:-1])
    return 0


def cmd_quantiles(args: argparse.Namespace) -> int:
    """``repro quantiles``: streaming phi-quantiles over a synthetic stream."""
    data = _make_stream(args)
    miner = build_miner("quantile", eps=args.eps, backend=args.backend,
                        window_size=args.window,
                        stream_length_hint=args.n, kind=args.kind)
    miner.process(data)
    family = f", kind={args.kind}" if args.kind else ""
    print(f"{args.n:,} elements ({args.workload}), eps={args.eps}, "
          f"backend={miner.backend}{family}")
    for phi in args.phi:
        print(f"  phi={phi:<6g} -> {miner.quantile(phi):.6g}")
    _print_report(miner)
    return 0


def cmd_frequent(args: argparse.Namespace) -> int:
    """``repro frequent``: heavy hitters over a synthetic stream."""
    data = _make_stream(args)
    miner = build_miner("frequency", eps=args.eps, backend=args.backend,
                        kind=args.kind)
    miner.process(data)
    family = f", kind={args.kind}" if args.kind else ""
    if args.estimate:
        bound = (estimator_capabilities(args.kind).bound_type
                 if args.kind else "count-under")
        print(f"{args.n:,} elements ({args.workload}), eps={args.eps}"
              f"{family}: point estimates ({bound} bound)")
        for value in args.estimate:
            print(f"  count({value:g}) ~ {miner.estimate(value):,}")
        _print_report(miner)
        return 0
    try:
        items = miner.frequent_items(args.support)
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: query point estimates instead, e.g. "
              "`repro frequent --kind count-min --estimate 3 7`",
              file=sys.stderr)
        return 1
    print(f"{args.n:,} elements ({args.workload}), eps={args.eps}, "
          f"support={args.support}{family}: {len(items)} frequent items")
    for value, count in items[:args.top]:
        print(f"  {value:>12g} : >= {count:,}")
    _print_report(miner)
    return 0


def cmd_distinct(args: argparse.Namespace) -> int:
    """``repro distinct``: KMV cardinality estimate vs the exact count."""
    rng = np.random.default_rng(args.seed)
    data = rng.integers(0, args.universe, args.n).astype(np.float32)
    counter = WindowedDistinctCounter(k=args.k, window_size=args.window)
    counter.update(data)
    estimate = counter.estimate()
    exact = len(np.unique(data))
    print(f"{args.n:,} elements over a {args.universe:,}-value universe")
    print(f"  KMV estimate : {estimate:,.0f}")
    print(f"  exact        : {exact:,}")
    print(f"  error        : {abs(estimate - exact) / max(exact, 1):.2%} "
          f"(2-sigma bound {counter.error_bound():.2%})")
    return 0


def _build_policies(args: argparse.Namespace) -> ServicePolicies | None:
    """A ServicePolicies bundle from the serve flags, or None when every
    flag is at its default (constructor defaults then apply)."""
    overrides = {}
    for flag, field in (("snapshot_every", "snapshot_every"),
                        ("max_restarts", "max_restarts"),
                        ("heartbeat_interval", "heartbeat_interval"),
                        ("liveness_timeout", "liveness_timeout"),
                        ("io_deadline", "io_deadline")):
        value = getattr(args, flag)
        if value is not None:
            overrides[field] = value
    if args.no_takeover:
        overrides["takeover"] = False
    return ServicePolicies(**overrides) if overrides else None


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: drive the sharded asyncio service end to end."""
    result = run_service_demo(
        statistic=args.statistic, n=args.n, eps=args.eps,
        num_shards=args.shards, producers=args.producers,
        backend=args.backend, window_size=args.window,
        workload=args.workload, seed=args.seed,
        executor=args.executor, workers=args.workers, kind=args.kind,
        chunk_size=args.chunk, shed_capacity=args.shed_capacity,
        phi=tuple(args.phi), support=args.support,
        fault_rate=args.fault_rate,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        metrics_port=args.metrics_port,
        policies=_build_policies(args),
        query_port=args.query_port, linger=args.linger)
    print(format_result(result))
    return 0 if result.all_within_bounds else 1


#: Default control-plane address `repro query` talks to — matches the
#: docstring's `repro serve --query-port 9108` example.
_QUERY_URL = "http://127.0.0.1:9108"


def _query_errors(fn):
    """Turn client-side failures into exit code 1 + a stderr line."""
    def wrapper(args: argparse.Namespace) -> int:
        try:
            return fn(args)
        except QueryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
            return 1
    return wrapper


def _query_line(state: dict) -> str:
    """One listing line for a registration state dict."""
    spec = state["spec"]
    detail = {
        "quantile": lambda s: f"phi={s['phi']:g}",
        "heavy_hitters": lambda s: f"support={s['support']:g}",
        "top_k": lambda s: f"k={s['k']}",
        "estimate": lambda s: f"value={s['value']:g}",
        "distinct": lambda s: "",
    }[spec["metric"]](spec)
    window = f", window={spec['window']}" if spec.get("window") else ""
    shared = "  [shared]" if state.get("shared") else ""
    return (f"{state['id']:<6} {spec['metric']}({detail}) on "
            f"{spec['key']!r}{window} -> {state['kind']} @ eps "
            f"{state['error_bound']:g}{shared}")


def _format_answer_value(value) -> str:
    if isinstance(value, list):
        pairs = ", ".join(f"{v:g}: >={c:,.0f}" for v, c in value[:8])
        more = f" (+{len(value) - 8} more)" if len(value) > 8 else ""
        return f"[{pairs}]{more}"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


@_query_errors
def cmd_query_register(args: argparse.Namespace) -> int:
    """``repro query register``: add one standing query to a live serve."""
    spec = QuerySpec(args.metric, key=args.key, eps=args.eps, phi=args.phi,
                     support=args.support, k=args.k, value=args.value,
                     window=args.window, tenant=args.tenant)
    state = register_query(args.url, spec.to_state())
    print(_query_line(state))
    return 0


@_query_errors
def cmd_query_list(args: argparse.Namespace) -> int:
    """``repro query list``: live registrations + sharing headline."""
    listing = list_queries(args.url)
    for state in listing["queries"]:
        print(_query_line(state))
    metrics = listing["metrics"]
    print(f"{metrics['registered']} queries over "
          f"{metrics['physical_sketches']} physical sketch(es), "
          f"shared ratio {metrics['shared_ratio']:.0%}")
    return 0


@_query_errors
def cmd_query_answer(args: argparse.Namespace) -> int:
    """``repro query answer``: evaluate queries (all live ones by default)."""
    ids = args.ids or [state["id"]
                       for state in list_queries(args.url)["queries"]]
    if not ids:
        print("no registered queries")
        return 0
    failures = 0
    for query_id in ids:
        try:
            answer = answer_query(args.url, query_id, fresh=args.fresh)
        except QueryError as exc:
            print(f"{query_id:<6} error: {exc}", file=sys.stderr)
            failures += 1
            continue
        flags = "".join(f"  [{flag}]" for flag in ("shared", "randomized")
                        if answer.get(flag))
        print(f"{answer['id']:<6} {answer['metric']:<13} "
              f"{_format_answer_value(answer['value'])}   "
              f"(eps {answer['error_bound']:g}, {answer['kind']}){flags}")
    return 1 if failures else 0


@_query_errors
def cmd_query_unregister(args: argparse.Namespace) -> int:
    """``repro query unregister``: drop registrations (frees idle sketches)."""
    for query_id in args.ids:
        unregister_query(args.url, query_id)
        print(f"unregistered {query_id}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: run a workload under tracing, print a live Fig. 4.

    The span tree shows where the simulator's wall time went; the stage
    table recomputes Figure 4/6's operation percentages from the
    ``modelled`` attributes the pipeline spans carry and checks them
    against the :class:`~repro.core.pipeline.timing.EngineReport` the
    engine billed for the same run.
    """
    data = _make_stream(args)
    start = time.perf_counter()
    with collecting() as col:
        miner = build_miner(args.statistic, eps=args.eps,
                            backend=args.backend, window_size=args.window,
                            stream_length_hint=args.n)
        miner.process(data)
        if args.statistic == "quantile":
            for phi in args.phi:
                miner.quantile(phi)
        elif args.statistic == "frequency":
            miner.frequent_items(args.support)
        else:
            miner.distinct()
        spans = col.snapshot()
    wall = time.perf_counter() - start

    print(f"trace: {args.n:,} elements ({args.workload}), "
          f"statistic={args.statistic}, backend={miner.backend}, "
          f"eps={args.eps}, {len(spans)} spans in {wall:.3f} s")
    print()
    print(render_tree(spans, total=wall))
    print()

    live = stage_shares(spans)
    modelled = miner.report.modelled_shares()
    print("stage breakdown (modelled paper-hardware seconds, Fig. 4/6):")
    print(f"  {'stage':<10} {'live spans':>10} {'engine':>10} {'delta':>8}")
    worst = 0.0
    for stage in OPERATIONS:
        delta = abs(live.get(stage, 0.0) - modelled.get(stage, 0.0))
        worst = max(worst, delta)
        print(f"  {stage:<10} {live.get(stage, 0.0):>10.2%} "
              f"{modelled.get(stage, 0.0):>10.2%} {delta:>8.2%}")
    if worst > 0.05:
        print(f"  MISMATCH: live spans diverge from the engine report "
              f"by {worst:.2%}")
        return 1
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: regenerate every figure of the paper."""
    for table in build_all(fast=args.fast):
        print(table.render())
        print()
    return 0


def _print_report(miner) -> None:
    report = miner.report
    shares = report.modelled_shares()
    print(f"  modelled paper-hardware time: {report.modelled_total:.4f} s "
          f"(sort {shares['sort']:.0%}, transfer {shares['transfer']:.0%}, "
          f"merge {shares['merge']:.0%})")


def _kind_choices(statistic: str) -> list[str]:
    """Registered driver kinds for ``statistic`` (the ``--kind`` menu)."""
    return sorted(kind for kind, caps in registered_capabilities().items()
                  if caps.statistic == statistic and caps.driver is not None)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU-accelerated approximate stream mining "
                    "(SIGMOD 2005 reproduction)")
    parser.add_argument("--compiled", action="store_true",
                        help="use the compiled estimator inner loops "
                             "(sets REPRO_COMPILED=1 so multiprocess "
                             "and network workers inherit it; answers "
                             "are bit-identical either way)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sort", help="sort a synthetic stream")
    _add_stream_args(p)
    _add_backend_arg(p, default="gpu")
    p.add_argument("--network", choices=["pbsn", "bitonic"], default="pbsn")
    p.set_defaults(func=cmd_sort)

    p = sub.add_parser("quantiles", help="streaming quantile estimation")
    _add_stream_args(p)
    _add_backend_arg(p, default="gpu")
    p.add_argument("--eps", type=float, default=0.01)
    p.add_argument("--window", type=int, default=4096)
    p.add_argument("--phi", type=float, nargs="+",
                   default=[0.25, 0.5, 0.75, 0.99])
    p.add_argument("--kind", choices=_kind_choices("quantile"),
                   default=None,
                   help="estimator family (default: the registry's "
                        "default for the statistic)")
    p.set_defaults(func=cmd_quantiles)

    p = sub.add_parser("frequent", help="frequent-item estimation")
    _add_stream_args(p)
    _add_backend_arg(p, default="gpu")
    p.add_argument("--eps", type=float, default=0.001)
    p.add_argument("--support", type=float, default=0.01)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--kind", choices=_kind_choices("frequency"),
                   default=None,
                   help="estimator family (default: the registry's "
                        "default for the statistic)")
    p.add_argument("--estimate", type=float, nargs="+", default=None,
                   metavar="VALUE",
                   help="report point estimates for these values instead "
                        "of enumerating heavy hitters (the only query "
                        "count-min answers)")
    p.set_defaults(func=cmd_frequent)

    p = sub.add_parser("distinct", help="distinct-count estimation")
    p.add_argument("--n", type=int, default=100_000)
    p.add_argument("--universe", type=int, default=50_000)
    p.add_argument("--k", type=int, default=512)
    p.add_argument("--window", type=int, default=4096)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_distinct)

    p = sub.add_parser("serve",
                       help="sharded stream-mining service answering "
                            "standing continuous queries")
    _add_stream_args(p)
    p.add_argument("--statistic",
                   choices=["quantile", "frequency", "distinct"],
                   default="quantile")
    p.add_argument("--kind", default=None,
                   choices=sorted(set(_kind_choices("quantile")
                                      + _kind_choices("frequency")
                                      + _kind_choices("distinct"))),
                   help="estimator family for the shard pool (must serve "
                        "--statistic; default: the registry's default "
                        "for the statistic)")
    _add_backend_arg(p, default="cpu")
    p.add_argument("--eps", type=float, default=0.02)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--executor", choices=list(registered_executors()),
                   default="async",
                   help="where the shards run: inline (synchronous "
                        "baseline), async (in-process queues), mp "
                        "(one worker process per shard over shared "
                        "memory), or net (worker processes over framed "
                        "TCP with reconnect/takeover)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker/shard count override (alias for "
                        "--shards, reads naturally with --executor mp)")
    p.add_argument("--producers", type=int, default=2)
    p.add_argument("--window", type=int, default=None,
                   help="per-shard window width (quantile/distinct)")
    p.add_argument("--chunk", type=int, default=2048,
                   help="producer chunk size (elements per ingest call)")
    p.add_argument("--shed-capacity", type=int, default=None,
                   help="enable load shedding at this many elements per "
                        "shard per ingest tick")
    p.add_argument("--phi", type=float, nargs="+", default=[0.5, 0.99])
    p.add_argument("--support", type=float, default=0.05)
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="inject seeded transient GPU faults at this "
                        "per-transfer probability (gpu backend only)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="persist periodic + final service checkpoints "
                        "to this directory")
    p.add_argument("--checkpoint-interval", type=float, default=None,
                   help="seconds between periodic checkpoints (needs "
                        "--checkpoint-dir; default: final only)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve Prometheus /metrics and /healthz on this "
                        "port for the duration of the run (0 = ephemeral)")
    p.add_argument("--query-port", type=int, default=None,
                   help="serve the standing-query control plane on this "
                        "port for the duration of the run (0 = "
                        "ephemeral); `repro query register/list/answer` "
                        "are its clients")
    p.add_argument("--linger", type=float, default=0.0,
                   help="keep the drained service (and its control "
                        "plane) alive this many extra seconds after "
                        "the demo stream completes")
    p.add_argument("--snapshot-every", type=int, default=None,
                   help="acks between internal worker snapshots "
                        "(replay-log bound; mp/net executors)")
    p.add_argument("--max-restarts", type=int, default=None,
                   help="worker deaths tolerated per shard before "
                        "takeover or permanent failure")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   help="seconds of inbound silence before a net worker "
                        "sends a heartbeat")
    p.add_argument("--liveness-timeout", type=float, default=None,
                   help="seconds of silence on a net connection before "
                        "it is declared dead")
    p.add_argument("--io-deadline", type=float, default=None,
                   help="per-frame send/recv deadline on net channels, "
                        "seconds")
    p.add_argument("--no-takeover", action="store_true",
                   help="fail a shard permanently instead of "
                        "reassigning its keyspace to survivors "
                        "(net executor)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("query",
                       help="client for a running serve's standing-query "
                            "control plane (--query-port)")
    qsub = p.add_subparsers(dest="query_command", required=True)

    q = qsub.add_parser("register", help="register one standing query")
    q.add_argument("metric", choices=sorted(QUERY_METRICS))
    q.add_argument("--url", default=_QUERY_URL,
                   help=f"control-plane base URL (default {_QUERY_URL})")
    q.add_argument("--key", default="serve",
                   help="ingest stream key the query watches (the serve "
                        "demo feeds 'serve')")
    q.add_argument("--eps", type=float, default=0.01,
                   help="requested approximation fraction")
    q.add_argument("--phi", type=float, default=None,
                   help="quantile rank in [0, 1] (metric=quantile)")
    q.add_argument("--support", type=float, default=None,
                   help="support threshold (metric=heavy_hitters)")
    q.add_argument("--k", type=int, default=None,
                   help="result size (metric=top_k)")
    q.add_argument("--value", type=float, default=None,
                   help="tracked value (metric=estimate)")
    q.add_argument("--window", type=int, default=None,
                   help="sliding-window width; default full history")
    q.add_argument("--tenant", default="default",
                   help="namespace label for listings and metrics")
    q.set_defaults(func=cmd_query_register)

    q = qsub.add_parser("list", help="list live standing queries")
    q.add_argument("--url", default=_QUERY_URL,
                   help=f"control-plane base URL (default {_QUERY_URL})")
    q.set_defaults(func=cmd_query_list)

    q = qsub.add_parser("answer", help="evaluate standing queries")
    q.add_argument("ids", nargs="*",
                   help="query ids (default: every live query)")
    q.add_argument("--url", default=_QUERY_URL,
                   help=f"control-plane base URL (default {_QUERY_URL})")
    q.add_argument("--fresh", action="store_true",
                   help="drain pending ingest before answering")
    q.set_defaults(func=cmd_query_answer)

    q = qsub.add_parser("unregister", help="drop standing queries")
    q.add_argument("ids", nargs="+", help="query ids to drop")
    q.add_argument("--url", default=_QUERY_URL,
                   help=f"control-plane base URL (default {_QUERY_URL})")
    q.set_defaults(func=cmd_query_unregister)

    p = sub.add_parser("trace",
                       help="trace a workload and print the span tree")
    _add_stream_args(p)
    p.add_argument("--statistic",
                   choices=["quantile", "frequency", "distinct"],
                   default="quantile")
    _add_backend_arg(p, default="gpu")
    p.add_argument("--eps", type=float, default=0.01)
    p.add_argument("--window", type=int, default=None)
    p.add_argument("--phi", type=float, nargs="+", default=[0.5, 0.99])
    p.add_argument("--support", type=float, default=0.01)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=cmd_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.compiled:
        # Through the environment rather than set_compiled() so worker
        # processes spawned by the mp/net executors inherit the tier.
        os.environ["REPRO_COMPILED"] = "1"
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
