#!/usr/bin/env python
"""Static import-boundary lint for the package's layer diagram.

The architecture is layered (DESIGN.md §10): ``core/`` is the algorithm
layer and must stay importable without the service or benchmark layers
existing at all.  This script walks every module's AST (stdlib only —
nothing is imported, so it is safe on broken trees) and fails when a
module imports something its layer is not allowed to see.

Rules::

    repro.core.*     may not import repro.service.*, repro.bench.* or
                     repro.query.*
    repro.streams.*  same bans as core
    repro.sorting.*  same bans as core
    repro.gpu.*      same bans as core
    repro.backends   same bans as core
    repro.obs.*      may not import any other repro layer (leaf)

The ``query`` layer sits at the top of the stack (it imports core,
service, bench *and* obs), so everything below it must never look up
at it — the same rule the service/bench bans enforce, one layer
higher.

Run from the repository root::

    python tools/check_layers.py

Exit status 0 when clean, 1 with one ``path:line`` diagnostic per
violation otherwise.
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Layer prefix (relative to ``repro``) -> forbidden target layers.
RULES: dict[str, tuple[str, ...]] = {
    "core": ("service", "bench", "query"),
    "streams": ("service", "bench", "query"),
    "sorting": ("service", "bench", "query"),
    "gpu": ("service", "bench", "query"),
    "backends": ("service", "bench", "query"),
    # the optional compiled tier sits beside core: estimators call into
    # it, so it must never look up the stack.
    "compiled": ("service", "bench", "query"),
    # obs is the leaf every layer may emit into; it must never look
    # back up the stack (its sources are duck-typed for exactly this).
    "obs": ("core", "streams", "sorting", "gpu", "backends", "service",
            "bench", "cli", "query"),
}


def module_name(path: pathlib.Path) -> str:
    """Dotted module name of ``path`` relative to the package root."""
    rel = path.relative_to(SRC_ROOT).with_suffix("")
    parts = [p for p in rel.parts if p != "__init__"]
    return ".".join(["repro", *parts]) if parts else "repro"


def imported_modules(tree: ast.AST, module: str) -> list[tuple[str, int]]:
    """Absolute dotted names imported anywhere in ``tree``.

    Relative imports are resolved against ``module`` so ``from ..bench
    import x`` inside ``repro.core.engine`` reports ``repro.bench``.
    """
    package_parts = module.split(".")[:-1]
    found: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.extend((alias.name, node.lineno) for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package_parts[:len(package_parts) - node.level + 1]
                base = ".".join(anchor + ([node.module] if node.module
                                          else []))
            found.append((base, node.lineno))
    return found


def violations() -> list[str]:
    """Every layering violation in the tree, as ``path:line`` messages."""
    problems: list[str] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        module = module_name(path)
        layer = module.split(".")[1] if "." in module else ""
        forbidden = RULES.get(layer)
        if not forbidden:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for target, lineno in imported_modules(tree, module):
            for banned in forbidden:
                prefix = f"repro.{banned}"
                if target == prefix or target.startswith(prefix + "."):
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                        f"{module} ({layer} layer) imports {target}")
    return problems


def main() -> int:
    problems = violations()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} layering violation(s)", file=sys.stderr)
        return 1
    print("layering clean: core/streams/sorting/gpu/backends never "
          "import service, bench or query; obs imports no other layer")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
