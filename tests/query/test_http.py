"""HTTP control plane round-trips against a live front-end.

The server marshals every request onto the front-end's event loop, so
the fixture runs a real loop on a background thread — the same shape
``repro serve --query-port`` uses — and the tests drive it purely
through the stdlib urllib clients the CLI subcommands wrap.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import (QueryControlServer, QueryFrontEnd, QuerySpec,
                         answer_query, list_queries, register_query,
                         unregister_query)


@pytest.fixture()
def control():
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever,
                              name="query-test-loop", daemon=True)
    thread.start()
    frontend = QueryFrontEnd(num_shards=2)
    server = QueryControlServer(frontend, loop, port=0).start()
    try:
        yield server
    finally:
        server.stop()
        asyncio.run_coroutine_threadsafe(frontend.close(),
                                         loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()


def test_register_list_answer_unregister(control):
    url = control.url
    state = register_query(
        url, QuerySpec("quantile", key="s", phi=0.5, eps=0.02).to_state())
    assert state["id"].startswith("q-")
    assert state["error_bound"] <= 0.02
    assert state["sketch"]["refcount"] == 1

    # A compatible second query shares the sketch over the wire too.
    shared = register_query(
        url, QuerySpec("quantile", key="s", phi=0.99, eps=0.05).to_state())
    assert shared["shared"] is True
    assert shared["error_bound"] <= 0.05

    listing = list_queries(url)
    assert {q["id"] for q in listing["queries"]} == {state["id"],
                                                     shared["id"]}
    assert listing["metrics"]["registered"] == 2
    assert listing["metrics"]["physical_sketches"] == 1
    assert listing["metrics"]["shared_ratio"] == 0.5

    data = np.random.default_rng(3).uniform(0, 100, 20_000)
    control.call(control.frontend.ingest(data.astype(np.float32), "s"))

    answer = answer_query(url, state["id"], fresh=True)
    assert answer["metric"] == "quantile"
    assert abs(answer["value"] - 50.0) <= 0.02 * 100 + 5
    assert answer["error_bound"] <= 0.02

    assert unregister_query(url, state["id"])["ok"] is True
    assert unregister_query(url, shared["id"])["ok"] is True
    assert list_queries(url)["metrics"]["registered"] == 0
    assert list_queries(url)["metrics"]["physical_sketches"] == 0


def test_bad_spec_is_a_400_query_error(control):
    state = QuerySpec("distinct").to_state()
    state["eps"] = 2.0
    with pytest.raises(QueryError, match="eps"):
        register_query(control.url, state)
    state = QuerySpec("distinct").to_state()
    state["mystery"] = 1
    with pytest.raises(QueryError, match="unknown"):
        register_query(control.url, state)


def test_unknown_query_id_is_a_query_error(control):
    with pytest.raises(QueryError, match="q-404"):
        answer_query(control.url, "q-404")
    with pytest.raises(QueryError, match="q-404"):
        unregister_query(control.url, "q-404")


def test_healthz_and_unknown_paths(control):
    import json
    import urllib.request
    with urllib.request.urlopen(f"{control.url}/healthz",
                                timeout=10) as response:
        assert json.load(response)["status"] == "ok"
    with pytest.raises(QueryError):
        answer_query(control.url.rstrip("/") + "/nope", "x")


def test_list_value_pairs_serialize_as_arrays(control):
    url = control.url
    state = register_query(
        url, QuerySpec("heavy_hitters", key="s", eps=0.05,
                       support=0.3).to_state())
    skewed = np.repeat(np.arange(4, dtype=np.float32), [70, 20, 6, 4])
    control.call(control.frontend.ingest(skewed, "s"))
    answer = answer_query(url, state["id"], fresh=True)
    assert isinstance(answer["value"], list)
    assert all(len(pair) == 2 for pair in answer["value"])
    top = {pair[0] for pair in answer["value"]}
    assert 0.0 in top
