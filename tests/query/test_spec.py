"""Property suite for query canonicalization and eps-dominance.

Pins the two laws the sharing design rests on: :func:`dominates` is a
partial order over sketch keys, and snapping a spec to its canonical
key can only ever *tighten* the bound it is served at — sharing never
loosens a reported bound below (i.e. coarser than) the requested eps.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query import (EPS_LADDER, QuerySpec, SketchKey, canonical_key,
                         dominates, eps_class)

eps_values = st.floats(min_value=1e-7, max_value=0.999,
                       allow_nan=False, allow_infinity=False)

# Small pools on purpose: hypothesis then actually generates comparable
# key pairs (same statistic/key/window) often enough to exercise the
# non-trivial branches of the partial order.
sketch_keys = st.builds(
    SketchKey,
    statistic=st.sampled_from(["quantile", "frequency", "distinct"]),
    key=st.sampled_from(["a", "b"]),
    window=st.sampled_from([None, 64]),
    eps_class=st.sampled_from([eps_class(e)
                               for e in (0.3, 0.07, 0.02, 0.01)]))


class TestEpsClass:
    @given(eps_values)
    @settings(max_examples=200, deadline=None)
    def test_class_never_coarser_than_requested(self, eps):
        assert eps_class(eps) <= eps

    @given(eps_values)
    @settings(max_examples=200, deadline=None)
    def test_class_is_idempotent(self, eps):
        assert eps_class(eps_class(eps)) == eps_class(eps)

    @given(eps_values, eps_values)
    @settings(max_examples=200, deadline=None)
    def test_class_is_monotone(self, a, b):
        if a <= b:
            assert eps_class(a) <= eps_class(b)

    def test_ladder_is_decade_125_grid(self):
        assert EPS_LADDER[0] == 0.5
        assert 0.01 in EPS_LADDER
        assert all(x > y for x, y in zip(EPS_LADDER, EPS_LADDER[1:]))

    def test_below_floor_is_singleton_class(self):
        tiny = min(EPS_LADDER) / 3
        assert eps_class(tiny) == tiny

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_out_of_domain_rejected(self, bad):
        with pytest.raises(QueryError):
            eps_class(bad)


class TestDominancePartialOrder:
    @given(sketch_keys)
    @settings(max_examples=100, deadline=None)
    def test_reflexive(self, a):
        assert dominates(a, a)

    @given(sketch_keys, sketch_keys)
    @settings(max_examples=200, deadline=None)
    def test_antisymmetric(self, a, b):
        if dominates(a, b) and dominates(b, a):
            assert a == b

    @given(sketch_keys, sketch_keys, sketch_keys)
    @settings(max_examples=200, deadline=None)
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(sketch_keys, sketch_keys)
    @settings(max_examples=200, deadline=None)
    def test_incomparable_across_groups(self, a, b):
        if (a.statistic, a.key, a.window) != (b.statistic, b.key, b.window):
            assert not dominates(a, b)


specs = st.one_of(
    st.builds(QuerySpec, metric=st.just("quantile"), eps=eps_values,
              phi=st.floats(min_value=0.0, max_value=1.0)),
    st.builds(QuerySpec, metric=st.just("heavy_hitters"),
              eps=st.floats(min_value=1e-4, max_value=0.2),
              support=st.floats(min_value=0.2, max_value=1.0)),
    st.builds(QuerySpec, metric=st.just("top_k"), eps=eps_values,
              k=st.integers(min_value=1, max_value=100)),
    st.builds(QuerySpec, metric=st.just("estimate"), eps=eps_values,
              value=st.floats(min_value=0, max_value=100)),
    st.builds(QuerySpec, metric=st.just("distinct"), eps=eps_values),
)


class TestSharingNeverLoosens:
    @given(specs)
    @settings(max_examples=300, deadline=None)
    def test_canonical_class_at_least_as_fine_as_requested(self, spec):
        key = canonical_key(spec)
        assert key.eps_class <= spec.required_eps <= spec.eps

    @given(specs, sketch_keys)
    @settings(max_examples=300, deadline=None)
    def test_any_dominating_sketch_satisfies_the_request(self, spec, live):
        # The cache only ever serves a spec from a dominating key; the
        # bound it then reports (the live key's class) must satisfy the
        # eps the spec asked for.
        key = canonical_key(spec)
        if dominates(live, key):
            assert live.eps_class <= spec.eps

    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=100), eps_values)
    @settings(max_examples=200, deadline=None)
    def test_topk_sketch_serves_smaller_k(self, k_big, k_small, eps):
        # A sketch provisioned for k serves any k' <= k: 1/(2k) only
        # gets finer as k grows, so the big-k key dominates.
        if k_small <= k_big:
            big = canonical_key(QuerySpec("top_k", eps=eps, k=k_big))
            small = canonical_key(QuerySpec("top_k", eps=eps, k=k_small))
            assert dominates(big, small)


class TestSpecStateRoundTrip:
    @given(specs)
    @settings(max_examples=200, deadline=None)
    def test_to_state_round_trips(self, spec):
        assert QuerySpec.from_state(spec.to_state()) == spec

    def test_unknown_fields_rejected(self):
        state = QuerySpec("distinct").to_state()
        state["surprise"] = 1
        with pytest.raises(QueryError):
            QuerySpec.from_state(state)

    def test_wrong_version_rejected(self):
        state = QuerySpec("distinct").to_state()
        state["version"] = 2
        with pytest.raises(QueryError):
            QuerySpec.from_state(state)

    @pytest.mark.parametrize("kwargs", [
        dict(metric="nope"),
        dict(metric="quantile"),                          # missing phi
        dict(metric="quantile", phi=1.5),
        dict(metric="heavy_hitters", support=None),
        dict(metric="heavy_hitters", support=0.01, eps=0.05),
        dict(metric="top_k", k=0),
        dict(metric="estimate"),                          # missing value
        dict(metric="distinct", eps=0.0),
        dict(metric="distinct", key=""),
        dict(metric="distinct", window=0),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(QueryError):
            QuerySpec(**kwargs)
