"""Planner behaviour and the capability-registry coverage guard."""

from __future__ import annotations

import pytest

from repro.core.estimators import (QUERY_METRICS, estimator_capabilities,
                                   registered_estimator_kinds)
from repro.errors import QueryError
from repro.query import Planner, QuerySpec, canonical_key, eps_class


class TestRegistryCoverage:
    """Every registered estimator kind must declare capabilities.

    The planner can only consider kinds the registry describes; a kind
    registered without a capability record is invisible to the query
    layer, which is a silent coverage hole.  This guard turns it into a
    loud test failure the moment someone registers a new estimator.
    """

    def test_every_kind_declares_capabilities(self):
        kinds = registered_estimator_kinds()
        assert kinds, "estimator registry is empty"
        for kind in kinds:
            caps = estimator_capabilities(kind)   # raises if undeclared
            assert caps.statistic

    def test_declared_metrics_are_known_query_metrics(self):
        for kind in registered_estimator_kinds():
            caps = estimator_capabilities(kind)
            assert set(caps.metrics) <= set(QUERY_METRICS), kind

    def test_every_query_metric_has_a_driver(self):
        served = set()
        for kind in registered_estimator_kinds():
            caps = estimator_capabilities(kind)
            if caps.driver is not None:
                served |= set(caps.metrics)
        assert served == set(QUERY_METRICS)


class TestPlanKinds:
    @pytest.fixture(scope="class")
    def planner(self):
        return Planner("cpu")

    @pytest.mark.parametrize("spec,kind", [
        (QuerySpec("quantile", phi=0.5, eps=0.01), "streaming-quantiles"),
        (QuerySpec("heavy_hitters", support=0.1, eps=0.05),
         "lossy-counting"),
        (QuerySpec("top_k", k=10, eps=0.05), "lossy-counting"),
        (QuerySpec("estimate", value=7.0, eps=0.05), "lossy-counting"),
        (QuerySpec("distinct", eps=0.02), "kmv"),
    ])
    def test_expected_driver_kind(self, planner, spec, kind):
        assert planner.plan(spec).kind == kind

    def test_building_blocks_never_candidates(self, planner):
        # gk-summary drives quantiles internally but registers with
        # driver=None; it must never be picked for a standing query.
        for metric, kwargs in [("quantile", {"phi": 0.5}),
                               ("distinct", {}),
                               ("top_k", {"k": 3})]:
            spec = QuerySpec(metric, eps=0.05, **kwargs)
            assert "gk-summary" not in planner.candidates(spec)

    def test_plan_eps_is_class_of_required_eps(self, planner):
        spec = QuerySpec("top_k", k=50, eps=0.1)   # required 1/(2k)=0.01
        plan = planner.plan(spec)
        assert plan.eps == eps_class(spec.required_eps)
        assert plan.eps <= spec.eps
        assert plan.sketch_key == canonical_key(spec)
        assert not plan.shared

    def test_cost_positive_and_cached(self, planner):
        spec = QuerySpec("quantile", phi=0.9, eps=0.02)
        plan = planner.plan(spec)
        assert plan.cost_per_element > 0
        cache_key = (plan.kind, plan.eps)
        assert planner._cost_cache[cache_key] == plan.cost_per_element
        # Second plan at the same class hits the cache object.
        assert planner.plan(spec).cost_per_element == plan.cost_per_element

    def test_rewritten_plan_is_shared_and_tighter(self, planner):
        coarse = planner.plan(QuerySpec("distinct", eps=0.05))
        fine_key = canonical_key(QuerySpec("distinct", eps=0.01))
        rewritten = coarse.rewritten(fine_key)
        assert rewritten.shared
        assert rewritten.sketch_key == fine_key
        assert rewritten.eps == fine_key.eps_class <= coarse.eps

    def test_unanswerable_spec_raises(self, planner, monkeypatch):
        # With the registry hidden, no kind qualifies and planning must
        # fail loudly instead of silently defaulting to something.
        import repro.query.planner as planner_mod
        monkeypatch.setattr(planner_mod, "registered_capabilities",
                            lambda: {})
        with pytest.raises(QueryError):
            Planner("cpu").plan(QuerySpec("quantile", phi=0.5, eps=0.01))
