"""Front-end acceptance: sharing, refcounts, bounds, adopt, fan-out."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import QueryFrontEnd, QuerySpec, canonical_key


def chunked(data, size=2_048):
    for lo in range(0, data.size, size):
        yield data[lo:lo + size]


def thousand_specs() -> list[QuerySpec]:
    """1,000 standing queries over a deliberately bounded group set."""
    specs = []
    for i in range(1_000):
        slot = i % 10
        if slot < 5:
            specs.append(QuerySpec("quantile", key="s",
                                   eps=(0.01, 0.02, 0.05, 0.1)[i % 4],
                                   phi=(i % 99 + 1) / 100.0))
        elif slot < 7:
            specs.append(QuerySpec("heavy_hitters", key="s",
                                   eps=(0.05, 0.1)[i % 2], support=0.2))
        elif slot < 8:
            specs.append(QuerySpec("top_k", key="s", eps=0.1, k=5 + i % 5))
        elif slot < 9:
            specs.append(QuerySpec("estimate", key="s", eps=0.1,
                                   value=float(i % 16)))
        else:
            specs.append(QuerySpec("distinct", key="s",
                                   eps=(0.02, 0.05)[i % 2]))
    return specs


class TestThousandQueries:
    """The ISSUE's headline acceptance criterion, end to end."""

    def test_bounded_sketches_and_full_release(self):
        specs = thousand_specs()
        groups = {canonical_key(spec) for spec in specs}
        assert len(groups) <= 32

        async def run():
            async with QueryFrontEnd(num_shards=2) as frontend:
                ids = [await frontend.register(spec) for spec in specs]
                physical = frontend.metrics.physical_sketches
                assert physical <= 64
                assert physical <= len(groups)
                assert frontend.metrics.shared_ratio >= 0.9
                assert frontend.metrics.registered == 1_000
                assert (frontend.metrics.plans_built
                        + frontend.metrics.plans_shared == 1_000)

                # Every query's bound is at least as tight as requested.
                for query in frontend.queries():
                    assert query.error_bound() <= query.spec.eps

                # Unregistering everything frees every sketch, witnessed
                # by the gauges the obs layer exports.
                for query_id in ids:
                    await frontend.unregister(query_id)
                assert frontend.metrics.physical_sketches == 0
                assert frontend.metrics.sketches_released == physical
                assert frontend.metrics.registered == 0
                assert len(frontend.cache) == 0

        asyncio.run(run())


class TestDominanceSharing:
    def test_fine_sketch_serves_coarser_specs(self):
        async def run():
            async with QueryFrontEnd() as frontend:
                fine = await frontend.register(
                    QuerySpec("quantile", phi=0.5, eps=0.01))
                coarse = await frontend.register(
                    QuerySpec("quantile", phi=0.9, eps=0.05))
                assert frontend.metrics.physical_sketches == 1
                q = frontend.get(coarse)
                assert q.plan.shared
                # Served at the finer class, reported as such.
                assert q.error_bound() == 0.01 < q.spec.eps
                # The fine query leaving must NOT free the sketch while
                # the coarse one still rides it.
                await frontend.unregister(fine)
                assert frontend.metrics.physical_sketches == 1
                await frontend.unregister(coarse)
                assert frontend.metrics.physical_sketches == 0

        asyncio.run(run())

    def test_windows_never_share_with_history(self):
        async def run():
            async with QueryFrontEnd() as frontend:
                await frontend.register(
                    QuerySpec("quantile", phi=0.5, eps=0.02))
                await frontend.register(
                    QuerySpec("quantile", phi=0.5, eps=0.02, window=256))
                assert frontend.metrics.physical_sketches == 2

        asyncio.run(run())

    def test_streams_never_share_across_keys(self):
        async def run():
            async with QueryFrontEnd() as frontend:
                await frontend.register(
                    QuerySpec("distinct", key="a", eps=0.02))
                await frontend.register(
                    QuerySpec("distinct", key="b", eps=0.02))
                assert frontend.metrics.physical_sketches == 2

        asyncio.run(run())


class TestIngestFanout:
    def test_chunk_feeds_only_matching_stream(self):
        async def run():
            async with QueryFrontEnd() as frontend:
                await frontend.register(
                    QuerySpec("quantile", key="a", phi=0.5, eps=0.02))
                await frontend.register(
                    QuerySpec("distinct", key="a", eps=0.05))
                await frontend.register(
                    QuerySpec("distinct", key="b", eps=0.05))
                chunk = np.arange(512, dtype=np.float32)
                assert await frontend.ingest(chunk, "a") == 2
                assert await frontend.ingest(chunk, "b") == 1
                assert await frontend.ingest(chunk, "nobody-watches") == 0
                assert frontend.metrics.ingested_chunks == 3
                assert frontend.metrics.fanout_ingests == 3

        asyncio.run(run())

    def test_answers_track_the_stream(self):
        data = np.random.default_rng(11).uniform(
            0, 1000, 40_000).astype(np.float32)

        async def run():
            async with QueryFrontEnd(num_shards=2) as frontend:
                median = await frontend.register(
                    QuerySpec("quantile", key="s", phi=0.5, eps=0.02))
                count = await frontend.register(
                    QuerySpec("distinct", key="s", eps=0.05))
                for chunk in chunked(data):
                    await frontend.ingest(chunk, "s")
                answers = await frontend.answer_all(fresh=True)
                assert set(answers) == {median, count}
                med = answers[median]
                assert abs(med.value - 500.0) <= 0.02 * 1000 + 50
                assert med.error_bound <= 0.02
                assert not med.randomized
                assert answers[count].randomized
                assert frontend.metrics.answers == 2

        asyncio.run(run())


class TestAdopt:
    def test_adopted_service_is_shared_and_survives(self):
        from repro.query.factory import build_service

        async def run():
            service = build_service(
                "inline",
                dict(statistic="quantile", eps=0.01, num_shards=2,
                     backend="cpu"), {})
            await service.start()
            try:
                async with QueryFrontEnd() as frontend:
                    frontend.adopt(service, statistic="quantile",
                                   eps=0.01, key="serve")
                    query_id = await frontend.register(
                        QuerySpec("quantile", key="serve", phi=0.5,
                                  eps=0.05))
                    assert frontend.metrics.physical_sketches == 1
                    assert frontend.get(query_id).plan.shared
                    # The adoption reference keeps the sketch alive
                    # after its last query leaves.
                    await frontend.unregister(query_id)
                    assert frontend.metrics.physical_sketches == 1
                # close() must leave the adopted service to its owner.
                await service.ingest(np.ones(64, dtype=np.float32))
                await service.drain()
            finally:
                await service.stop(drain=False)

        asyncio.run(run())


class TestLifecycleErrors:
    def test_unknown_ids_and_closed_frontend_raise(self):
        async def run():
            frontend = QueryFrontEnd()
            async with frontend:
                with pytest.raises(QueryError):
                    await frontend.unregister("q-404")
                with pytest.raises(QueryError):
                    frontend.get("q-404")
            with pytest.raises(QueryError):
                await frontend.register(QuerySpec("distinct"))
            with pytest.raises(QueryError):
                await frontend.ingest(np.ones(4, dtype=np.float32))

        asyncio.run(run())

    def test_register_accepts_wire_state(self):
        async def run():
            async with QueryFrontEnd() as frontend:
                state = QuerySpec("top_k", k=5, eps=0.1).to_state()
                query_id = await frontend.register(state)
                assert frontend.get(query_id).spec.k == 5

        asyncio.run(run())
